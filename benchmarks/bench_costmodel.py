"""Regenerates the §3.2/Figure 4 analytic cost comparison.

Not a measured figure in the paper, but the analytic claim behind the
place-policy: with two concurrent movers, placement costs
``M + (2N+1)·C`` against the conventional worst case ``2M + (2N+2)·C``.
This bench validates the closed forms against a deterministic-latency
simulation of exactly the Fig 4 scenario, and prints the Table-style
comparison across parameter settings.
"""

import pytest

from conftest import RESULTS_DIR
from repro.core.costmodel import (
    CostParameters,
    cost_conventional_worst_case,
    cost_placement_concurrent,
    placement_advantage,
)
from repro.core.moveblock import MoveBlock
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.placement import TransientPlacement
from repro.network.latency import DeterministicLatency
from repro.runtime.system import DistributedSystem


def simulate_two_movers(policy_name: str, m: float, n: int) -> float:
    """Deterministic Fig 4 scenario: two clients, one shared object.

    Both movers issue their move at t=0 (the paper's worst case);
    each then performs n back-to-back invocations and ends.  Returns
    the total network cost spent (migrations + remote messages).
    """
    system = DistributedSystem(
        nodes=3, migration_duration=m, latency=DeterministicLatency(1.0)
    )
    server = system.create_server(node=2)
    policy = (
        TransientPlacement(system)
        if policy_name == "placement"
        else ConventionalMigration(system)
    )

    def mover(env, client_node, delay):
        if delay:
            yield env.timeout(delay)
        block = MoveBlock(client_node, server)
        yield from policy.move(block)
        for _ in range(n):
            result = yield from system.invocations.invoke(client_node, server)
            block.record_call(result.duration)
        yield from policy.end(block)

    system.env.process(mover(system.env, 0, 0.0))
    # The conventional worst case: the second request arrives before
    # the first mover performed any call.
    system.env.process(mover(system.env, 1, 0.0))
    system.env.run()

    migration_work = system.migrations.total_transfer_time
    message_work = system.network.total_latency
    return migration_work + message_work


@pytest.mark.benchmark(group="costmodel")
def test_costmodel_formulas_and_simulation(benchmark):
    params = CostParameters(
        remote_message_cost=1.0, migration_cost=6.0, calls_per_block=8.0
    )

    def run():
        return (
            simulate_two_movers("placement", 6.0, 8),
            simulate_two_movers("migration", 6.0, 8),
        )

    measured_place, measured_conv = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    predicted_place = cost_placement_concurrent(params)
    predicted_conv = cost_conventional_worst_case(params)

    lines = [
        "costmodel: Fig 4 / §3.2 two-concurrent-movers scenario",
        f"{'variant':<28}{'analytic':>10}{'simulated':>11}",
        f"{'placement':<28}{predicted_place:>10.1f}{measured_place:>11.1f}",
        f"{'conventional worst case':<28}{predicted_conv:>10.1f}{measured_conv:>11.1f}",
        f"advantage (M + C): {placement_advantage(params):.1f}",
    ]
    table = "\n".join(lines)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "costmodel.txt").write_text(table + "\n")
    print("\n" + table)

    # The simulation realizes the analytic model within one message
    # cost (the paper's own arithmetic is loose by one message).
    assert measured_place == pytest.approx(predicted_place, abs=2.0)
    assert measured_conv == pytest.approx(predicted_conv, abs=2.0)
    # And the ordering claim is strict.
    assert measured_place < measured_conv
