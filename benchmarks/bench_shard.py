"""Sharded-kernel benchmarks: window-sync scaling and hot-spot capacity.

Three benches:

* ``test_shard_window_throughput`` — one large Fig-12-style cell per
  shard count (1/2/4/8); wall time, window count and message volume go
  into ``BENCH_shard.json`` via ``extra_info``.
* ``test_shard_speedup_fig12_style`` — the acceptance measurement:
  4-shard vs 1-shard wall time on the same cell.  The >= 2.5x speedup
  assertion only applies on machines with >= 4 usable cores (the
  sharded run degrades to the inline backend on small boxes, which
  adds window overhead instead of removing wall time); the measured
  ratio and the core count are always recorded.
* ``test_hotspot_capacity`` — the >= 100k-client / >= 10k-object
  hot-spot scenario (full size with ``REPRO_BENCH_FULL=1``, downscaled
  otherwise), checked against the closed-form remote round-trip and a
  same-scale reference run on half the shard count.
"""

import os

import pytest

from conftest import FULL_MODE, RESULTS_DIR
from repro.sim.shard.hotspot import run_hotspot
from repro.sim.shard.partition import ShardPlan
from repro.sim.shard.runner import run_sharded_cell
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

#: Stopping rule for the scaling cells: enough observations that the
#: per-window overhead dominates, small enough to finish quickly.
SHARD_STOPPING = (
    StoppingConfig.paper()
    if FULL_MODE
    else StoppingConfig(
        relative_precision=0.05,
        confidence=0.95,
        batch_size=200,
        warmup=200,
        min_batches=5,
        max_observations=25_000,
    )
)


def scaling_params(seed: int = 0) -> SimulationParameters:
    """A Fig-12-style heavy-client cell (the sharding sweet spot)."""
    clients = 256 if FULL_MODE else 64
    return SimulationParameters(
        nodes=32,
        clients=clients,
        servers_layer1=16,
        policy="placement",
        seed=seed,
    )


def total_calls(result) -> int:
    """Call count from either raw shape.

    Sharded results report ``raw["calls"]`` at top level; the
    ``shards == 1`` path returns the unsharded kernel's raw dict
    verbatim (bit-identity contract), where the count lives under
    ``raw["metrics"]["calls"]``.
    """
    if "calls" in result.raw:
        return result.raw["calls"]
    return result.raw["metrics"]["calls"]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.benchmark(group="shard-scaling")
@pytest.mark.parametrize("shards", [1, 2, 4, 8])
def test_shard_window_throughput(benchmark, shards):
    params = scaling_params()

    result = benchmark.pedantic(
        run_sharded_cell,
        args=(params, shards, SHARD_STOPPING),
        kwargs=dict(remote_fraction=0.05),
        rounds=1,
        iterations=1,
    )
    assert total_calls(result) > 0
    benchmark.extra_info.update(
        {
            "shards": shards,
            "backend": result.backend,
            "windows": result.windows,
            "wall_time_s": result.wall_time_s,
            "simulated_time": result.simulated_time,
            "calls": total_calls(result),
            "messages_exchanged": (
                result.raw.get("sync", {}).get("messages_exchanged", 0)
            ),
            "cores": usable_cores(),
        }
    )


@pytest.mark.benchmark(group="shard-speedup")
def test_shard_speedup_fig12_style(benchmark):
    """The ISSUE acceptance number: 4-shard speedup over 1 shard."""
    params = scaling_params()
    cores = usable_cores()

    def measure():
        base = run_sharded_cell(params, 1, SHARD_STOPPING)
        sharded = run_sharded_cell(
            params, 4, SHARD_STOPPING, remote_fraction=0.05
        )
        return base, sharded

    base, sharded = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = base.wall_time_s / max(sharded.wall_time_s, 1e-9)
    benchmark.extra_info.update(
        {
            "cores": cores,
            "backend": sharded.backend,
            "base_wall_time_s": base.wall_time_s,
            "sharded_wall_time_s": sharded.wall_time_s,
            "speedup_4_shards": speedup,
            "speedup_asserted": cores >= 4,
        }
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "shard_speedup.txt").write_text(
        f"cores={cores} backend={sharded.backend} "
        f"base={base.wall_time_s:.3f}s sharded={sharded.wall_time_s:.3f}s "
        f"speedup={speedup:.2f}x\n"
    )
    # Both configurations simulate the same workload shape.
    assert total_calls(base) > 0 and total_calls(sharded) > 0
    if cores >= 4 and sharded.backend == "process":
        assert speedup >= 2.5, (
            f"expected >= 2.5x on {cores} cores, measured {speedup:.2f}x"
        )


@pytest.mark.benchmark(group="shard-hotspot")
def test_hotspot_capacity(benchmark):
    """The >= 100k-client hot-spot completes sharded, metrics sane."""
    shards = 8
    scale = 1.0 if FULL_MODE else 0.01

    result = benchmark.pedantic(
        run_hotspot,
        args=(shards,),
        kwargs=dict(scale=scale, stopping=SHARD_STOPPING),
        rounds=1,
        iterations=1,
    )
    if FULL_MODE:
        assert result.params.clients >= 100_000
        assert result.params.servers_layer1 >= 10_000
    assert total_calls(result) > 0
    remote = result.raw["remote"]
    assert remote["mean_round_trip"] == pytest.approx(
        remote["expected_round_trip"], rel=0.15
    )

    # A same-scale run on half the shards keeps per-shard density
    # identical, so the headline metric must agree: the partition is
    # an implementation detail, not a workload change.  (Different
    # *scales* genuinely differ — more servers per node changes the
    # contention mix — so the reference deliberately holds the
    # population fixed.)
    reference = run_hotspot(
        shards // 2, scale=scale, stopping=SHARD_STOPPING
    )
    assert result.mean_communication_time_per_call == pytest.approx(
        reference.mean_communication_time_per_call, rel=0.25
    )
    benchmark.extra_info.update(
        {
            "shards": shards,
            "scale": scale,
            "clients": result.params.clients,
            "servers": result.params.servers_layer1,
            "backend": result.backend,
            "windows": result.windows,
            "wall_time_s": result.wall_time_s,
            "mean_communication_time_per_call": (
                result.mean_communication_time_per_call
            ),
            "reference_shards": shards // 2,
            "reference_mean": reference.mean_communication_time_per_call,
            "remote_mean_round_trip": remote["mean_round_trip"],
            "remote_expected_round_trip": remote["expected_round_trip"],
        }
    )
