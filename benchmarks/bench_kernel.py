"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the throughput of the pieces every
experiment rests on, so performance regressions in the kernel are
visible independently of the model.
"""

import time

import pytest

from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.sim.events import AllOf
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stats import BatchMeans, RunningStats


@pytest.mark.benchmark(group="kernel")
def test_timeout_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained timeouts."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="kernel")
def test_process_interleaving_throughput(benchmark):
    """100 processes x 100 wakeups through the shared calendar."""

    def run():
        env = Environment()

        def worker(env, period):
            for _ in range(100):
                yield env.timeout(period)

        for i in range(100):
            env.process(worker(env, 1.0 + i / 100.0))
        env.run()
        return env.now

    benchmark(run)


@pytest.mark.benchmark(group="kernel")
def test_network_transmit_throughput(benchmark):
    """Latency sampling + timeout per message."""

    def run():
        env = Environment()
        net = Network(
            env, topology=FullyConnected(8), streams=RandomStreams(0)
        )

        def proc(env):
            for i in range(5_000):
                yield from net.transmit(i % 8, (i + 1) % 8)

        env.process(proc(env))
        env.run()
        return net.remote_messages

    assert benchmark(run) == 5_000


@pytest.mark.benchmark(group="kernel")
def test_stats_accumulator_throughput(benchmark):
    """Welford + batch-means ingestion of 100k observations."""

    def run():
        rs, bm = RunningStats(), BatchMeans(batch_size=400)
        for i in range(100_000):
            v = (i * 2654435761 % 1000) / 1000.0
            rs.add(v)
            bm.add(v)
        return rs.count

    assert benchmark(run) == 100_000


@pytest.mark.benchmark(group="kernel")
def test_sleep_throughput(benchmark):
    """10k chained waits through the pooled ``env.sleep`` fast path."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(10_000):
                yield env.sleep(1.0)

        env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


class _PreTelemetryNetwork(Network):
    """The message path exactly as it was before telemetry existed.

    Baseline for the overhead guard below: the current path adds one
    cached-boolean branch per message; replicating the old bodies here
    lets the guard measure that delta in-process instead of against
    stored numbers from a different machine.
    """

    def sample_latency(self, src, dst, stream=None):
        delay = self.latency.sample(src, dst, stream or self._stream)
        if src == dst:
            self.local_messages += 1
        else:
            self.remote_messages += 1
        self.total_latency += delay
        return delay

    def transmit(self, src, dst, stream=None):
        delay = self.sample_latency(src, dst, stream)
        dropped = self.faults is not None and self.faults.should_drop(src, dst)
        if delay > 0:
            yield self.env.sleep(delay)
        if dropped:
            self.dropped_messages += 1
            raise RuntimeError("unreachable: no fault model installed")
        return delay


@pytest.mark.benchmark(group="kernel")
def test_telemetry_disabled_overhead(benchmark):
    """Guard: NULL-telemetry transmit must stay within 2% of baseline.

    Interleaved min-of-N wall-clock comparison between the current
    network (NULL telemetry) and the pre-telemetry bodies; the ratio is
    recorded into ``BENCH_kernel.json`` via ``extra_info`` so the CI
    history tracks it.
    """

    def run_with(cls):
        env = Environment()
        net = cls(env, topology=FullyConnected(8), streams=RandomStreams(0))

        def proc(env):
            for i in range(10_000):
                yield from net.transmit(i % 8, (i + 1) % 8)

        env.process(proc(env))
        env.run()
        return net.remote_messages

    # Warm both paths, then interleave timings so drift hits both
    # equally; min-of-N discards scheduler noise.  A noisy machine can
    # still skew one whole pass by several percent, so the guard takes
    # the best of up to three independent passes before judging.
    run_with(Network), run_with(_PreTelemetryNetwork)

    def measure() -> float:
        current, baseline = [], []
        for _ in range(9):
            t0 = time.perf_counter()
            assert run_with(Network) == 10_000
            current.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            assert run_with(_PreTelemetryNetwork) == 10_000
            baseline.append(time.perf_counter() - t0)
        return (min(current) / min(baseline) - 1.0) * 100.0, min(baseline)

    overhead_pct, baseline_best = measure()
    for _ in range(2):
        if overhead_pct < 2.0:
            break
        overhead_pct, baseline_best = min(
            (overhead_pct, baseline_best), measure()
        )
    benchmark.extra_info["telemetry_disabled_overhead_pct"] = round(
        overhead_pct, 3
    )
    benchmark.extra_info["baseline_best_s"] = round(baseline_best, 6)
    benchmark(lambda: run_with(Network))
    assert overhead_pct < 2.0, (
        f"disabled-telemetry transmit is {overhead_pct:.2f}% slower than "
        f"the pre-telemetry baseline (budget: 2%)"
    )


@pytest.mark.benchmark(group="kernel")
def test_condition_lookup_throughput(benchmark):
    """AllOf with wide fan-in plus per-member result lookups."""

    def run():
        env = Environment()
        matched = 0

        def proc(env):
            nonlocal matched
            for _ in range(50):
                waits = [env.timeout(1.0) for _ in range(100)]
                value = yield AllOf(env, waits)
                matched += sum(1 for w in waits if w in value)

        env.process(proc(env))
        env.run()
        return matched

    assert benchmark(run) == 5_000


@pytest.mark.benchmark(group="kernel")
def test_live_read_loop_telemetry_overhead(benchmark):
    """Guard: the idle observer hook must stay within 2% of baseline.

    The live transport's read loop gained an ``observer`` seam (the
    crash flight recorder) that costs one attribute read and a branch
    per frame when disabled.  This drives ``FrameDecoder.feed`` +
    ``_dispatch`` over pre-encoded envelopes against a subclass with
    the pre-observer dispatch body, interleaved min-of-N, and records
    the ratio into ``BENCH_kernel.json`` via ``extra_info``.
    """
    import asyncio

    from repro.runtime.live.framing import FrameDecoder, encode_frame
    from repro.runtime.live.transport import AsyncioTransport
    from repro.runtime.live.wire import Envelope, EnvelopeFactory

    class _PreObserverTransport(AsyncioTransport):
        async def _dispatch(self, envelope):
            self.frames_received += 1
            if self.dedup.seen(envelope.msg_id):
                return
            if envelope.reply_to is not None:
                future = self._pending.pop(envelope.reply_to, None)
                if future is not None and not future.done():
                    future.set_result(envelope)
                return
            if self.handler is not None:
                self._spawn(self._run_handler(envelope))

    factory = EnvelopeFactory(2)
    frames = b"".join(
        encode_frame(
            factory.make("bench", 1, {"object_id": i}).encode(), 1 << 20
        )
        for i in range(10_000)
    )
    peers = {1: ("tcp", "127.0.0.1", 1), 2: ("tcp", "127.0.0.1", 2)}

    def run_with(cls):
        transport = cls(1, peers[1], peers)

        async def drive():
            decoder = FrameDecoder(1 << 20)
            count = 0
            for blob in decoder.feed(frames):
                await transport._dispatch(Envelope.decode(blob))
                count += 1
            return count

        return asyncio.run(drive())

    run_with(AsyncioTransport), run_with(_PreObserverTransport)

    def measure() -> float:
        current, baseline = [], []
        for _ in range(9):
            t0 = time.perf_counter()
            assert run_with(AsyncioTransport) == 10_000
            current.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            assert run_with(_PreObserverTransport) == 10_000
            baseline.append(time.perf_counter() - t0)
        return (min(current) / min(baseline) - 1.0) * 100.0, min(baseline)

    # Best of up to three passes: one pass can be skewed by machine
    # noise larger than the effect being measured.
    overhead_pct, baseline_best = measure()
    for _ in range(2):
        if overhead_pct < 2.0:
            break
        overhead_pct, baseline_best = min(
            (overhead_pct, baseline_best), measure()
        )
    benchmark.extra_info["live_read_loop_overhead_pct"] = round(
        overhead_pct, 3
    )
    benchmark.extra_info["baseline_best_s"] = round(baseline_best, 6)
    benchmark(lambda: run_with(AsyncioTransport))
    assert overhead_pct < 2.0, (
        f"idle-observer read loop is {overhead_pct:.2f}% slower than "
        f"the pre-observer baseline (budget: 2%)"
    )
