"""Microbenchmarks of the simulation substrate itself.

Not a paper figure — these track the throughput of the pieces every
experiment rests on, so performance regressions in the kernel are
visible independently of the model.
"""

import pytest

from repro.network.network import Network
from repro.network.topology import FullyConnected
from repro.sim.events import AllOf
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stats import BatchMeans, RunningStats


@pytest.mark.benchmark(group="kernel")
def test_timeout_throughput(benchmark):
    """Schedule-and-fire cost of 10k chained timeouts."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(10_000):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="kernel")
def test_process_interleaving_throughput(benchmark):
    """100 processes x 100 wakeups through the shared calendar."""

    def run():
        env = Environment()

        def worker(env, period):
            for _ in range(100):
                yield env.timeout(period)

        for i in range(100):
            env.process(worker(env, 1.0 + i / 100.0))
        env.run()
        return env.now

    benchmark(run)


@pytest.mark.benchmark(group="kernel")
def test_network_transmit_throughput(benchmark):
    """Latency sampling + timeout per message."""

    def run():
        env = Environment()
        net = Network(
            env, topology=FullyConnected(8), streams=RandomStreams(0)
        )

        def proc(env):
            for i in range(5_000):
                yield from net.transmit(i % 8, (i + 1) % 8)

        env.process(proc(env))
        env.run()
        return net.remote_messages

    assert benchmark(run) == 5_000


@pytest.mark.benchmark(group="kernel")
def test_stats_accumulator_throughput(benchmark):
    """Welford + batch-means ingestion of 100k observations."""

    def run():
        rs, bm = RunningStats(), BatchMeans(batch_size=400)
        for i in range(100_000):
            v = (i * 2654435761 % 1000) / 1000.0
            rs.add(v)
            bm.add(v)
        return rs.count

    assert benchmark(run) == 100_000


@pytest.mark.benchmark(group="kernel")
def test_sleep_throughput(benchmark):
    """10k chained waits through the pooled ``env.sleep`` fast path."""

    def run():
        env = Environment()

        def proc(env):
            for _ in range(10_000):
                yield env.sleep(1.0)

        env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 10_000.0


@pytest.mark.benchmark(group="kernel")
def test_condition_lookup_throughput(benchmark):
    """AllOf with wide fan-in plus per-member result lookups."""

    def run():
        env = Environment()
        matched = 0

        def proc(env):
            nonlocal matched
            for _ in range(50):
                waits = [env.timeout(1.0) for _ in range(100)]
                value = yield AllOf(env, waits)
                matched += sum(1 for w in waits if w in value)

        env.process(proc(env))
        env.run()
        return matched

    assert benchmark(run) == 5_000
