"""Ablation: the dynamic policies' neglected bookkeeping costs (§3.3/§4.3).

The paper measures the intelligent placement strategies "in the absence
of their overhead ... Hence, the improvement would be even smaller in
real applications."  This bench charges the two costs §3.3 itemizes —
(1) end-requests forwarded to the object's location (one remote message
when the ender is remote) and (2) the per-user records shipped with
every migration (extra transfer time per open move-request) — and
verifies the paper's conclusion: the "minor gains" of Fig 14 turn into
losses against the conservative place-policy.
"""

import pytest

from conftest import RESULTS_DIR
from repro.experiments.figures import FIG14_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import ClientServerWorkload

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

CLIENTS = (10, 25)


def run_cell(policy: str, clients: int, overhead: bool):
    workload = ClientServerWorkload(
        FIG14_BASE.with_overrides(policy=policy, clients=clients, seed=0),
        stopping=STOP,
    )
    if policy in ("comparing", "reinstantiation"):
        workload.policy.charge_overhead = overhead
    return workload.run().mean_communication_time_per_call


@pytest.mark.benchmark(group="ablation-overhead")
def test_overhead_erases_dynamic_policy_gains(benchmark):
    def run():
        out = {"placement": [run_cell("placement", c, False) for c in CLIENTS]}
        for policy in ("comparing", "reinstantiation"):
            out[f"{policy} (free)"] = [
                run_cell(policy, c, False) for c in CLIENTS
            ]
            out[f"{policy} (charged)"] = [
                run_cell(policy, c, True) for c in CLIENTS
            ]
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"ablation-overhead: Fig 14 cells, clients={list(CLIENTS)}"]
    for label, ys in curves.items():
        lines.append(f"  {label:<26} " + " ".join(f"{y:.3f}" for y in ys))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_overhead.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    placement = curves["placement"]
    for policy in ("comparing", "reinstantiation"):
        free = curves[f"{policy} (free)"]
        charged = curves[f"{policy} (charged)"]
        # At high concurrency — where the overhead scales with the
        # number of concurrent users — charging it clearly hurts...
        # (at low concurrency the effect is within seed noise).
        assert charged[-1] > 1.05 * free[-1]
        # ...and pushes the dynamic policy behind conservative
        # placement: §4.3's conclusion holds.
        assert charged[-1] > placement[-1]
