"""Ablation: the N/M ratio's effect on break-even (§4.2.2's prediction).

"It will be even bigger when the relation of object invocations inside
a move-block to the migration duration (i.e. N/M) increases.  As the
plot for the place-policy grows sublinearly ... an increase in N/M will
have an over-proportional effect on the break-even point."

We sweep N (the mean calls per block) at fixed M and locate the
placement policy's break-even against the sedentary baseline.
"""

import pytest

from conftest import RESULTS_DIR
from repro.analysis.breakeven import break_even
from repro.experiments.figures import FIG12_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

CLIENTS = [1, 3, 6, 10, 15, 20, 25]


def curve(policy, mean_n):
    return [
        run_cell(
            FIG12_BASE.with_overrides(
                policy=policy,
                clients=c,
                mean_calls_per_block=mean_n,
                seed=0,
            ),
            stopping=STOP,
        ).mean_communication_time_per_call
        for c in CLIENTS
    ]


@pytest.mark.benchmark(group="ablation-nm")
def test_break_even_grows_with_n_over_m(benchmark):
    def run():
        out = {}
        for mean_n in (8.0, 16.0):
            sedentary = curve("sedentary", mean_n)
            placement = curve("placement", mean_n)
            out[mean_n] = (
                break_even(CLIENTS, placement, sedentary),
                placement,
                sedentary,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["ablation-nm: placement break-even vs N/M (M=6)"]
    for mean_n, (be, placement, sedentary) in results.items():
        be_text = f"{be:.1f}" if be is not None else "> 25 (no crossing)"
        lines.append(f"  N~exp({mean_n:g}): break-even at {be_text} clients")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_nm_ratio.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    be_low = results[8.0][0]
    be_high = results[16.0][0]
    assert be_low is not None
    # Doubling N/M pushes the break-even up, possibly out of range.
    assert be_high is None or be_high > be_low
