"""Ablation: exclusive attachments (§3.4, described but not plotted).

The paper offers exclusive attachment — first-come-first-served, one
attachment per object — as the construct-free alternative to alliances.
Prediction: it lands between unrestricted and A-transitive attachment,
because it bounds working sets without aligning them with the
applications' actual usage patterns.
"""

import pytest

from conftest import RESULTS_DIR
from repro.core.attachment import AttachmentMode
from repro.experiments.figures import FIG16_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=25_000,
)

MODES = (
    ("unrestricted", AttachmentMode.UNRESTRICTED, False),
    ("exclusive", AttachmentMode.EXCLUSIVE, False),
    ("a-transitive", AttachmentMode.A_TRANSITIVE, True),
)


@pytest.mark.benchmark(group="ablation-exclusive")
@pytest.mark.parametrize("policy", ["migration", "placement"])
def test_exclusive_sits_between_modes(benchmark, policy):
    def run():
        out = {}
        for label, mode, ally in MODES:
            params = FIG16_BASE.with_overrides(
                policy=policy,
                attachment_mode=mode,
                use_alliances=ally,
                clients=10,
                seed=0,
            )
            out[label] = run_cell(
                params, stopping=STOP
            ).mean_communication_time_per_call
        return out

    values = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"ablation-exclusive ({policy}):"] + [
        f"  {label:<14} {value:.3f}" for label, value in values.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"ablation_exclusive_{policy}.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    if policy == "migration":
        # Exclusive bounds working sets, which is exactly what the
        # aggressive policy needs: never worse than unrestricted.
        assert values["exclusive"] <= values["unrestricted"] * 1.05
    else:
        # Under placement the unrestricted single component is already
        # tamed by one lock covering everything, so exclusive's smaller
        # sets do not win — an interesting interaction the paper does
        # not discuss.  We only require the same order of magnitude.
        assert values["exclusive"] <= values["unrestricted"] * 1.5
    # The alliance-aligned closure never loses to first-come-first-
    # served exclusivity by a real margin.
    assert values["a-transitive"] <= values["exclusive"] * 1.1
