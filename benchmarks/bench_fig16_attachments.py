"""Regenerates Figure 16: attachments and alliances (§4.4).

Paper shape: conventional migration with unrestricted attachment is
devastating (clients steal whole chained working sets from each other);
transient placement with unrestricted attachment already recovers most
of the damage; A-transitive attachment (alliances) helps both policies;
placement + A-transitive attachment is the best combination.
"""

import pytest

from conftest import record_result, run_definition
from repro.experiments.figures import figure16


@pytest.mark.benchmark(group="fig16")
def test_fig16_attachments(benchmark, bench_stopping, fast_sweep):
    definition = figure16(seed=0, fast=fast_sweep)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    last = {label: result.series(label)[-1] for label in result.labels}
    sedentary = last["without Migration"]
    mig_u = last["Migration + unrestricted Attachment"]
    mig_a = last["Migration + A-transitive Attachment"]
    place_u = last["Transient Placement + unrestricted Attachment"]
    place_a = last["Transient Placement + A-transitive Attachment"]

    # Devastation: unrestricted migration is the worst curve by far.
    assert mig_u > sedentary
    assert mig_u > 1.5 * mig_a
    # A-transitivity bounds the damage for conventional migration.
    assert mig_a < mig_u
    # Placement improves both attachment modes.
    assert place_u < mig_u
    assert place_a < mig_a
    # The combination wins overall.
    assert place_a <= min(mig_u, mig_a, place_u) * 1.05
    assert place_a < sedentary
