"""Ablation: transient fixing against thrashing (§2.2).

The paper mentions that objects are fixed at run time "e.g., to avoid
thrashing" but never evaluates it.  This bench does: the Fig 12
hot-spot scenario with the conventional policy wrapped in the
:class:`~repro.core.policies.guard.ThrashingGuard`.  Expected: the
guard caps the linear degradation (pinned objects stop ping-ponging)
without hurting the low-concurrency regime — but it does not recover
the place-policy's performance, because it only rate-limits conflicts
instead of resolving them.
"""

import pytest

from conftest import RESULTS_DIR
from repro.experiments.figures import FIG12_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

CLIENTS = (3, 10, 20, 25)
POLICIES = ("migration", "guarded:migration", "placement")


@pytest.mark.benchmark(group="ablation-guard")
def test_guard_caps_hotspot_degradation(benchmark):
    def run():
        return {
            policy: [
                run_cell(
                    FIG12_BASE.with_overrides(
                        policy=policy, clients=c, seed=0
                    ),
                    stopping=STOP,
                ).mean_communication_time_per_call
                for c in CLIENTS
            ]
            for policy in POLICIES
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"ablation-guard: Fig 12 cells, clients={list(CLIENTS)}"]
    for policy, ys in curves.items():
        lines.append(f"  {policy:<18} " + " ".join(f"{y:.3f}" for y in ys))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_guard.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    migration = curves["migration"]
    guarded = curves["guarded:migration"]
    placement = curves["placement"]

    # The guard leaves the low-concurrency regime untouched...
    assert guarded[0] == pytest.approx(migration[0], rel=0.1)
    # ...and substantially caps the high-concurrency degradation...
    assert guarded[-1] < 0.75 * migration[-1]
    # ...but does not reach the place-policy, which resolves conflicts
    # rather than just rate-limiting them.
    assert placement[-1] < guarded[-1]
