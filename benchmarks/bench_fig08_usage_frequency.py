"""Regenerates Figure 8: mean communication time per call vs t_m.

Paper shape (§4.2.1): the sedentary baseline is flat at 4/3; both
migration policies beat it at low concurrency (large t_m); transient
placement is at least as good as conventional migration everywhere; the
curves rise as t_m shrinks (more conflicts).
"""

import pytest

from conftest import record_result, run_definition
from repro.experiments.figures import figure8


@pytest.mark.benchmark(group="fig8")
def test_fig8_usage_frequency(benchmark, bench_stopping, fast_sweep):
    definition = figure8(seed=0, fast=fast_sweep)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    sedentary = result.series("without Migration")
    migration = result.series("Migration")
    placement = result.series("Transient Placement")

    # Flat baseline at 4/3.
    for value in sedentary:
        assert value == pytest.approx(4.0 / 3.0, rel=0.1)
    # Migration pays off at low concurrency (largest t_m point).
    assert migration[-1] < sedentary[-1]
    assert placement[-1] < sedentary[-1]
    # Placement dominates conventional migration (small slack).
    for p, m in zip(placement, migration):
        assert p <= m * 1.08
