"""Regenerates Figure 14: intelligent placement strategies.

Paper shape (§4.3): "Both strategies lead only to minor performance
gains" over the conservative place-policy — the three curves track each
other closely, even with the dynamic policies' bookkeeping overhead
neglected (as the paper does and we do).
"""

import pytest

from conftest import record_result, run_definition
from repro.experiments.figures import figure14


@pytest.mark.benchmark(group="fig14")
def test_fig14_dynamic_policies(benchmark, bench_stopping, fast_sweep):
    definition = figure14(seed=0, fast=fast_sweep)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    place = result.series("Conservative Place-Policy")
    comparing = result.series("Comparing the Nodes")
    reinst = result.series("Comparing and Reinstantiation")

    # The dynamic strategies stay within a modest band around the
    # conservative policy at every sampled client count: no dramatic
    # win anywhere (that is the paper's conclusion — they are not
    # worth their real-world overhead).
    for base, a, b in zip(place, comparing, reinst):
        if base < 0.2:  # the degenerate C=1 point: everything ~0
            continue
        assert a == pytest.approx(base, rel=0.3)
        assert b == pytest.approx(base, rel=0.3)
