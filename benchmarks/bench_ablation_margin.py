"""Ablation: the reinstantiation policy's "clear majority" margin.

§4.3 leaves "clear majority" unquantified.  This bench sweeps the
margin and shows the calibration trade-off: a margin of 1 re-migrates
so eagerly that transit blocking erases the benefit; by margin ~3 the
policy settles at the conservative place-policy's level (the paper's
"minor gains" regime).  Documents the default chosen in
``ComparingReinstantiation``.
"""

import pytest

from conftest import RESULTS_DIR
from repro.experiments.figures import FIG14_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import ClientServerWorkload

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

MARGINS = (1, 2, 3, 5)
CLIENTS = 20


def run_margin(margin):
    params = FIG14_BASE.with_overrides(
        policy="reinstantiation", clients=CLIENTS, seed=0
    )
    workload = ClientServerWorkload(params, stopping=STOP)
    workload.policy.majority_margin = margin
    return workload.run().mean_communication_time_per_call


@pytest.mark.benchmark(group="ablation-margin")
def test_margin_calibration(benchmark):
    def run():
        placement = ClientServerWorkload(
            FIG14_BASE.with_overrides(
                policy="placement", clients=CLIENTS, seed=0
            ),
            stopping=STOP,
        ).run().mean_communication_time_per_call
        return placement, {m: run_margin(m) for m in MARGINS}

    placement, by_margin = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"ablation-margin: reinstantiation at C={CLIENTS} (placement="
        f"{placement:.3f})"
    ] + [f"  margin={m}: {v:.3f}" for m, v in by_margin.items()]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_margin.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Eager re-migration (margin 1) is the worst of the sweep.
    assert by_margin[1] >= max(by_margin[3], by_margin[5]) * 0.95
    # The calibrated default lands near conservative placement.
    assert by_margin[3] == pytest.approx(placement, rel=0.25)
