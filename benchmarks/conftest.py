"""Shared infrastructure for the figure-regeneration benchmarks.

Each benchmark regenerates one table/figure of the paper: it runs the
experiment definition, prints the same rows/series the paper plots, and
writes them to ``benchmarks/results/<exp_id>.txt`` so the output
survives pytest's capture.  Set ``REPRO_BENCH_FULL=1`` to run the full
sweeps with the paper's 1 %-CI stopping rule (slow); the default uses
thinned sweeps with a 5 % rule, which preserves every qualitative
shape.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.report import format_table, to_csv
from repro.experiments.runner import ExperimentResult, run_figure
from repro.sim.stopping import StoppingConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Full mode: paper sweeps + the §4.1 stopping rule.
FULL_MODE = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: The stopping rule benches use by default: tight enough that curve
#: orderings are stable, loose enough to finish in seconds per cell.
BENCH_STOPPING = (
    StoppingConfig.paper()
    if FULL_MODE
    else StoppingConfig(
        relative_precision=0.05,
        confidence=0.95,
        batch_size=200,
        warmup=200,
        min_batches=5,
        max_observations=25_000,
    )
)


@pytest.fixture(scope="session")
def bench_stopping() -> StoppingConfig:
    return BENCH_STOPPING


@pytest.fixture(scope="session")
def fast_sweep() -> bool:
    """Whether figure definitions should thin their sweeps."""
    return not FULL_MODE


def record_result(result: ExperimentResult, metric: str | None = None) -> str:
    """Format, persist and return an experiment's table."""
    table = format_table(result, metric=metric)
    RESULTS_DIR.mkdir(exist_ok=True)
    name = result.definition.exp_id + ("" if metric is None else f"_{metric}")
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    (RESULTS_DIR / f"{name}.csv").write_text(to_csv(result, metric=metric))
    print("\n" + table)
    return table


def run_definition(definition, stopping):
    """Run a figure definition (serial; cells are short in bench mode)."""
    return run_figure(definition, stopping=stopping)
