"""Ablation: object-location strategies (§4.1 normalizes them away).

The paper neglects name-server lookup, forwarding addresses, broadcast
and immediate update, folding their cost into the Exp(1) message time.
This bench quantifies what was folded away: the same Fig 12 cell under
each locator.  Immediate update is the paper's model (zero lookup
cost); the others add measurable but shape-preserving overhead.
"""

import pytest

from conftest import RESULTS_DIR
from repro.experiments.figures import FIG12_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

LOCATORS = ("immediate", "forwarding", "nameserver", "broadcast")


@pytest.mark.benchmark(group="ablation-locator")
def test_locator_overhead_preserves_policy_ordering(benchmark):
    def run():
        out = {}
        for locator in LOCATORS:
            row = {}
            for policy in ("migration", "placement"):
                params = FIG12_BASE.with_overrides(
                    policy=policy, clients=10, locator=locator, seed=0
                )
                row[policy] = run_cell(
                    params, stopping=STOP
                ).mean_communication_time_per_call
            out[locator] = row
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["ablation-locator: Fig 12 cell (C=10) per location strategy"]
    for locator, row in results.items():
        lines.append(
            f"  {locator:<11} migration={row['migration']:.3f} "
            f"placement={row['placement']:.3f}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_locator.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    for locator, row in results.items():
        # Placement beats conventional migration under every locator:
        # the paper's normalization does not hide a reversal.
        assert row["placement"] < row["migration"]
        # Location protocols only add cost relative to immediate update.
        assert row["placement"] >= results["immediate"]["placement"] * 0.9
