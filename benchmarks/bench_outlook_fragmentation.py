"""Outlook (§5): fragmentation granularity under conflicting policies.

The paper's closing question names fragmentation alongside replication.
This bench sweeps the fragment count K per logical object (state is
split: each fragment is 1/K of the object, transfer time M/K) on the
Fig 12 hot-spot scenario.

Measured shape:

* K = 1 is the monolithic case and reproduces Fig 12's degradation;
* finer fragments shrink the damage dramatically — a conflict steals
  only the touched fragments and blocks callers for M/K, and blocks
  move only the state they actually use;
* the win has diminishing returns and reverses slightly at large K:
  every touched fragment pays its own move-request message, so message
  overhead eventually outweighs the smaller transfers.
"""

import pytest

from conftest import RESULTS_DIR
from repro.fragmentation import (
    FragmentationParameters,
    run_fragmentation_cell,
)
from repro.sim.stopping import StoppingConfig

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

FRAGMENT_COUNTS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="outlook-fragmentation")
@pytest.mark.parametrize("policy", ["migration", "placement"])
def test_granularity_tames_conflicts(benchmark, policy):
    def run():
        return {
            k: run_fragmentation_cell(
                FragmentationParameters(
                    policy=policy,
                    clients=20,
                    fragments_per_object=k,
                    seed=0,
                ),
                stopping=STOP,
            ).mean_communication_time_per_call
            for k in FRAGMENT_COUNTS
        }

    values = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"outlook-fragmentation ({policy}, C=20):"] + [
        f"  K={k}: {v:.3f}" for k, v in values.items()
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"outlook_fragmentation_{policy}.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    # Splitting the object at all is a large win under conflict...
    assert values[2] < 0.8 * values[1]
    # ...with diminishing (or negative) returns from 4 to 8: the
    # per-fragment move-request overhead catches up.
    gain_2_to_4 = values[2] - values[4]
    gain_4_to_8 = values[4] - values[8]
    assert gain_4_to_8 < gain_2_to_4 + 0.05
