"""Outlook (§5): replication shows the same non-monolithic hazard.

"It seems worthwhile to investigate whether similar negative effects as
we have shown for object migration arise for other mechanisms like
replication ... if they are applied in non-monolithic systems."

This bench runs the investigation: C autonomous clients share objects
through a write-invalidate replication layer; the read ratio is swept.

Measured shape (mirroring Figs 8/12 structurally):

* *eager* replication (every component replicates on first remote
  read — the conventional-migration analogue) wins when reads dominate
  but degrades **below the no-replication baseline** once writes
  appear: each write pays an invalidation fan-out and the readers
  immediately re-replicate (thrash).
* *threshold* replication (earn a replica after k remote reads, capped
  replica set — the place-policy analogue) keeps most of the read-heavy
  benefit and converges to the baseline instead of crossing it.
"""

import pytest

from conftest import RESULTS_DIR
from repro.replication import ReplicationParameters, run_replication_cell
from repro.sim.stopping import StoppingConfig

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

READ_RATIOS = (0.99, 0.95, 0.9, 0.8, 0.7, 0.5)
POLICIES = ("none", "eager", "threshold")


@pytest.mark.benchmark(group="outlook-replication")
def test_replication_conflicts_mirror_migration(benchmark):
    def run():
        curves = {}
        for policy in POLICIES:
            curves[policy] = [
                run_replication_cell(
                    ReplicationParameters(
                        policy=policy, read_ratio=rr, seed=0
                    ),
                    stopping=STOP,
                ).mean_op_time
                for rr in READ_RATIOS
            ]
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "outlook-replication: mean op time vs read ratio "
        f"{list(READ_RATIOS)}"
    ]
    for policy, ys in curves.items():
        lines.append(f"  {policy:<10} " + " ".join(f"{y:.3f}" for y in ys))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "outlook_replication.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    none, eager, threshold = (
        curves["none"],
        curves["eager"],
        curves["threshold"],
    )
    # The baseline is flat (replication-free cost is read-ratio
    # independent up to the small write round-trip asymmetry).
    assert max(none) - min(none) < 0.3
    # Eager wins decisively at the read-heavy end...
    assert eager[0] < 0.6 * none[0]
    # ...and crosses BELOW the baseline as writes appear: the paper's
    # hypothesized negative effect, reproduced.
    assert eager[-1] > 1.5 * none[-1]
    # The conservative policy keeps a read-heavy win without ever
    # degrading far below the baseline.
    assert threshold[0] < none[0]
    assert threshold[-1] < 1.25 * none[-1]
