"""Ablation: the §4.1 claim that topology does not matter.

"We also performed simulations for other structures.  But this had no
effects on the results."  That holds because the paper normalizes the
message latency to the same mean for every node pair.  This bench
re-runs a Fig 12 cell on four topologies under the normalized model
and checks the spread is within noise; it also demonstrates the claim
is an artifact of normalization by running the same cell with per-hop
latency, where a ring network is visibly slower.
"""

import pytest

from conftest import RESULTS_DIR
from repro.analysis.series import Curve, spread
from repro.experiments.figures import FIG12_BASE
from repro.network.latency import PerHopExponentialLatency
from repro.network.topology import make_topology
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import ClientServerWorkload, run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=25_000,
)

TOPOLOGIES = ("full", "ring", "star", "grid")
CLIENTS = (3.0, 10.0)


@pytest.mark.benchmark(group="ablation-topology")
def test_topology_has_no_effect_under_normalization(benchmark):
    def run():
        curves = []
        for name in TOPOLOGIES:
            ys = []
            for c in CLIENTS:
                params = FIG12_BASE.with_overrides(
                    policy="placement", clients=int(c), topology=name, seed=0
                )
                ys.append(
                    run_cell(params, stopping=STOP)
                    .mean_communication_time_per_call
                )
            curves.append(Curve(name, CLIENTS, tuple(ys)))
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["ablation-topology: placement on Fig 12 cells (normalized latency)"]
    for curve in curves:
        lines.append(
            f"  {curve.label:<6} " + " ".join(f"{y:.3f}" for y in curve.y)
        )
    gap = spread(curves)
    lines.append(f"  max pairwise gap: {gap:.3f}")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "ablation_topology.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # "No effect": all topology curves agree within stochastic noise.
    assert gap < 0.25


@pytest.mark.benchmark(group="ablation-topology")
def test_per_hop_latency_breaks_the_claim(benchmark):
    """Without normalization, a ring IS slower — the paper's claim is
    a property of its latency model, not of the policies."""

    def run_one(topology_name):
        params = FIG12_BASE.with_overrides(
            policy="sedentary", clients=10, topology=topology_name, seed=0
        )
        workload = ClientServerWorkload.__new__(ClientServerWorkload)
        # Build normally, then swap in the per-hop latency model.
        workload.__init__(params, stopping=STOP)
        topo = workload.system.network.topology
        workload.system.network.latency = PerHopExponentialLatency(
            topo, mean_per_hop=1.0
        )
        return workload.run().mean_communication_time_per_call

    def run():
        return run_one("full"), run_one("ring")

    full, ring = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nper-hop latency: full={full:.3f} ring={ring:.3f}")
    # A 27-node ring has mean distance ~7 hops: clearly slower.
    assert ring > 2.0 * full
