"""Ablation: call-by-move vs call-by-visit (§2.3's two standard policies).

The paper evaluates the move style (the object stays at the mover until
somebody else wants it).  Call-by-visit returns the object to its
origin after every block.  Prediction: visit roughly doubles the
migration work per block, so it loses to move at low concurrency; at
high concurrency it can help a *sedentary-ish* access pattern because
the object returns to a well-known home instead of wandering — but for
the paper's uniform clients the homes are no better than the last
user's node, so visit should simply shift the curve up.
"""

import pytest

from conftest import RESULTS_DIR
from repro.experiments.figures import FIG12_BASE
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import run_cell

STOP = StoppingConfig(
    relative_precision=0.05,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

CLIENTS = (3, 10, 20)


@pytest.mark.benchmark(group="ablation-visit")
@pytest.mark.parametrize("policy", ["migration", "placement"])
def test_visit_adds_return_transfer_cost(benchmark, policy):
    def run():
        out = {}
        for style in ("move", "visit"):
            out[style] = [
                run_cell(
                    FIG12_BASE.with_overrides(
                        policy=policy,
                        clients=c,
                        block_style=style,
                        seed=0,
                    ),
                    stopping=STOP,
                ).mean_communication_time_per_call
                for c in CLIENTS
            ]
        return out

    values = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"ablation-visit ({policy}): clients={list(CLIENTS)}"]
    for style, ys in values.items():
        lines.append(
            f"  {style:<6} " + " ".join(f"{y:.3f}" for y in ys)
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"ablation_visit_{policy}.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    # Visit pays the return trip: never cheaper than move by a real
    # margin, and strictly worse somewhere in the sweep.
    assert all(
        v >= m * 0.95 for v, m in zip(values["visit"], values["move"])
    )
    assert any(
        v > m * 1.05 for v, m in zip(values["visit"], values["move"])
    )
