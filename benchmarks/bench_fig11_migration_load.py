"""Regenerates Figure 11: the migration-load component of Figure 8.

Paper shape: "the migration duration per invocation decreases at high
concurrency levels ... the chance of finding that the callee is already
collocated with the caller increases with concurrency"; the sedentary
baseline performs no migrations at all.
"""

import pytest

from conftest import record_result, run_definition
from repro.experiments.figures import figure11


@pytest.mark.benchmark(group="fig11")
def test_fig11_migration_load(benchmark, bench_stopping, fast_sweep):
    definition = figure11(seed=0, fast=fast_sweep)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    # No migrations without migration.
    assert all(v == 0.0 for v in result.series("without Migration"))
    # The migration load per call peaks at moderate concurrency and
    # *falls* at the highest concurrency (smallest t_m, index 0): the
    # callee is increasingly often already collocated (§4.2.1).
    migration = result.series("Migration")
    assert migration[0] < max(migration[1:])
    # Placement performs at most as much migration work as conventional
    # moves (rejected requests migrate nothing).
    placement = result.series("Transient Placement")
    for p, m in zip(placement, migration):
        assert p <= m * 1.08
