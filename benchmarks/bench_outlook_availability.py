"""Outlook: §2.2's availability-vs-performance tension, quantified.

"Note, for example, that availability calls for distributing objects,
while performance calls for collocating them."  The paper states the
tension and moves on; this bench measures both sides on the mixed
workload of :mod:`repro.availability`:

* chained group operations reward collocation (internal hops free);
* failover-style service accesses reward spreading (a single node
  failure cannot take the whole group down).

The bench sweeps the workload mix under a failure-prone network and
shows the winning placement flip — which is exactly why placement must
be a *policy* informed by usage patterns, the paper's recurring theme.
"""

import pytest

from conftest import RESULTS_DIR
from repro.availability import AvailabilityParameters, run_availability_cell
from repro.sim.stopping import StoppingConfig

STOP = StoppingConfig(
    relative_precision=0.08,
    confidence=0.95,
    batch_size=200,
    warmup=200,
    min_batches=5,
    max_observations=20_000,
)

#: Fraction of chained group operations in the mix.
MIXES = (0.0, 0.1, 0.3, 0.6, 1.0)


@pytest.mark.benchmark(group="outlook-availability")
def test_placement_winner_flips_with_usage_pattern(benchmark):
    def run():
        out = {}
        for placement in ("collocated", "spread"):
            out[placement] = [
                run_availability_cell(
                    AvailabilityParameters(
                        placement=placement,
                        mttf=200.0,
                        mttr=50.0,
                        group_op_fraction=mix,
                        seed=0,
                    ),
                    stopping=STOP,
                ).mean_op_time
                for mix in MIXES
            ]
        return out

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "outlook-availability: mean op time vs group-op fraction "
        f"{list(MIXES)} (mttf=200, mttr=50)"
    ]
    for placement, ys in curves.items():
        lines.append(
            f"  {placement:<11} " + " ".join(f"{y:7.3f}" for y in ys)
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "outlook_availability.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    collocated, spread = curves["collocated"], curves["spread"]
    # Pure service accesses: spreading wins (failure coverage).
    assert spread[0] < collocated[0]
    # Pure cooperative chains: collocation wins (communication cost +
    # single-node exposure instead of k-node exposure).
    assert collocated[-1] < spread[-1]
