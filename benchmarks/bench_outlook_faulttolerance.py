"""Outlook: the migration policies on a faulty system.

The paper's evaluation assumes perfect nodes and a lossless network.
This bench re-runs its central comparison — no migration, conventional
migration, §3.2 place-policy — with the fault layer switched on, and
measures the two claims the layer exists to support:

* **Leases rescue the place-policy under crashes.**  A mover that
  crashes inside its move-block never issues ``end``; with plain §3.2
  locks its locks leak forever and later movers are starved into
  permanent remote invocation.  With leases plus the sweeper, the locks
  are reclaimed and the place-policy keeps its advantage.

* **Retries bound latency under message loss.**  With loss up to 5%,
  timeout/retry keeps the mean call duration within a small factor of
  the loss-free run and calls essentially never fail outright.

Crash cells average three seeds: a single run's outcome depends on how
many crashed movers happened to hold locks, which is exactly the
mechanism under study.
"""

import pytest

from conftest import RESULTS_DIR
from repro.availability import (
    FaultToleranceParameters,
    run_faulttolerance_cell,
)

#: Crash regime: mean up-time 150, repair 50 → ~25% downtime per node.
MTTF, MTTR = 150.0, 50.0
LEASE = 60.0
SEEDS = (0, 1, 2)
LOSSES = (0.0, 0.01, 0.03, 0.05)


def _crash_cell(policy, lease_duration=None):
    results = [
        run_faulttolerance_cell(
            FaultToleranceParameters(
                policy=policy,
                lease_duration=lease_duration,
                mttf=MTTF,
                mttr=MTTR,
                seed=seed,
            )
        )
        for seed in SEEDS
    ]
    n = len(results)
    return {
        "duration": sum(r.mean_call_duration for r in results) / n,
        "throughput": sum(r.throughput for r in results) / n,
        "locks_reclaimed": sum(r.locks_expired + r.locks_broken for r in results),
        "aborts": sum(r.migrations_aborted for r in results),
    }


@pytest.mark.benchmark(group="outlook-faulttolerance")
def test_leases_rescue_place_policy_under_crashes(benchmark):
    def run():
        return {
            "sedentary": _crash_cell("sedentary"),
            "migration": _crash_cell("migration"),
            "placement": _crash_cell("placement"),
            "placement+lease": _crash_cell("placement", lease_duration=LEASE),
        }

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "outlook-faulttolerance: policies under crashes "
        f"(mttf={MTTF:g}, mttr={MTTR:g}, seeds={list(SEEDS)})",
        f"  {'policy':<16} {'mean dur':>9} {'thrput':>8} "
        f"{'reclaimed':>9} {'aborts':>7}",
    ]
    for name, c in cells.items():
        lines.append(
            f"  {name:<16} {c['duration']:9.3f} {c['throughput']:8.3f} "
            f"{c['locks_reclaimed']:9d} {c['aborts']:7d}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "outlook_faulttolerance_crashes.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    leased = cells["placement+lease"]
    unleased = cells["placement"]
    # Leaked locks starve the plain place-policy; leases reclaim them.
    assert leased["locks_reclaimed"] > 0
    assert leased["duration"] < unleased["duration"]
    assert leased["throughput"] > unleased["throughput"]
    # With leases the place-policy beats never migrating even while
    # nodes crash — migration still pays off on a faulty system.
    assert leased["duration"] < cells["sedentary"]["duration"]
    assert leased["throughput"] > cells["sedentary"]["throughput"]


@pytest.mark.benchmark(group="outlook-faulttolerance")
def test_retries_bound_latency_under_loss(benchmark):
    def run():
        out = []
        for loss in LOSSES:
            r = run_faulttolerance_cell(
                FaultToleranceParameters(
                    policy="placement",
                    lease_duration=LEASE,
                    loss=loss,
                    seed=0,
                )
            )
            out.append(
                {
                    "loss": loss,
                    "duration": r.mean_call_duration,
                    "retries": r.retries,
                    "failed": r.failed_calls,
                    "calls": r.raw["calls"],
                }
            )
        return out

    curve = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        "outlook-faulttolerance: leased place-policy vs message loss",
        f"  {'loss':>5} {'mean dur':>9} {'retries':>8} {'failed':>7} "
        f"{'calls':>7}",
    ]
    for c in curve:
        lines.append(
            f"  {c['loss']:5.2f} {c['duration']:9.3f} {c['retries']:8d} "
            f"{c['failed']:7d} {c['calls']:7d}"
        )
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "outlook_faulttolerance_loss.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    base = curve[0]
    worst = curve[-1]
    # Retries fire under loss...
    assert worst["retries"] > 0
    # ...and they bound the damage: at 5% loss the mean call duration
    # stays within 2x of the loss-free run...
    assert worst["duration"] < 2.0 * base["duration"]
    # ...with essentially no call failing outright (< 0.1%).
    assert worst["failed"] <= max(1, worst["calls"] // 1000)
