"""Regenerates Figure 12: hot-spot objects under growing client counts.

Paper shape (§4.2.2): conventional migration grows roughly linearly in
the number of clients and crosses the sedentary baseline near C = 6;
transient placement grows sublinearly with a decreasing rate and
crosses near C = 20.
"""

import pytest

from conftest import FULL_MODE, record_result, run_definition
from repro.analysis.breakeven import break_even
from repro.experiments.figures import figure12


@pytest.mark.benchmark(group="fig12")
def test_fig12_client_scaling(benchmark, bench_stopping):
    # The break-even analysis needs a dense-enough grid, so this bench
    # always uses the full sweep; only the stopping rule is relaxed.
    definition = figure12(seed=0, fast=False)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    x = list(definition.x_values)
    sedentary = result.series("without Migration")
    migration = result.series("Migration")
    placement = result.series("Transient Placement")

    # Baseline approaches 2*(1 - 1/27) ~ 1.93 for many clients.
    assert sedentary[-1] == pytest.approx(1.93, rel=0.08)

    be_migration = break_even(x, migration, sedentary)
    be_placement = break_even(x, placement, sedentary)
    assert be_migration is not None and 3.5 <= be_migration <= 9  # paper: 6
    assert be_placement is not None and 10 <= be_placement <= 25  # paper: 20
    assert be_placement >= 2.0 * be_migration

    # Migration is the worst policy at the largest client count.
    assert migration[-1] > sedentary[-1]
    assert migration[-1] > placement[-1]
