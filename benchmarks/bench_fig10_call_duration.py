"""Regenerates Figure 10: the call-duration component of Figure 8.

Paper shape: "the duration of calls increases with concurrency, since
the chances to migrate an object to the place of the caller and to
perform all invocations locally decreases" — i.e. the migration
policies' call-duration curves fall as t_m grows.
"""

import pytest

from conftest import record_result, run_definition
from repro.experiments.figures import figure10


@pytest.mark.benchmark(group="fig10")
def test_fig10_call_duration(benchmark, bench_stopping, fast_sweep):
    definition = figure10(seed=0, fast=fast_sweep)

    result = benchmark.pedantic(
        run_definition,
        args=(definition, bench_stopping),
        rounds=1,
        iterations=1,
    )
    record_result(result)

    for label in ("Migration", "Transient Placement"):
        curve = result.series(label)
        # Highest concurrency (smallest t_m) has the longest calls.
        assert curve[0] > curve[-1]
    # The sedentary baseline's call duration IS its communication time.
    sedentary = result.series("without Migration")
    for value in sedentary:
        assert value == pytest.approx(4.0 / 3.0, rel=0.1)
