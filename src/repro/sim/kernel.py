"""The discrete-event simulation environment (clock + event calendar).

:class:`Environment` owns simulated time and the pending-event heap.
Events are totally ordered by ``(time, priority, sequence)``; the
sequence number makes scheduling deterministic and FIFO among equals,
which the reproduction relies on for repeatable experiments.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
3
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from repro.errors import EmptySchedule, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.sim.process import Process

Infinity = float("inf")


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock & introspection ----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._queue)

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, list(events))

    # -- scheduling & stepping ------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation with the
            # original exception so errors never pass silently.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty;
            a number
                run until the clock reaches that time (the clock is set
                to exactly ``until`` on return);
            an :class:`Event`
                run until the event fires and return its value (raises
                if the event failed).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until={at} must lie in the future (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # URGENT so the stop fires before ordinary events at `at`.
            self.schedule(until, priority=0, delay=at - self._now)

        if until is not None:
            if until.callbacks is None:
                # Already processed: report its value immediately.
                if until._ok:
                    return until.value
                raise until._value
            until.callbacks.append(_stop_simulation)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            return stop.value
        except EmptySchedule:
            if until is not None:
                if not until.triggered:
                    raise RuntimeError(
                        f"no events scheduled but {until!r} never fired"
                    ) from None
            return None


def _stop_simulation(event: Event) -> None:
    """Callback attached to ``until`` events: unwinds :meth:`Environment.run`."""
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
