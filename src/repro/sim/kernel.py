"""The discrete-event simulation environment (clock + event calendar).

:class:`Environment` owns simulated time and the pending-event heap.
Events are totally ordered by ``(time, priority, sequence)``; the
sequence number makes scheduling deterministic and FIFO among equals,
which the reproduction relies on for repeatable experiments.

Two fast paths keep the hot loop lean without changing that order:

* Zero-delay :data:`~repro.sim.events.URGENT` events (process
  bootstrap, interrupts, immediate sends) go onto a FIFO deque that the
  stepper checks before the heap.  Such events always carry the current
  timestamp and URGENT priority, so FIFO order *is* heap order; the
  only events that may legally overtake them are already-heaped entries
  at the same time with a smaller ``(priority, sequence)`` key, which
  the stepper checks explicitly.
* :meth:`Environment.sleep` hands out pooled
  :class:`~repro.sim.events.Sleep` timeouts that are recycled after
  processing, eliminating the allocation that dominates the
  yield-timeout pattern.

Example
-------
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
3
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from repro.errors import EmptySchedule, StopSimulation
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    NORMAL,
    Sleep,
    Timeout,
    URGENT,
)
from repro.sim.process import Process

Infinity = float("inf")

#: Default upper bound on retained recycled sleep events (bounds memory
#: when a burst of concurrent sleepers drains all at once).
_SLEEP_POOL_MAX = 256


class Environment:
    """Execution environment for a single simulation run.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    sleep_pool_cap:
        Upper bound on retained recycled :meth:`sleep` events (default
        256).  Sharded runs hold one kernel — and therefore one pool —
        per shard, so they pass a smaller cap to keep N pools from
        multiplying the retained memory.  ``0`` disables recycling.
    """

    __slots__ = (
        "_now",
        "_queue",
        "_urgent",
        "_eid",
        "_active_process",
        "_sleep_pool",
        "_sleep_pool_cap",
    )

    def __init__(
        self, initial_time: float = 0.0, sleep_pool_cap: int = _SLEEP_POOL_MAX
    ):
        if sleep_pool_cap < 0:
            raise ValueError(
                f"sleep_pool_cap must be >= 0, got {sleep_pool_cap}"
            )
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        #: Zero-delay URGENT fast lane: ``(sequence, event)`` in FIFO
        #: order, every entry stamped with the current ``_now``.
        self._urgent: "deque[Tuple[int, Event]]" = deque()
        self._eid = count()
        self._active_process: Optional[Process] = None
        self._sleep_pool: List[Sleep] = []
        self._sleep_pool_cap = sleep_pool_cap

    # -- clock & introspection ----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if self._urgent:
            # Fast-lane entries are always due at the current time.
            return self._now
        return self._queue[0][0] if self._queue else Infinity

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._queue) + len(self._urgent)

    @property
    def scheduled_events(self) -> int:
        """Total events ever placed on the calendar (monotonic).

        Recovered from the event-id allocator, so the hot loop carries
        no counter: the telemetry sampler derives event throughput as
        the per-interval delta of this value, and the disabled-telemetry
        path is untouched by construction.
        """
        # count.__reduce__() -> (count, (next_value,)): the next id to
        # be handed out equals the number of ids consumed so far.
        return self._eid.__reduce__()[1][0]

    # -- event factories ------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def sleep(self, delay: float, value: Any = None) -> Sleep:
        """Pooled timeout for the dominant ``yield env.sleep(d)`` idiom.

        Semantically identical to :meth:`timeout` but the returned
        event is recycled once processed, so it must be yielded
        immediately and exactly once — never stored, re-yielded after
        an interrupt, or combined into a condition.
        """
        pool = self._sleep_pool
        if not pool:
            return Sleep(self, delay, value)
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = pool.pop()
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        heappush(
            self._queue, (self._now + delay, NORMAL, next(self._eid), event)
        )
        return event

    def process(self, generator, name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all of ``events`` have fired."""
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when any of ``events`` has fired."""
        return AnyOf(self, list(events))

    # -- scheduling & stepping ------------------------------------------------

    def schedule(
        self, event: Event, priority: int = NORMAL, delay: float = 0.0
    ) -> None:
        """Place a triggered event on the calendar ``delay`` from now."""
        if delay == 0.0 and priority == URGENT:
            self._urgent.append((next(self._eid), event))
        else:
            heappush(
                self._queue,
                (self._now + delay, priority, next(self._eid), event),
            )

    def _pop(self) -> Event:
        """Remove and return the next event in total order.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        urgent = self._urgent
        if urgent:
            queue = self._queue
            if queue:
                # A heaped entry may only precede the fast lane when it
                # is due now with a smaller (priority, sequence) key;
                # heap times never lie in the past, so ``<=`` is an
                # equality test.
                top = queue[0]
                if top[0] <= self._now and (
                    top[1] < URGENT
                    or (top[1] == URGENT and top[2] < urgent[0][0])
                ):
                    self._now, _, _, event = heappop(queue)
                    return event
            return urgent.popleft()[1]
        try:
            self._now, _, _, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events remain") from None
        return event

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        event = self._pop()

        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation with the
            # original exception so errors never pass silently.
            exc = event._value
            raise exc

        if type(event) is Sleep:
            pool = self._sleep_pool
            if len(pool) < self._sleep_pool_cap:
                pool.append(event)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the calendar is empty;
            a number
                run until the clock reaches that time (the clock is set
                to exactly ``until`` on return);
            an :class:`Event`
                run until the event fires and return its value (raises
                if the event failed).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until={at} must lie in the future (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # URGENT so the stop fires before ordinary events at `at`.
            self.schedule(until, priority=0, delay=at - self._now)

        if until is not None:
            if until.callbacks is None:
                # Already processed: report its value immediately.
                if until._ok:
                    return until.value
                raise until._value
            until.callbacks.append(_stop_simulation)

        # Inlined stepping loop: identical semantics to step(), with
        # the heap, fast lane and pool bound to locals.  This is the
        # hottest loop in the repository.
        queue = self._queue
        urgent = self._urgent
        pool = self._sleep_pool
        pool_cap = self._sleep_pool_cap
        pop = heappop
        now = self._now
        try:
            while True:
                if urgent:
                    event = None
                    if queue:
                        top = queue[0]
                        if top[0] <= now and (
                            top[1] < URGENT
                            or (top[1] == URGENT and top[2] < urgent[0][0])
                        ):
                            t, _, _, event = pop(queue)
                            self._now = now = t
                    if event is None:
                        event = urgent.popleft()[1]
                elif queue:
                    t, _, _, event = pop(queue)
                    self._now = now = t
                else:
                    if until is not None and not until.triggered:
                        raise RuntimeError(
                            f"no events scheduled but {until!r} never fired"
                        ) from None
                    return None

                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)

                if not event._ok and not event._defused:
                    raise event._value

                if type(event) is Sleep and len(pool) < pool_cap:
                    pool.append(event)
        except StopSimulation as stop:
            return stop.value


def _stop_simulation(event: Event) -> None:
    """Callback attached to ``until`` events: unwinds :meth:`Environment.run`."""
    if event._ok:
        raise StopSimulation(event._value)
    event._defused = True
    raise event._value
