"""Cross-shard message records and their deterministic merge order.

Everything here crosses process boundaries, so the records are plain
frozen dataclasses of scalars — no references into any shard's live
object graph.  The total order of cross-shard events is

    ``(window, deliver_at, src_shard, seq)``

which every backend (inline or multiprocess, any worker grouping) sorts
inbound batches by before scheduling delivery, making merged runs
bit-identical regardless of transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class RemoteCall:
    """A request message from a client's shard to a remote server's.

    Attributes
    ----------
    src_shard / dst_shard:
        Sending and owning shard ids.
    seq:
        Per-sender sequence number; ``(src_shard, seq)`` is the call's
        globally unique correlation id.
    send_time:
        Simulated time the request left the client.
    deliver_at:
        Simulated arrival time at the destination shard.  The sampled
        link delay is ``deliver_at - send_time >= lookahead`` by
        construction — that inequality is the conservative-sync safety
        argument.
    target:
        Destination-local server index (the shard's hot object when 0).
    """

    src_shard: int
    dst_shard: int
    seq: int
    send_time: float
    deliver_at: float
    target: int = 0

    @property
    def call_id(self) -> Tuple[int, int]:
        """Globally unique correlation id."""
        return (self.src_shard, self.seq)


@dataclass(frozen=True)
class RemoteReply:
    """The response message completing one :class:`RemoteCall`.

    ``call_seq``/``call_shard`` echo the request's correlation id;
    ``service_time`` is the server-side duration for accounting.
    """

    src_shard: int
    dst_shard: int
    seq: int
    call_shard: int
    call_seq: int
    send_time: float
    deliver_at: float
    service_time: float

    @property
    def call_id(self) -> Tuple[int, int]:
        """Correlation id of the request this reply answers."""
        return (self.call_shard, self.call_seq)


#: Any cross-shard message.
RemoteMessage = "RemoteCall | RemoteReply"


@dataclass(frozen=True)
class WindowBatch:
    """One shard's outbound messages for one synchronization window."""

    window: int
    src_shard: int
    messages: Tuple

    def __len__(self) -> int:
        return len(self.messages)


def merge_key(message) -> Tuple[float, int, int]:
    """Sort key ordering inbound messages deterministically.

    The window index is implied: batches are exchanged per window, so
    sorting within one exchange by ``(deliver_at, src_shard, seq)``
    realizes the documented ``(window, timestamp, shard-id, seq)``
    total order.
    """
    return (message.deliver_at, message.src_shard, message.seq)


def route_batches(batches: List[WindowBatch], shards: int) -> List[List]:
    """Group one window's batches into per-destination delivery lists.

    Returns ``inbound`` with ``inbound[s]`` sorted by :func:`merge_key`
    — identical output for any batch arrival order.
    """
    inbound: List[List] = [[] for _ in range(shards)]
    for batch in batches:
        for message in batch.messages:
            inbound[message.dst_shard].append(message)
    for messages in inbound:
        messages.sort(key=merge_key)
    return inbound
