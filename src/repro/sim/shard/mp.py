"""Multiprocess backend: shard groups hosted in worker processes.

A :class:`ProcessShardHost` owns one worker process that builds its
shard kernels locally (from the picklable
:class:`~repro.sim.shard.partition.ShardPlan`) and then executes the
same per-window protocol as the inline host, driven by small command
tuples over a :func:`multiprocessing.Pipe`:

``("window", index, t_next, inbound, poll)``
    deliver/advance/drain every hosted shard, reply with
    ``("ok", batches, stop_flags_or_None)``;
``("finalize",)``
    reply with ``("outcomes", [ShardOutcome, ...])``;
``("exit",)``
    leave the command loop and let the process end.

Determinism does not depend on the transport: each shard's kernel is a
pure function of ``(plan, shard_id, stopping)`` plus the inbound
message sequence, and inbound batches are sorted into merge order by
the coordinator before they are shipped.  The two backends therefore
produce bit-identical merged results, which the golden tests assert.
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import List, Optional, Sequence

from repro.sim.shard.kernel import ShardKernel, ShardOutcome
from repro.sim.shard.messages import WindowBatch
from repro.sim.shard.partition import ShardPlan
from repro.sim.stopping import StoppingConfig


class ShardWorkerError(RuntimeError):
    """A shard worker process failed; carries the remote traceback."""


def _worker_main(
    conn,
    plan: ShardPlan,
    shard_ids: List[int],
    stopping: Optional[StoppingConfig],
    trace: bool,
) -> None:
    """Command loop of one worker process (runs in the child)."""
    try:
        kernels = [
            ShardKernel(plan, sid, stopping=stopping, trace=trace)
            for sid in shard_ids
        ]
        for kernel in kernels:
            kernel.start()
        conn.send(("ready", shard_ids))
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    try:
        while True:
            command = conn.recv()
            kind = command[0]
            if kind == "window":
                _, window, t_next, inbound, poll = command
                batches = []
                for kernel, messages in zip(kernels, inbound):
                    kernel.deliver(messages)
                    kernel.advance(t_next)
                    batches.append(
                        WindowBatch(
                            window=window,
                            src_shard=kernel.shard_id,
                            messages=tuple(kernel.drain()),
                        )
                    )
                stops = (
                    [k.should_stop() for k in kernels] if poll else None
                )
                conn.send(("ok", batches, stops))
            elif kind == "finalize":
                conn.send(("outcomes", [k.outcome() for k in kernels]))
            elif kind == "exit":
                break
            else:  # pragma: no cover - protocol bug guard
                conn.send(("error", f"unknown command {kind!r}"))
                break
    except EOFError:  # pragma: no cover - coordinator died
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class ProcessShardHost:
    """Hosts a group of shards in one dedicated worker process.

    Same ``dispatch``/``collect``/``finalize``/``close`` surface as
    :class:`~repro.sim.shard.sync.LocalShardHost`; the coordinator
    drives both interchangeably.  ``dispatch`` only writes the command
    into the pipe, so N hosts' windows genuinely overlap and the
    barrier wait is the slowest worker's window time.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_ids: Sequence[int],
        stopping: Optional[StoppingConfig] = None,
        trace: bool = False,
        context: Optional[str] = None,
    ):
        self.shard_ids = list(shard_ids)
        ctx = multiprocessing.get_context(context)
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main,
            args=(child, plan, self.shard_ids, stopping, trace),
            name=f"shard-host-{'-'.join(map(str, self.shard_ids))}",
            daemon=True,
        )
        self._process.start()
        child.close()
        ready = self._recv()
        if ready[0] != "ready":  # pragma: no cover - protocol bug guard
            raise ShardWorkerError(f"unexpected boot reply {ready[0]!r}")

    def _recv(self):
        try:
            reply = self._conn.recv()
        except EOFError:
            raise ShardWorkerError(
                f"shard worker {self._process.name} died "
                f"(exitcode={self._process.exitcode})"
            ) from None
        if reply[0] == "error":
            raise ShardWorkerError(
                f"shard worker {self._process.name} failed:\n{reply[1]}"
            )
        return reply

    def start(self) -> None:
        """Kernels start at worker boot; nothing left to do."""

    def dispatch(
        self, window: int, t_next: float, inbound: List[list], poll: bool
    ) -> None:
        """Ship one window command to the worker (non-blocking)."""
        self._conn.send(("window", window, t_next, inbound, poll))

    def collect(self):
        """Block for the worker's ``(batches, stop_flags)`` reply."""
        _, batches, stops = self._recv()
        return batches, stops

    def finalize(self) -> List[ShardOutcome]:
        """Fetch every hosted shard's outcome from the worker."""
        self._conn.send(("finalize",))
        _, outcomes = self._recv()
        return outcomes

    def close(self) -> None:
        """Shut the worker down (idempotent, tolerant of dead workers)."""
        process = self._process
        try:
            if process.is_alive():
                self._conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self._conn.close()
        process.join(timeout=5.0)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
            process.join(timeout=5.0)

    def __repr__(self) -> str:
        alive = self._process.is_alive()
        return (
            f"<ProcessShardHost shards={self.shard_ids} "
            f"pid={self._process.pid} alive={alive}>"
        )
