"""Sharded parallel simulation kernel.

Partitions one parameter cell's node graph across several kernel
instances ("shards") and runs them under conservative time-window
synchronization: every cross-shard link has a deterministic minimum
delay (the lookahead), so each shard can safely simulate one window of
that length past the last barrier before any message from another shard
could possibly arrive.  Cross-shard traffic is batched per window and
exchanged at the barriers.

Layout
------
:mod:`~repro.sim.shard.partition`
    :class:`ShardPlan` — how nodes/clients/servers split into shards,
    the lookahead/window derivation and per-shard seeds.
:mod:`~repro.sim.shard.messages`
    Picklable cross-shard message records and their merge ordering.
:mod:`~repro.sim.shard.kernel`
    :class:`ShardKernel` — one shard's services bundle (environment,
    RNG streams, tracer, system, workload slice, remote-call handlers).
:mod:`~repro.sim.shard.sync`
    The conservative window-barrier coordinator and the in-process
    backend.
:mod:`~repro.sim.shard.mp`
    The multiprocess backend (worker processes hosting shard groups).
:mod:`~repro.sim.shard.runner`
    :func:`run_sharded_cell` / :class:`ShardedResult` — the public
    entry point and the merged result.
"""

from repro.sim.shard.messages import RemoteCall, RemoteReply, WindowBatch
from repro.sim.shard.partition import ShardPlan

#: Lazily imported names -> defining submodule.  The heavier modules
#: (kernel, sync, runner) pull in most of the runtime — and the
#: :class:`~repro.network.shardrouter.ShardRouter` imports *this*
#: package for the message records, so eager imports here would cycle.
_LAZY = {
    "ConservativeWindowSync": "repro.sim.shard.sync",
    "LocalShardHost": "repro.sim.shard.sync",
    "ProcessShardHost": "repro.sim.shard.mp",
    "ShardKernel": "repro.sim.shard.kernel",
    "ShardedResult": "repro.sim.shard.runner",
    "merge_traces": "repro.sim.shard.runner",
    "run_sharded_cell": "repro.sim.shard.runner",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "ConservativeWindowSync",
    "LocalShardHost",
    "ProcessShardHost",
    "RemoteCall",
    "RemoteReply",
    "ShardKernel",
    "ShardPlan",
    "ShardedResult",
    "WindowBatch",
    "merge_traces",
    "run_sharded_cell",
]
