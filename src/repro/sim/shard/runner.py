"""Public entry point of the sharded kernel: run, merge, report.

:func:`run_sharded_cell` is the sharded counterpart of
:func:`repro.workload.clientserver.run_cell`: it partitions the cell
per a :class:`~repro.sim.shard.partition.ShardPlan`, picks an execution
backend (inline or multiprocess), drives the conservative window
protocol and merges the per-shard outcomes into one
:class:`ShardedResult` that is attribute-compatible with
:class:`~repro.workload.clientserver.WorkloadResult` — the experiments
layer plots either without knowing the difference.

``shards == 1`` does not go through the window machinery at all: it
delegates to the existing single-kernel ``run_cell`` verbatim, so a
1-shard run is bit-identical to the unsharded baseline by construction.

Merging is deterministic: metric accumulators combine via the exact
parallel-Welford :meth:`~repro.sim.stats.RunningStats.merge` in
shard-id order, and :func:`merge_traces` interleaves per-shard golden
traces in ``(time, shard-id, record-index)`` order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments.executor import Workers, resolve_workers
from repro.sim.shard.kernel import ShardOutcome
from repro.sim.shard.mp import ProcessShardHost
from repro.sim.shard.partition import ShardPlan
from repro.sim.shard.sync import ConservativeWindowSync, LocalShardHost
from repro.sim.stats import RunningStats
from repro.sim.stopping import StoppingConfig
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.workload.clientserver import run_cell
from repro.workload.params import SimulationParameters

#: Accepted backend spellings.
BACKENDS = ("auto", "inline", "process")


@dataclass
class ShardedResult:
    """Merged outcome of one sharded cell.

    Carries the same headline attributes as
    :class:`~repro.workload.clientserver.WorkloadResult` (``params``,
    the three mean metrics, ``simulated_time``, ``raw``) plus the
    sharding facts a bench or test needs (plan, backend, window count,
    wall time, per-shard outcomes, merged trace).
    """

    params: SimulationParameters
    mean_communication_time_per_call: float
    mean_call_duration: float
    mean_migration_time_per_call: float
    simulated_time: float
    raw: Dict = field(default_factory=dict)
    shards: int = 1
    backend: str = "single"
    windows: int = 0
    wall_time_s: float = 0.0
    outcomes: List[ShardOutcome] = field(default_factory=list)
    trace_records: List[TraceRecord] = field(default_factory=list)


def merge_traces(outcomes: List[ShardOutcome]) -> List[TraceRecord]:
    """Interleave per-shard traces into one deterministic stream.

    Sorted by ``(time, shard-id, per-shard record index)``: records are
    already time-ordered within a shard, and the shard-id/index
    tie-break pins simultaneous events to a single canonical order —
    the cross-shard counterpart of the merge key in
    :mod:`repro.sim.shard.messages`.
    """
    entries = []
    for outcome in sorted(outcomes, key=lambda o: o.shard_id):
        for index, record in enumerate(outcome.trace_records):
            entries.append((record.time, outcome.shard_id, index, record))
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return [e[3] for e in entries]


def _merge_outcomes(
    plan: ShardPlan,
    outcomes: List[ShardOutcome],
    sync_stats: dict,
    backend: str,
    wall_time_s: float,
) -> ShardedResult:
    """Fold shard outcomes into one result (shard-id order throughout)."""
    outcomes = sorted(outcomes, key=lambda o: o.shard_id)
    per_call = RunningStats()
    call_durations = RunningStats()
    remote = RunningStats()
    migration_total = 0.0
    blocks = granted = rejected = empty = 0
    migrations = 0
    remote_blocks = 0
    network = {"remote_messages": 0, "local_messages": 0, "total_latency": 0.0}
    for o in outcomes:
        m = o.metrics
        per_call.merge(m.per_call)
        call_durations.merge(m.call_durations)
        remote.merge(o.remote_stats)
        migration_total += (
            m.total_migration_cost
            + m.system_migration_cost
            + m.unamortized_migration_cost
        )
        blocks += m.blocks
        granted += m.granted_blocks
        rejected += m.rejected_blocks
        empty += m.empty_blocks
        migrations += o.migrations
        remote_blocks += o.remote_blocks
        for key in network:
            network[key] += o.network[key]

    calls = call_durations.count
    mean_call = call_durations.mean if calls else 0.0
    mean_migration = migration_total / calls if calls else 0.0
    simulated_time = max(o.simulated_time for o in outcomes)
    return ShardedResult(
        params=plan.params,
        mean_communication_time_per_call=mean_call + mean_migration,
        mean_call_duration=mean_call,
        mean_migration_time_per_call=mean_migration,
        simulated_time=simulated_time,
        raw={
            "plan": plan.describe(),
            "sync": sync_stats,
            "backend": backend,
            "calls": calls,
            "blocks": blocks,
            "granted_blocks": granted,
            "rejected_blocks": rejected,
            "empty_blocks": empty,
            "migrations": migrations,
            "network": network,
            "remote": {
                "blocks": remote_blocks,
                "calls": remote.count,
                "mean_round_trip": remote.mean if remote.count else 0.0,
                "expected_round_trip": plan.expected_remote_call_duration,
            },
            "per_shard": [
                {
                    "shard": o.shard_id,
                    "metrics": o.metrics.summary(),
                    "router": o.router_stats,
                    "simulated_time": o.simulated_time,
                }
                for o in outcomes
            ],
        },
        shards=plan.shards,
        backend=backend,
        windows=sync_stats.get("windows", 0),
        wall_time_s=wall_time_s,
        outcomes=outcomes,
        trace_records=merge_traces(outcomes),
    )


def _single_shard_result(
    plan: ShardPlan,
    stopping: Optional[StoppingConfig],
    trace: bool,
    wall_start: float,
) -> ShardedResult:
    """The ``shards == 1`` path: the existing kernel, verbatim."""
    tracer = Tracer() if trace else NULL_TRACER
    result = run_cell(plan.params, stopping=stopping, tracer=tracer)
    return ShardedResult(
        params=result.params,
        mean_communication_time_per_call=result.mean_communication_time_per_call,
        mean_call_duration=result.mean_call_duration,
        mean_migration_time_per_call=result.mean_migration_time_per_call,
        simulated_time=result.simulated_time,
        raw=result.raw,
        shards=1,
        backend="single",
        windows=0,
        wall_time_s=time.perf_counter() - wall_start,
        outcomes=[],
        trace_records=list(tracer.records) if trace else [],
    )


def run_sharded_cell(
    params: Union[SimulationParameters, ShardPlan],
    shards: int = 1,
    stopping: Optional[StoppingConfig] = None,
    *,
    remote_fraction: float = 0.05,
    base_latency: float = 2.0,
    remote_mean_latency: float = -1.0,
    backend: str = "auto",
    workers: Optional[Workers] = None,
    trace: bool = False,
    telemetry: Telemetry = NULL_TELEMETRY,
    max_time: Optional[float] = None,
    poll_interval: Optional[float] = None,
) -> ShardedResult:
    """Run one cell partitioned across ``shards`` kernel instances.

    Parameters
    ----------
    params:
        The global cell, or a ready-made :class:`ShardPlan` (then
        ``shards``/``remote_fraction``/latency knobs are ignored).
    shards:
        Kernel instances; ``1`` delegates to the unsharded kernel and
        is bit-identical to :func:`~repro.workload.clientserver.run_cell`.
    backend:
        ``"inline"`` (all shards in this process), ``"process"``
        (worker processes) or ``"auto"`` (process when more than one
        worker is available, inline otherwise).
    workers:
        Worker-process count for the process backend; defaults to
        ``min(shards, resolve_workers("auto"))`` and always respects
        the ``REPRO_MAX_WORKERS`` cap.  Shards are dealt round-robin
        across workers (``shard_ids[h::workers]``).
    trace:
        Record per-shard golden traces, merged into
        ``result.trace_records``.
    telemetry:
        Coordinator-side sink for ``shard.window.advance``,
        ``shard.barrier.wait_s`` and (per shard, inline backend only)
        ``shard.remote.batch_size``.
    max_time / poll_interval:
        Simulated-time horizon and stopping-rule poll cadence,
        defaulting to the monolithic driver's values.
    """
    wall_start = time.perf_counter()
    if isinstance(params, ShardPlan):
        plan = params
    else:
        plan = ShardPlan(
            params=params,
            shards=shards,
            remote_fraction=remote_fraction,
            base_latency=base_latency,
            remote_mean_latency=remote_mean_latency,
        )
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )

    if plan.shards == 1:
        return _single_shard_result(plan, stopping, trace, wall_start)

    if workers is None:
        nworkers = resolve_workers("auto")
    else:
        nworkers = resolve_workers(workers)
    nworkers = min(nworkers, plan.shards)
    if backend == "auto":
        backend = "process" if nworkers > 1 else "inline"
    if backend == "process" and nworkers == 1:
        backend = "inline"

    hosts: List = []
    try:
        if backend == "inline":
            hosts.append(
                LocalShardHost(
                    plan,
                    range(plan.shards),
                    stopping=stopping,
                    trace=trace,
                    telemetry=telemetry,
                )
            )
        else:
            for h in range(nworkers):
                group = list(range(plan.shards))[h::nworkers]
                hosts.append(
                    ProcessShardHost(
                        plan, group, stopping=stopping, trace=trace
                    )
                )
        sync = ConservativeWindowSync(
            plan,
            hosts,
            telemetry=telemetry,
            max_time=max_time,
            poll_interval=poll_interval,
        )
        outcomes = sync.run()
    finally:
        for host in hosts:
            host.close()

    sync_stats = sync.stats()
    sync_stats["workers"] = len(hosts) if backend == "process" else 1
    return _merge_outcomes(
        plan,
        outcomes,
        sync_stats,
        backend,
        time.perf_counter() - wall_start,
    )
