"""One shard's kernel instance: services bundle + workload slice.

A :class:`ShardKernel` is everything the monolithic run used to hold as
process-wide singletons, instantiated once per shard: its own
:class:`~repro.sim.kernel.Environment` (clock + calendar), its own
:class:`~repro.sim.rng.RandomStreams` family (seeded per shard), its
own :class:`~repro.sim.trace.Tracer`, and a full
:class:`~repro.runtime.system.DistributedSystem` running the paper's
client–server workload over the shard's slice of nodes, clients and
servers.  Nothing in here touches global state, which is what lets N
kernels advance concurrently in one process or in N.

Cross-shard traffic enters and leaves through the shard's
:class:`~repro.network.shardrouter.ShardRouter`: clients occasionally
direct a move-block at another shard's hot object (remote lane), and
inbound remote calls are served by a lightweight server process that
samples the paper's Exp(1) call duration and sends the reply back
through the router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.metrics import MetricsCollector
from repro.network.shardrouter import ShardRouter
from repro.sim.kernel import Environment, _SLEEP_POOL_MAX
from repro.sim.shard.messages import RemoteCall
from repro.sim.shard.partition import ShardPlan
from repro.sim.stats import RunningStats
from repro.sim.stopping import StoppingConfig
from repro.sim.trace import NULL_TRACER, TraceRecord, Tracer
from repro.workload.clientserver import ClientServerWorkload
from repro.workload.generator import BlockTimingGenerator
from repro.workload.params import SimulationParameters


@dataclass
class ShardOutcome:
    """Everything one shard reports back at finalization.

    Pure data (picklable): the multiprocess backend ships this over a
    pipe, and the merge step treats both backends identically.
    """

    shard_id: int
    params: SimulationParameters
    simulated_time: float
    metrics: MetricsCollector
    policy_stats: dict
    network: dict
    migrations: int
    router_stats: dict
    remote_stats: RunningStats
    remote_blocks: int
    trace_records: List[TraceRecord] = field(default_factory=list)


class ShardClientServerWorkload(ClientServerWorkload):
    """The client–server workload restricted to one shard's slice.

    Identical to the base workload except that each client, before
    opening a move-block, may redirect it at a remote shard's hot
    object with probability ``plan.remote_fraction`` (drawn from the
    client's private ``remote`` stream).  Local blocks run the full
    policy/locking/migration machinery unchanged.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        stopping: Optional[StoppingConfig] = None,
        tracer: Tracer = NULL_TRACER,
        env: Optional[Environment] = None,
    ):
        self.plan = plan
        self.shard_id = shard_id
        self._env_override = env
        #: Installed by :class:`ShardKernel` before the run starts.
        self.router: Optional[ShardRouter] = None
        #: Round-trip durations of completed remote calls.
        self.remote_stats = RunningStats()
        self.remote_blocks = 0
        super().__init__(
            plan.shard_params(shard_id), stopping=stopping, tracer=tracer
        )

    def _build_system(self, params, tracer):
        system = super()._build_system(params, tracer)
        if self._env_override is not None:  # pragma: no cover - reserved
            raise NotImplementedError(
                "external environments are not supported; the shard "
                "owns its kernel"
            )
        return system

    # -- the sharded client behaviour ---------------------------------------

    def client_process(self, index: int):
        """Client loop with the remote-block branch (§4.1 otherwise).

        The base loop's call-by-visit branch is intentionally absent:
        :class:`~repro.sim.shard.partition.ShardPlan` rejects
        ``block_style != "move"`` for sharded cells.
        """
        env = self.system.env
        client = self.clients[index]
        timing = BlockTimingGenerator(
            self.params, self.system.streams.stream(f"client.{index}.timing")
        )
        picker = self.system.streams.stream(f"client.{index}.pick")
        remote_fraction = self.plan.remote_fraction
        go_remote = remote_fraction > 0 and self.plan.shards > 1
        rstream = (
            self.system.streams.stream(f"client.{index}.remote")
            if go_remote
            else None
        )
        while True:
            plan = timing.next_plan()
            if plan.lead_time > 0:
                yield env.sleep(plan.lead_time)
            if go_remote and rstream.uniform() < remote_fraction:
                yield from self._remote_block(plan, rstream)
                continue
            target = self._pick_server(picker)
            block = self._make_block(client, target)
            yield from self.policy.move(block)
            yield from self._block_body(client, block, plan)
            yield from self.policy.end(block)
            self.metrics.record_block(block)

    def _remote_block(self, plan, rstream):
        """One move-block's worth of calls against a remote hot object."""
        router = self.router
        if router is None:
            raise RuntimeError(
                f"shard {self.shard_id} client went remote before the "
                "router was installed"
            )
        dst = rstream.integer(0, self.plan.shards - 1)
        if dst >= self.shard_id:
            dst += 1
        env = self.system.env
        for gap in plan.intercall_times:
            if gap > 0:
                yield env.sleep(gap)
            duration = yield router.send_call(dst)
            self._record_remote_call(duration)
        self.remote_blocks += 1

    def _record_remote_call(self, duration: float) -> None:
        # Remote calls migrate nothing, so the §4.2.1 observation is
        # the bare round-trip: it feeds the same headline accumulators
        # (and the stopping rule) as local calls.
        self.remote_stats.add(duration)
        metrics = self.metrics
        metrics.call_durations.add(duration)
        metrics.per_call.add(duration)
        metrics.stopping.add(duration)


class ShardKernel:
    """One shard: environment, streams, tracer, system, workload, router.

    Parameters
    ----------
    plan / shard_id:
        The run's :class:`ShardPlan` and this kernel's slot in it.
    stopping:
        Stopping rule evaluated shard-locally (the coordinator stops
        the run once *every* shard's rule fires).
    trace:
        Record a per-shard golden trace (merged after the run).
    sleep_pool_cap:
        Per-shard recycled-sleep cap; defaults to the single-kernel
        cap divided by the shard count (floor 16) so N shards do not
        retain N full pools.
    telemetry:
        Optional :class:`~repro.telemetry.core.Telemetry` handed to the
        router for per-shard batch metrics (inline backend only — a
        telemetry instance cannot cross a process boundary).
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        stopping: Optional[StoppingConfig] = None,
        trace: bool = False,
        sleep_pool_cap: Optional[int] = None,
        telemetry=None,
    ):
        self.plan = plan
        self.shard_id = shard_id
        if sleep_pool_cap is None:
            sleep_pool_cap = max(16, _SLEEP_POOL_MAX // plan.shards)
        self.tracer = Tracer() if trace else NULL_TRACER
        self.workload = ShardClientServerWorkload(
            plan, shard_id, stopping=stopping, tracer=self.tracer
        )
        self.system = self.workload.system
        self.env = self.system.env
        # Swap in the shard-local sleep-pool cap (the workload built
        # the environment with the default; no sleeps happened yet).
        self.env._sleep_pool_cap = sleep_pool_cap
        router_kwargs = {} if telemetry is None else {"telemetry": telemetry}
        self.router = ShardRouter(
            self.env,
            shard_id=shard_id,
            shards=plan.shards,
            base_latency=plan.base_latency,
            mean_latency=plan.remote_latency_mean,
            stream=self.system.streams.stream("shard.link"),
            on_call=self._handle_call,
            **router_kwargs,
        )
        self.workload.router = self.router
        self._service_stream = self.system.streams.stream("shard.service")
        self._started = False

    # -- server side of the remote lane -------------------------------------

    def _handle_call(self, call: RemoteCall) -> None:
        self.env.process(
            self._serve(call), name=f"serve-{call.src_shard}-{call.seq}"
        )

    def _serve(self, call: RemoteCall):
        # The paper's remote-call duration: Exp(1), server-side draw.
        service = self._service_stream.exponential(1.0)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "shard.serve",
                src_shard=call.src_shard,
                seq=call.seq,
                service=service,
            )
        if service > 0:
            yield self.env.sleep(service)
        self.router.send_reply(call, service)

    # -- window protocol -----------------------------------------------------

    def start(self) -> None:
        """Launch the shard's client processes (idempotent)."""
        if self._started:
            return
        self._started = True
        self.workload.start()

    def advance(self, until: float) -> None:
        """Run the kernel up to the next barrier time."""
        self.env.run(until=until)

    def drain(self) -> list:
        """This window's outbound cross-shard messages."""
        return self.router.drain()

    def deliver(self, messages: list) -> None:
        """Schedule inbound messages (already in merge order)."""
        if messages:
            self.router.deliver(messages)

    def should_stop(self) -> bool:
        """Shard-local stopping-rule verdict."""
        return self.workload.metrics.should_stop()

    # -- finalization --------------------------------------------------------

    def outcome(self) -> ShardOutcome:
        """Freeze this shard's results into a picklable record."""
        w = self.workload
        w.metrics.finalize(w.policy)
        return ShardOutcome(
            shard_id=self.shard_id,
            params=w.params,
            simulated_time=self.env.now,
            metrics=w.metrics,
            policy_stats=w.policy.stats(),
            network={
                "remote_messages": self.system.network.remote_messages,
                "local_messages": self.system.network.local_messages,
                "total_latency": self.system.network.total_latency,
            },
            migrations=self.system.migrations.migration_count,
            router_stats=self.router.stats(),
            remote_stats=w.remote_stats,
            remote_blocks=w.remote_blocks,
            trace_records=list(self.tracer.records)
            if self.tracer.enabled
            else [],
        )

    def __repr__(self) -> str:
        return (
            f"<ShardKernel {self.shard_id}/{self.plan.shards} "
            f"t={self.env.now:.2f} clients={len(self.workload.clients)}>"
        )
