"""The hot-spot scaling scenario: a client population only sharding fits.

The paper's evaluation tops out at 20 clients (Fig 12); this scenario
scales the same workload shape to 100 000 clients hammering 10 000
movable objects — far past what one kernel instance can turn around in
reasonable wall-clock time, and exactly the shape sharding is for:
clients mostly work against their own shard's objects (where the full
migration/locking protocol runs unchanged) with a small cross-shard
hot-object fraction.

``scale`` shrinks the population proportionally for smoke tests and CI
(``scale=0.001`` → 100 clients / 10 objects), keeping every other knob
fixed so a downscaled run is a statistical reference for the full one.

Runnable directly::

    python -m repro.sim.shard.hotspot --shards 2 --scale 0.001
"""

from __future__ import annotations

from typing import Optional

from repro.sim.shard.partition import ShardPlan
from repro.sim.shard.runner import ShardedResult, run_sharded_cell
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters

#: The full-size population (ISSUE floor: >=100k clients, >=10k objects).
HOTSPOT_CLIENTS = 100_000
HOTSPOT_SERVERS = 10_000
#: Nodes stay moderate: the scenario models many clients per node, and
#: placement is round-robin either way.
HOTSPOT_NODES = 256
#: Stopping-rule poll cadence (simulated time).  At this client density
#: observations accumulate thousands per window, so polling every
#: simulated 20.0 (10 windows) bounds overshoot past convergence.
HOTSPOT_POLL_INTERVAL = 20.0


def hotspot_params(scale: float = 1.0, seed: int = 0) -> SimulationParameters:
    """The global hot-spot cell at ``scale`` of the full population."""
    if not 0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale}")
    clients = max(1, round(HOTSPOT_CLIENTS * scale))
    servers = max(1, round(HOTSPOT_SERVERS * scale))
    nodes = max(1, min(HOTSPOT_NODES, servers))
    return SimulationParameters(
        nodes=nodes,
        clients=clients,
        servers_layer1=servers,
        seed=seed,
    )


def hotspot_plan(
    shards: int,
    scale: float = 1.0,
    seed: int = 0,
    remote_fraction: float = 0.1,
    base_latency: float = 2.0,
) -> ShardPlan:
    """The sharding plan for the hot-spot cell.

    The population floors rise to ``shards`` so heavily downscaled
    smoke runs still give every shard at least one client and server.
    """
    params = hotspot_params(scale=scale, seed=seed)
    if params.clients < shards or params.servers_layer1 < shards:
        params = params.with_overrides(
            clients=max(params.clients, shards),
            servers_layer1=max(params.servers_layer1, shards),
            nodes=max(params.nodes, shards),
        )
    return ShardPlan(
        params=params,
        shards=shards,
        remote_fraction=remote_fraction,
        base_latency=base_latency,
    )


def run_hotspot(
    shards: int,
    scale: float = 1.0,
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    backend: str = "auto",
    workers=None,
) -> ShardedResult:
    """Run the hot-spot scenario sharded; returns the merged result."""
    plan = hotspot_plan(shards, scale=scale, seed=seed)
    return run_sharded_cell(
        plan,
        stopping=stopping if stopping is not None else StoppingConfig.fast(),
        backend=backend,
        workers=workers,
        poll_interval=HOTSPOT_POLL_INTERVAL,
    )


def main(argv=None) -> int:
    """Small CLI for smoke runs and CI."""
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.shard.hotspot",
        description="Run the sharded hot-spot scenario once.",
    )
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.001)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--backend", choices=("auto", "inline", "process"), default="auto"
    )
    args = parser.parse_args(argv)

    result = run_hotspot(
        args.shards, scale=args.scale, seed=args.seed, backend=args.backend
    )
    print(
        json.dumps(
            {
                "shards": result.shards,
                "backend": result.backend,
                "clients": result.params.clients,
                "servers": result.params.servers_layer1,
                "windows": result.windows,
                "simulated_time": result.simulated_time,
                "wall_time_s": round(result.wall_time_s, 3),
                "mean_communication_time_per_call": (
                    result.mean_communication_time_per_call
                ),
                "calls": result.raw["calls"],
                "remote": result.raw["remote"],
            },
            indent=2,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
