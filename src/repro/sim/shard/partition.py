"""The sharding plan: how one cell partitions into kernel instances.

:class:`ShardPlan` is pure, picklable configuration: it carries the
global :class:`~repro.workload.params.SimulationParameters`, derives the
per-shard sub-cells (contiguous node blocks with their share of clients
and servers), the conservative lookahead/window length, and the
per-shard root seeds.  Both backends and every worker build their
shards from the same plan object, so a plan fully determines a run.

Lookahead derivation
--------------------
Cross-shard links use a shifted-exponential latency
``base_latency + Exp(mean)`` (see
:class:`~repro.network.latency.ShiftedExponentialLatency`): the
deterministic ``base_latency`` is the per-link minimum delay, and the
minimum over all cross-shard links — they are homogeneous, so simply
``base_latency`` — is the lookahead ``L``.  A message sent at time
``t`` inside window ``[W, W+L)`` arrives at ``t + delay >= W + L``,
i.e. never inside a window any shard has already simulated; advancing
every shard ``L`` units between barriers is therefore safe.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.workload.params import SimulationParameters


def effective_shards(params: SimulationParameters, shards: int) -> int:
    """The largest shard count ``<= shards`` the cell supports.

    Sweeps like Fig 12 include cells too small to split (a 1-client
    cell cannot occupy 2 shards) and shapes the sharded kernel does not
    cover (layered, call-by-visit); those degrade to the unsharded
    kernel rather than failing the whole sweep.
    """
    if shards <= 1 or params.is_layered or params.block_style != "move":
        return 1
    return max(
        1, min(shards, params.nodes, params.clients, params.servers_layer1)
    )


@dataclass(frozen=True)
class ShardPlan:
    """Partition of one parameter cell across ``shards`` kernels.

    Attributes
    ----------
    params:
        The *global* cell: total nodes, clients and servers across all
        shards.  Partitioning splits these counts; it does not multiply
        them.
    shards:
        Number of kernel instances.
    remote_fraction:
        Probability that a client's move-block targets another shard's
        hot object instead of a local server (the hot-spot scenario's
        cross-shard traffic knob).  Forced to 0 semantics when
        ``shards == 1``.
    base_latency:
        Deterministic component of cross-shard link latency — the
        conservative lookahead.  Must be positive for ``shards > 1``.
    remote_mean_latency:
        Mean of the exponential component of cross-shard latency
        (defaults to the cell's ``mean_message_latency``).
    """

    params: SimulationParameters
    shards: int = 1
    remote_fraction: float = 0.0
    base_latency: float = 2.0
    remote_mean_latency: float = -1.0  # -1 -> params.mean_message_latency

    def __post_init__(self):
        if self.shards < 1:
            raise ConfigurationError(
                f"shards must be >= 1, got {self.shards}"
            )
        if not 0.0 <= self.remote_fraction <= 1.0:
            raise ConfigurationError(
                f"remote_fraction must be in [0, 1], got "
                f"{self.remote_fraction}"
            )
        if self.shards > 1:
            if self.base_latency <= 0:
                raise ConfigurationError(
                    "sharded runs need a positive cross-shard minimum "
                    f"delay (lookahead), got {self.base_latency}"
                )
            if self.params.nodes < self.shards:
                raise ConfigurationError(
                    f"cannot split {self.params.nodes} nodes into "
                    f"{self.shards} shards"
                )
            if self.params.clients < self.shards:
                raise ConfigurationError(
                    f"cannot split {self.params.clients} clients into "
                    f"{self.shards} shards (every shard needs a client)"
                )
            if self.params.servers_layer1 < self.shards:
                raise ConfigurationError(
                    f"cannot split {self.params.servers_layer1} servers "
                    f"into {self.shards} shards"
                )
            if self.params.is_layered:
                raise ConfigurationError(
                    "layered (S2 > 0) workloads are not shardable yet"
                )
            if self.params.block_style != "move":
                raise ConfigurationError(
                    "sharded cells support block_style='move' only"
                )

    # -- derived synchronization constants ---------------------------------

    @property
    def lookahead(self) -> float:
        """Minimum cross-shard link delay — the safe advance bound."""
        return self.base_latency

    @property
    def window(self) -> float:
        """Length of one synchronization window (== lookahead)."""
        return self.base_latency

    @property
    def remote_latency_mean(self) -> float:
        """Mean of the exponential cross-shard latency component."""
        if self.remote_mean_latency >= 0:
            return self.remote_mean_latency
        return self.params.mean_message_latency

    @property
    def expected_remote_call_duration(self) -> float:
        """Analytic mean round-trip of one cross-shard call.

        Request (``base + Exp(mean)``) + service (``Exp(1)``, the
        paper's normalized remote-call duration) + reply: closed form
        used by the golden tests to check the sharded pipeline without
        a reference simulation.
        """
        return 2.0 * (self.base_latency + self.remote_latency_mean) + 1.0

    # -- partitioning -------------------------------------------------------

    def _split(self, total: int, shard_id: int) -> int:
        base, extra = divmod(total, self.shards)
        return base + (1 if shard_id < extra else 0)

    def nodes_of(self, shard_id: int) -> int:
        """Node count of one shard (contiguous block partition)."""
        return self._split(self.params.nodes, shard_id)

    def clients_of(self, shard_id: int) -> int:
        """Client count of one shard."""
        return self._split(self.params.clients, shard_id)

    def servers_of(self, shard_id: int) -> int:
        """First-layer server count of one shard."""
        return self._split(self.params.servers_layer1, shard_id)

    def shard_seed(self, shard_id: int) -> int:
        """Root seed of one shard's private stream family.

        Mixed through CRC-32 so shards never share stream seeds with
        each other (or with the unsharded cell) while staying a pure
        function of ``(params.seed, shard_id)``.
        """
        if shard_id < 0 or shard_id >= self.shards:
            raise ConfigurationError(
                f"shard_id {shard_id} out of range [0, {self.shards})"
            )
        return zlib.crc32(f"{self.params.seed}/shard.{shard_id}".encode())

    def shard_params(self, shard_id: int) -> SimulationParameters:
        """The sub-cell one shard simulates locally.

        The shard keeps the global cell's timing/policy parameters and
        receives its share of nodes, clients and servers; placement
        within the shard follows the same round-robin rule the
        unsharded cell uses globally.
        """
        return self.params.with_overrides(
            nodes=self.nodes_of(shard_id),
            clients=self.clients_of(shard_id),
            servers_layer1=self.servers_of(shard_id),
            seed=self.shard_seed(shard_id),
        )

    def with_shards(self, shards: int) -> "ShardPlan":
        """This plan at a different shard count (same everything else)."""
        return ShardPlan(
            params=self.params,
            shards=shards,
            remote_fraction=self.remote_fraction,
            base_latency=self.base_latency,
            remote_mean_latency=self.remote_mean_latency,
        )

    def describe(self) -> dict:
        """Machine-readable plan summary for reports and benches."""
        return {
            "shards": self.shards,
            "window": self.window,
            "lookahead": self.lookahead,
            "remote_fraction": self.remote_fraction,
            "base_latency": self.base_latency,
            "remote_latency_mean": self.remote_latency_mean,
            "nodes": [self.nodes_of(s) for s in range(self.shards)],
            "clients": [self.clients_of(s) for s in range(self.shards)],
            "servers": [self.servers_of(s) for s in range(self.shards)],
            "seeds": [self.shard_seed(s) for s in range(self.shards)],
        }
