"""Conservative time-window synchronization across shard kernels.

The coordinator advances every shard in lock-step windows of length
``plan.window`` (the lookahead).  One window is a four-step protocol,
executed per shard by its host:

1. **deliver** — schedule the inbound cross-shard messages collected at
   the previous barrier (all due at or after the current clock, by the
   lookahead argument in :mod:`repro.sim.shard.partition`);
2. **advance** — run the shard's kernel to the next barrier time;
3. **drain** — collect the messages the shard produced this window;
4. **exchange** — the coordinator routes all drained batches to their
   destination shards in deterministic merge order, ready for step 1 of
   the next window.

Hosts abstract *where* shards run: :class:`LocalShardHost` executes its
kernels inline in the coordinator process (deterministic baseline, zero
IPC); :class:`~repro.sim.shard.mp.ProcessShardHost` runs the identical
protocol in a worker process.  Both speak the same two-phase
``dispatch``/``collect`` interface so the coordinator can overlap all
hosts' windows and measure the true barrier wait.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.sim.shard.kernel import ShardKernel, ShardOutcome
from repro.sim.shard.messages import WindowBatch, route_batches
from repro.sim.shard.partition import ShardPlan
from repro.sim.stopping import StoppingConfig
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.workload.clientserver import WorkloadRunner


class _WindowClock:
    """Stand-in environment so coordinator telemetry can ``bind()``.

    The coordinator has no simulation kernel of its own; its metric
    timestamps are the barrier times, and there is never an active
    simulation process on its side.
    """

    __slots__ = ("now", "active_process")

    def __init__(self):
        self.now = 0.0
        self.active_process = None


class LocalShardHost:
    """Runs a group of shard kernels inline, in the caller's process.

    The deterministic reference backend: no pickling, no processes —
    each window executes the shards sequentially in shard-id order.
    """

    def __init__(
        self,
        plan: ShardPlan,
        shard_ids: Sequence[int],
        stopping: Optional[StoppingConfig] = None,
        trace: bool = False,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.shard_ids = list(shard_ids)
        self.kernels = [
            ShardKernel(
                plan, sid, stopping=stopping, trace=trace, telemetry=telemetry
            )
            for sid in self.shard_ids
        ]
        self._result = None

    def start(self) -> None:
        """Launch every hosted shard's client processes."""
        for kernel in self.kernels:
            kernel.start()

    def dispatch(
        self, window: int, t_next: float, inbound: List[list], poll: bool
    ) -> None:
        """Run one window for every hosted shard (inline: synchronous).

        ``inbound`` is aligned with ``shard_ids``.
        """
        batches = []
        for kernel, messages in zip(self.kernels, inbound):
            kernel.deliver(messages)
            kernel.advance(t_next)
            batches.append(
                WindowBatch(
                    window=window,
                    src_shard=kernel.shard_id,
                    messages=tuple(kernel.drain()),
                )
            )
        stops = [k.should_stop() for k in self.kernels] if poll else None
        self._result = (batches, stops)

    def collect(self):
        """Return this window's ``(batches, stop_flags_or_None)``."""
        result, self._result = self._result, None
        if result is None:
            raise RuntimeError("collect() without a dispatched window")
        return result

    def finalize(self) -> List[ShardOutcome]:
        """Freeze and return every hosted shard's outcome."""
        return [kernel.outcome() for kernel in self.kernels]

    def close(self) -> None:
        """Nothing to release for the inline backend."""


class ConservativeWindowSync:
    """The window-barrier coordinator driving a set of shard hosts.

    Runs windows until every shard's stopping rule has fired (polled
    every ``poll_interval`` of simulated time, mirroring the monolithic
    driver's chunked polling) or the ``max_time`` horizon is reached.

    Telemetry (coordinator-side, wall-clock):

    * ``shard.window.advance`` — counter, one per completed window;
    * ``shard.barrier.wait_s`` — histogram of the wall-clock time the
      coordinator spent at each barrier waiting for all hosts (for the
      inline backend this is the whole sequential window execution).
    """

    #: Buckets sized for barrier waits: sub-millisecond to seconds.
    WAIT_BUCKETS = (
        1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0,
    )

    def __init__(
        self,
        plan: ShardPlan,
        hosts: Sequence,
        telemetry: Telemetry = NULL_TELEMETRY,
        max_time: Optional[float] = None,
        poll_interval: Optional[float] = None,
    ):
        self.plan = plan
        self.hosts = list(hosts)
        hosted = sorted(sid for h in self.hosts for sid in h.shard_ids)
        if hosted != list(range(plan.shards)):
            raise ValueError(
                f"hosts cover shards {hosted}, plan needs "
                f"0..{plan.shards - 1} exactly once each"
            )
        self.max_time = max_time if max_time is not None else WorkloadRunner.MAX_TIME
        poll = poll_interval if poll_interval is not None else WorkloadRunner.CHUNK
        #: Stopping-rule poll cadence in windows (>= 1).
        self.poll_windows = max(1, round(poll / plan.window))
        self.windows_run = 0
        self.barrier_wait_s = 0.0
        self.messages_exchanged = 0
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            self._clock = _WindowClock()
            telemetry.bind(self._clock)
            metrics = telemetry.metrics
            self._m_windows = metrics.counter("shard.window.advance")
            self._m_wait = metrics.histogram(
                "shard.barrier.wait_s", buckets=self.WAIT_BUCKETS
            )

    def run(self) -> List[ShardOutcome]:
        """Drive the window protocol to completion; return the outcomes.

        Outcomes are returned in shard-id order regardless of host
        grouping, so the merge step downstream is deterministic.
        """
        plan = self.plan
        hosts = self.hosts
        for host in hosts:
            host.start()
        inbound: List[list] = [[] for _ in range(plan.shards)]
        window = 0
        while True:
            window += 1
            t_next = window * plan.window
            poll = window % self.poll_windows == 0
            for host in hosts:
                host.dispatch(
                    window,
                    t_next,
                    [inbound[sid] for sid in host.shard_ids],
                    poll,
                )
            wait_start = time.perf_counter()
            batches: List[WindowBatch] = []
            stops: List[bool] = []
            for host in hosts:
                host_batches, host_stops = host.collect()
                batches.extend(host_batches)
                if host_stops is not None:
                    stops.extend(host_stops)
            waited = time.perf_counter() - wait_start
            self.barrier_wait_s += waited
            self.messages_exchanged += sum(len(b) for b in batches)
            inbound = route_batches(batches, plan.shards)
            self.windows_run = window
            if self._telemetry_on:
                self._clock.now = t_next
                self._m_windows.inc()
                self._m_wait.observe(waited)
            if poll and stops and all(stops):
                break
            if t_next >= self.max_time:
                break
        outcomes = [o for host in hosts for o in host.finalize()]
        outcomes.sort(key=lambda o: o.shard_id)
        return outcomes

    def stats(self) -> dict:
        """Coordinator counters for reports and benches."""
        return {
            "windows": self.windows_run,
            "window_length": self.plan.window,
            "poll_windows": self.poll_windows,
            "barrier_wait_s": self.barrier_wait_s,
            "messages_exchanged": self.messages_exchanged,
        }
