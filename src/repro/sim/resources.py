"""Shared resources for simulation processes.

Three classic coordination primitives built on the event kernel:

* :class:`Resource` — a counted resource with FIFO queueing (capacity
  ``n``; ``request()``/``release()`` or the ``with``-style ``using()``).
* :class:`Store` — an unbounded (or bounded) FIFO buffer of Python
  objects; ``put()`` and ``get()`` return events.
* :class:`Waiters` — a broadcast condition: processes ``wait()`` and a
  controller ``notify_all()``s them.  The distributed runtime uses this
  to park invocations that arrive while an object is in transit.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.sim.events import Event
from repro.sim.kernel import Environment


class Request(Event):
    """Event returned by :meth:`Resource.request`; fires when granted."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource


class Resource:
    """A counted, FIFO-queued resource (like ``simpy.Resource``).

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent holders allowed (default 1, i.e. a mutex).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: int = 0
        self._waiting: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return self._users

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for the resource."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        req = Request(self)
        if self._users < self.capacity:
            self._users += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self) -> None:
        """Return one unit, waking the longest-waiting request if any."""
        if self._users <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiting:
            # Hand the unit straight to the next waiter; the count is
            # unchanged because ownership transfers.
            self._waiting.popleft().succeed()
        else:
            self._users -= 1

    def using(self):
        """Generator helper: ``yield from resource.using()`` inside a
        process acquires the resource; the caller must ``release()``.

        Provided for symmetry; most code calls :meth:`request` directly.
        """
        yield self.request()


class StorePut(Event):
    """Event returned by :meth:`Store.put`; fires when the item is stored."""

    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any):
        super().__init__(env)
        self.item = item


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the retrieved item."""

    __slots__ = ()


class Store:
    """FIFO buffer of Python objects with optional capacity bound."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()
        self._putters: Deque[StorePut] = deque()

    @property
    def items(self) -> list:
        """Snapshot of buffered items (oldest first)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; the event fires once there is room."""
        event = StorePut(self.env, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Remove the oldest item; the event fires with it as value."""
        event = StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def _dispatch(self) -> None:
        # Admit pending puts while capacity allows.
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put = self._putters.popleft()
            self._items.append(put.item)
            put.succeed()
        # Serve pending gets while items exist.
        while self._getters and self._items:
            get = self._getters.popleft()
            get.succeed(self._items.popleft())
        # Serving gets may have freed capacity for queued puts.
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            put = self._putters.popleft()
            self._items.append(put.item)
            put.succeed()
            while self._getters and self._items:
                get = self._getters.popleft()
                get.succeed(self._items.popleft())


class Waiters:
    """Broadcast wait/notify condition.

    ``wait()`` returns an event that fires at the next ``notify_all()``.
    Unlike :class:`Resource` there is no ownership: every waiter wakes.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._waiting: list[Event] = []

    @property
    def waiting(self) -> int:
        """Number of parked waiters."""
        return len(self._waiting)

    def wait(self) -> Event:
        """Return an event that fires at the next notification."""
        event = Event(self.env)
        self._waiting.append(event)
        return event

    def notify_all(self, value: Any = None) -> int:
        """Wake every waiter with ``value``; returns how many woke."""
        waiting, self._waiting = self._waiting, []
        for event in waiting:
            event.succeed(value)
        return len(waiting)
