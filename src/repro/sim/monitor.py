"""Periodic state sampling (simulation observability).

Experiments report end-of-run aggregates; debugging a policy usually
needs the *trajectory* — how many objects are in transit over time, how
many locks are held, how long the hot object's queue is.  A
:class:`StateMonitor` samples named probe callables at a fixed
simulated-time interval and keeps the series for later inspection.

Example::

    monitor = StateMonitor(env, interval=50.0)
    monitor.probe("locked", lambda: len(locks.locked_objects()))
    monitor.probe("in_transit",
                  lambda: sum(o.in_transit for o in registry.objects))
    monitor.start()
    env.run(until=10_000)
    series = monitor.series("locked")      # [(t, value), ...]
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.kernel import Environment
from repro.sim.stats import RunningStats

Probe = Callable[[], float]
Sample = Tuple[float, float]


class StateMonitor:
    """Samples registered probes every ``interval`` simulated time units.

    Parameters
    ----------
    env:
        The environment whose clock drives the sampling.
    interval:
        Simulated time between samples.
    max_samples:
        Per-probe retention cap; once reached, sampling keeps updating
        the summary statistics but stops appending to the series (so
        monitors cannot exhaust memory on long runs).
    """

    def __init__(
        self,
        env: Environment,
        interval: float = 100.0,
        max_samples: int = 100_000,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.env = env
        self.interval = interval
        self.max_samples = max_samples
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, List[Sample]] = {}
        self._stats: Dict[str, RunningStats] = {}
        self._started = False

    # -- configuration -------------------------------------------------------------

    def probe(self, name: str, fn: Probe) -> None:
        """Register a probe under ``name`` (must be unique)."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._series[name] = []
        self._stats[name] = RunningStats()

    @property
    def probe_names(self) -> List[str]:
        """All registered probe names, sorted."""
        return sorted(self._probes)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (idempotent).

        The sampler reschedules itself forever, so a simulation with an
        active monitor must be driven with ``env.run(until=...)`` — a
        bare ``env.run()`` would never find an empty calendar.
        """
        if self._started:
            return
        self._started = True
        self.env.process(self._sampler(), name="state-monitor")

    def _sampler(self):
        while True:
            yield self.env.timeout(self.interval)
            self.sample_now()

    def sample_now(self) -> None:
        """Take one sample of every probe immediately."""
        now = self.env.now
        for name, fn in self._probes.items():
            value = float(fn())
            self._stats[name].add(value)
            series = self._series[name]
            if len(series) < self.max_samples:
                series.append((now, value))

    # -- results --------------------------------------------------------------------

    def series(self, name: str) -> List[Sample]:
        """The (time, value) samples of one probe."""
        try:
            return list(self._series[name])
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    def stats(self, name: str) -> RunningStats:
        """Summary statistics of one probe over all samples."""
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    def summary(self) -> Dict[str, dict]:
        """Per-probe {mean, min, max, samples} summary."""
        out = {}
        for name in self.probe_names:
            s = self._stats[name]
            out[name] = {
                "mean": s.mean,
                "min": s.min if s.count else 0.0,
                "max": s.max if s.count else 0.0,
                "samples": s.count,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"<StateMonitor probes={len(self._probes)} "
            f"interval={self.interval}>"
        )
