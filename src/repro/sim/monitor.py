"""Periodic state sampling (simulation observability).

Experiments report end-of-run aggregates; debugging a policy usually
needs the *trajectory* — how many objects are in transit over time, how
many locks are held, how long the hot object's queue is.  A
:class:`StateMonitor` samples named probe callables at a fixed
simulated-time interval and keeps the series for later inspection.

Example::

    monitor = StateMonitor(env, interval=50.0)
    monitor.probe("locked", lambda: len(locks.locked_objects()))
    monitor.probe("in_transit",
                  lambda: sum(o.in_transit for o in registry.objects))
    monitor.start()
    env.run(until=10_000)
    series = monitor.series("locked")      # [(t, value), ...]
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.sim.kernel import Environment
from repro.sim.stats import RunningStats

Probe = Callable[[], float]
Sample = Tuple[float, float]


class StateMonitor:
    """Samples registered probes every ``interval`` simulated time units.

    Parameters
    ----------
    env:
        The environment whose clock drives the sampling.
    interval:
        Simulated time between samples.
    max_samples:
        Per-probe retention cap; once reached, sampling keeps updating
        the summary statistics but stops appending to the series (so
        monitors cannot exhaust memory on long runs).
    """

    def __init__(
        self,
        env: Environment,
        interval: float = 100.0,
        max_samples: int = 100_000,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.env = env
        self.interval = interval
        self.max_samples = max_samples
        self._probes: Dict[str, Probe] = {}
        self._series: Dict[str, List[Sample]] = {}
        self._stats: Dict[str, RunningStats] = {}
        self._started = False

    # -- configuration -------------------------------------------------------------

    def probe(self, name: str, fn: Probe) -> None:
        """Register a probe under ``name`` (must be unique)."""
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = fn
        self._series[name] = []
        self._stats[name] = RunningStats()

    @property
    def probe_names(self) -> List[str]:
        """All registered probe names, sorted."""
        return sorted(self._probes)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Begin sampling (idempotent).

        The sampler reschedules itself forever, so a simulation with an
        active monitor must be driven with ``env.run(until=...)`` — a
        bare ``env.run()`` would never find an empty calendar.
        """
        if self._started:
            return
        self._started = True
        self.env.process(self._sampler(), name="state-monitor")

    def _sampler(self):
        while True:
            yield self.env.timeout(self.interval)
            self.sample_now()

    def sample_now(self) -> None:
        """Take one sample of every probe immediately."""
        now = self.env.now
        for name, fn in self._probes.items():
            value = float(fn())
            self._stats[name].add(value)
            series = self._series[name]
            if len(series) < self.max_samples:
                series.append((now, value))

    # -- results --------------------------------------------------------------------

    def series(self, name: str) -> List[Sample]:
        """The (time, value) samples of one probe."""
        try:
            return list(self._series[name])
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    def stats(self, name: str) -> RunningStats:
        """Summary statistics of one probe over all samples."""
        try:
            return self._stats[name]
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    def summary(self) -> Dict[str, dict]:
        """Per-probe {mean, min, max, samples} summary."""
        out = {}
        for name in self.probe_names:
            s = self._stats[name]
            out[name] = {
                "mean": s.mean,
                "min": s.min if s.count else 0.0,
                "max": s.max if s.count else 0.0,
                "samples": s.count,
            }
        return out

    def __repr__(self) -> str:
        return (
            f"<StateMonitor probes={len(self._probes)} "
            f"interval={self.interval}>"
        )


#: An invariant callable: returns True/None for pass, False (optionally
#: ``(False, detail)``) for fail; an AssertionError also counts as fail.
Invariant = Callable[[], object]


class InvariantMonitor:
    """Always-on runtime safety assertions over a simulation run.

    Where :class:`StateMonitor` *samples* quantities, this monitor
    *asserts* properties: each registered invariant is re-evaluated
    every ``interval`` simulated time units (and once more at
    :meth:`check_now`, which harnesses call after the horizon).  The
    first failing invariant raises
    :class:`~repro.errors.InvariantViolationError` carrying a bounded
    excerpt of the most recent trace records, so a violation deep into
    a chaos campaign is diagnosable without re-running it.

    An invariant callable may

    * return ``True``/``None`` — pass;
    * return ``False`` or ``(False, "detail")`` — fail;
    * raise :class:`AssertionError` — fail with the assertion message
      (this makes existing checkers like ``LockManager.check_invariant``
      and ``ObjectRegistry.check_consistency`` usable directly).

    Parameters
    ----------
    env:
        Environment whose clock drives the checks.
    interval:
        Simulated time between evaluation rounds.
    tracer:
        Optional tracer (usually a :class:`~repro.sim.trace.RingTracer`)
        whose recent records are embedded in the violation diagnostic.
    trace_limit:
        Maximum number of trace records included in a diagnostic.
    """

    def __init__(
        self,
        env: Environment,
        interval: float = 10.0,
        tracer=None,
        trace_limit: int = 50,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if trace_limit < 0:
            raise ValueError(f"trace_limit must be >= 0, got {trace_limit}")
        self.env = env
        self.interval = interval
        self.tracer = tracer
        self.trace_limit = trace_limit
        self._invariants: Dict[str, Invariant] = {}
        #: Per-invariant evaluation counts.
        self.evaluations: Dict[str, int] = {}
        #: Total evaluation rounds performed.
        self.checks = 0
        #: Violations seen so far (messages; normally empty because the
        #: first one raises, but kept for post-mortem inspection).
        self.violations: List[str] = []
        self._started = False

    # -- configuration -------------------------------------------------------------

    def invariant(self, name: str, fn: Invariant) -> None:
        """Register an invariant under ``name`` (must be unique)."""
        if name in self._invariants:
            raise ValueError(f"invariant {name!r} already registered")
        self._invariants[name] = fn
        self.evaluations[name] = 0

    @property
    def invariant_names(self) -> List[str]:
        """All registered invariant names, sorted."""
        return sorted(self._invariants)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Begin periodic checking (idempotent).

        Like :class:`StateMonitor`, the checker reschedules itself
        forever — drive the simulation with ``env.run(until=...)``.
        """
        if self._started:
            return
        self._started = True
        self.env.process(self._checker(), name="invariant-monitor")

    def _checker(self):
        while True:
            yield self.env.timeout(self.interval)
            self.check_now()

    # -- evaluation -----------------------------------------------------------------

    def _recent_trace(self) -> tuple:
        if self.tracer is None or self.trace_limit == 0:
            return ()
        records = getattr(self.tracer, "records", None)
        if not records:
            return ()
        return tuple(str(r) for r in list(records)[-self.trace_limit :])

    def check_now(self) -> None:
        """Evaluate every invariant immediately.

        Raises
        ------
        InvariantViolationError
            On the first invariant that fails, with the bounded trace
            diagnostic attached.
        """
        self.checks += 1
        now = self.env.now
        for name in sorted(self._invariants):
            fn = self._invariants[name]
            self.evaluations[name] += 1
            detail = ""
            try:
                verdict = fn()
            except AssertionError as exc:
                verdict, detail = False, str(exc)
            if isinstance(verdict, tuple):
                verdict, detail = verdict[0], str(verdict[1])
            if verdict is False:
                message = (
                    f"invariant {name!r} violated at t={now:.4f}"
                    + (f": {detail}" if detail else "")
                )
                self.violations.append(message)
                from repro.errors import InvariantViolationError

                raise InvariantViolationError(message, self._recent_trace())

    def __repr__(self) -> str:
        return (
            f"<InvariantMonitor invariants={len(self._invariants)} "
            f"interval={self.interval} checks={self.checks}>"
        )
