"""Discrete-event simulation kernel (substrate).

A from-scratch, generator-based process simulation kernel in the style
of SimPy, plus the statistics machinery the paper's evaluation needs
(Welford accumulators, batch means, and the 1 %-CI-at-p-0.99 stopping
rule of §4.1).

Quick example::

    from repro.sim import Environment

    def ping(env, pong):
        while True:
            yield env.timeout(1)
            pong.succeed()
            pong = env.event()

    env = Environment()
    env.run(until=100)
"""

from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Sleep,
    Timeout,
)
from repro.sim.kernel import Environment, Infinity
from repro.sim.monitor import StateMonitor
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, Waiters
from repro.sim.rng import RandomStreams, Stream
from repro.sim.stats import (
    BatchMeans,
    RunningStats,
    TimeWeightedStats,
    normal_ppf,
    regularized_incomplete_beta,
    student_t_cdf,
    student_t_ppf,
)
from repro.sim.stopping import PrecisionStopping, StoppingConfig
from repro.sim.trace import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BatchMeans",
    "Condition",
    "ConditionValue",
    "Environment",
    "Event",
    "Infinity",
    "NULL_TRACER",
    "NullTracer",
    "PrecisionStopping",
    "Process",
    "RandomStreams",
    "Resource",
    "StateMonitor",
    "RunningStats",
    "Sleep",
    "Store",
    "StoppingConfig",
    "Stream",
    "TimeWeightedStats",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Waiters",
    "normal_ppf",
    "student_t_ppf",
]
