"""Reproducible random-number streams for simulation components.

Every stochastic component of a simulation (each client's move-block
generator, the network latency sampler, initial placement, …) draws from
its *own* named stream.  Streams are spawned deterministically from a
single root seed via :class:`numpy.random.SeedSequence`, so

* the same seed reproduces the same run bit-for-bit, and
* adding a new consumer does not perturb the draws of existing ones
  (streams are keyed by name, not by creation order).

The paper's distributions (Table 1) are exponential with the remote-call
duration normalized to mean 1; :meth:`Stream.exponential` is the
workhorse.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, Optional

import numpy as np


class Stream:
    """A single named random stream (thin wrapper over a numpy Generator)."""

    __slots__ = ("name", "_gen")

    def __init__(self, name: str, generator: np.random.Generator):
        self.name = name
        self._gen = generator

    def exponential(self, mean: float) -> float:
        """Draw from Exp with the given *mean* (not rate).

        A mean of exactly 0 deterministically returns 0.0, which lets
        degenerate configurations (e.g. zero think time) be expressed
        without special-casing at the call sites.
        """
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if mean == 0:
            return 0.0
        return float(self._gen.exponential(mean))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw uniformly from ``[low, high)``."""
        return float(self._gen.uniform(low, high))

    def integer(self, low: int, high: int) -> int:
        """Draw a uniform integer from ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def choice(self, seq):
        """Pick one element of a non-empty sequence uniformly."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: list) -> None:
        """Shuffle a list in place."""
        self._gen.shuffle(seq)

    def poisson_count(self, mean: float) -> int:
        """Draw a Poisson-distributed count with the given mean."""
        return int(self._gen.poisson(mean))

    def geometric_at_least_one(self, mean: float) -> int:
        """Integer-valued draw with the given mean, at least 1.

        The paper's N ("number of calls in a move-block") is described
        as exponentially distributed but must be a positive integer.  We
        use ``max(1, round(Exp(mean)))``, which preserves the mean well
        for the means used in the paper (6 and 8) and guarantees every
        block performs at least one call.
        """
        return max(1, int(round(self.exponential(mean))))

    def __repr__(self) -> str:
        return f"<Stream {self.name!r}>"


class RandomStreams:
    """Factory of deterministic, independent named streams.

    Parameters
    ----------
    seed:
        Root seed of the run.  Equal seeds give equal stream families.

    Notes
    -----
    The stream for a name is derived as
    ``SeedSequence([seed, crc32(name)])`` so it depends only on the
    (seed, name) pair, never on how many other streams exist.
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return (creating if needed) the stream for ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = zlib.crc32(name.encode("utf-8"))
        seq = np.random.SeedSequence([self.seed, digest])
        stream = Stream(name, np.random.default_rng(seq))
        self._streams[name] = stream
        return stream

    def streams(self, names: Iterable[str]) -> Dict[str, Stream]:
        """Bulk-create streams for a set of names."""
        return {name: self.stream(name) for name in names}

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.seed} active={len(self._streams)}>"
