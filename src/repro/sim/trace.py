"""Structured trace log for simulation runs.

A :class:`Tracer` collects timestamped, typed records during a run.
Tracing is off by default (a :class:`NullTracer` swallows everything at
near-zero cost); tests and debugging sessions install a real tracer to
assert on the exact sequence of model events — e.g. that a rejected
move-request never triggered a migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    kind:
        Event type tag, e.g. ``"migration.start"`` or ``"move.rejected"``.
    detail:
        Free-form payload (object ids, node ids, sizes, …).
    """

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.4f}] {self.kind:<24} {pairs}"


class Tracer:
    """Recording tracer with optional kind filtering and live callbacks."""

    def __init__(self, kinds: Optional[set] = None):
        #: When non-``None``, only these kinds are recorded.
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    @property
    def enabled(self) -> bool:
        """Real tracers record; :class:`NullTracer` overrides to False."""
        return True

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        """Record one occurrence (subject to the kind filter)."""
        if self.kinds is not None and kind not in self.kinds:
            return
        record = TraceRecord(time=time, kind=kind, detail=detail)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every recorded occurrence."""
        self._listeners.append(listener)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind tag, in time order."""
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        """Number of records with the given kind tag."""
        return sum(1 for r in self.records if r.kind == kind)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        """A tracer is always truthy, even with zero records.

        Without this, ``tracer or default`` silently discards a real
        (but still empty) tracer because ``__len__`` makes it falsy.
        """
        return True

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(r) for r in self.records)


class RingTracer(Tracer):
    """Tracer that retains only the most recent ``capacity`` records.

    Long chaos runs cannot afford an unbounded trace, but the invariant
    monitors need recent history to produce a useful diagnostic when a
    safety property fails.  The ring keeps memory constant while the
    tail of the event stream stays inspectable; ``recent(n)`` renders
    the last ``n`` records for embedding in an
    :class:`~repro.errors.InvariantViolationError`.
    """

    def __init__(self, capacity: int = 256, kinds: Optional[set] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(kinds=kinds)
        from collections import deque

        self.capacity = capacity
        self.records = deque(maxlen=capacity)  # type: ignore[assignment]

    def recent(self, n: Optional[int] = None) -> List[str]:
        """The last ``n`` (default: all retained) records, rendered."""
        records = list(self.records)
        if n is not None:
            records = records[-n:]
        return [str(r) for r in records]


class NullTracer(Tracer):
    """Tracer that records nothing (the default)."""

    def __init__(self):
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, time: float, kind: str, **detail: Any) -> None:  # noqa: D102
        return

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:  # noqa: D102
        raise RuntimeError("cannot subscribe to a NullTracer")


#: Shared do-nothing tracer instance.
NULL_TRACER = NullTracer()
