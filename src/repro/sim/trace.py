"""Structured trace log for simulation runs.

A :class:`Tracer` collects timestamped, typed records during a run.
Tracing is off by default (a :class:`NullTracer` swallows everything at
near-zero cost); tests and debugging sessions install a real tracer to
assert on the exact sequence of model events — e.g. that a rejected
move-request never triggered a migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes
    ----------
    time:
        Simulated time of the occurrence.
    kind:
        Event type tag, e.g. ``"migration.start"`` or ``"move.rejected"``.
    detail:
        Free-form payload (object ids, node ids, sizes, …).
    """

    time: float
    kind: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.4f}] {self.kind:<24} {pairs}"


class Tracer:
    """Recording tracer with optional kind filtering and live callbacks.

    ``kinds`` restricts what is recorded.  Each entry is either an
    exact kind tag (``"migration.start"``) or a trailing-``*`` prefix
    pattern (``"migration.*"`` matches every kind starting with
    ``"migration."``).  ``None`` records everything.
    """

    def __init__(self, kinds: Optional[set] = None):
        self.kinds = kinds
        self.records: List[TraceRecord] = []
        self._listeners: List[Callable[[TraceRecord], None]] = []

    @property
    def kinds(self) -> Optional[set]:
        """The kind filter: exact tags and/or ``prefix.*`` patterns."""
        return self._kinds

    @kinds.setter
    def kinds(self, kinds: Optional[set]) -> None:
        # Compile once: exact tags stay a set (same semantics and cost
        # as before), patterns become one tuple for str.startswith.
        self._kinds = kinds
        if kinds is None:
            self._exact: Optional[set] = None
            self._prefixes: tuple = ()
            return
        self._exact = {k for k in kinds if not k.endswith("*")}
        self._prefixes = tuple(k[:-1] for k in kinds if k.endswith("*"))

    def _matches(self, kind: str) -> bool:
        if self._exact is None:
            return True
        if kind in self._exact:
            return True
        return bool(self._prefixes) and kind.startswith(self._prefixes)

    @property
    def enabled(self) -> bool:
        """Real tracers record; :class:`NullTracer` overrides to False."""
        return True

    def emit(self, time: float, kind: str, **detail: Any) -> None:
        """Record one occurrence (subject to the kind filter)."""
        if not self._matches(kind):
            return
        record = TraceRecord(time=time, kind=kind, detail=detail)
        self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def clear(self) -> None:
        """Drop every retained record (filters and listeners stay).

        Lets one tracer be reused across replications instead of
        rebuilding it — the kind filter is compiled only once.
        """
        self.records.clear()

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Register a callback invoked for every recorded occurrence."""
        self._listeners.append(listener)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        """All records with the given kind tag, in time order."""
        return [r for r in self.records if r.kind == kind]

    def count(self, kind: str) -> int:
        """Number of records with the given kind tag."""
        return sum(1 for r in self.records if r.kind == kind)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        """A tracer is always truthy, even with zero records.

        Without this, ``tracer or default`` silently discards a real
        (but still empty) tracer because ``__len__`` makes it falsy.
        """
        return True

    def dump(self) -> str:
        """Human-readable rendering of the whole trace."""
        return "\n".join(str(r) for r in self.records)


class RingTracer(Tracer):
    """Tracer that retains only the most recent ``capacity`` records.

    Long chaos runs cannot afford an unbounded trace, but the invariant
    monitors need recent history to produce a useful diagnostic when a
    safety property fails.  The ring keeps memory constant while the
    tail of the event stream stays inspectable; ``recent(n)`` renders
    the last ``n`` records for embedding in an
    :class:`~repro.errors.InvariantViolationError`.
    """

    def __init__(self, capacity: int = 256, kinds: Optional[set] = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(kinds=kinds)
        from collections import deque

        self.capacity = capacity
        self.records = deque(maxlen=capacity)  # type: ignore[assignment]

    def recent(self, n: Optional[int] = None) -> List[str]:
        """The last ``n`` (default: all retained) records, rendered.

        Renders in one pass over the deque tail — no intermediate full
        copy just to slice it.
        """
        records = self.records
        if n is None or n >= len(records):
            return [str(r) for r in records]
        from itertools import islice

        return [str(r) for r in islice(records, len(records) - n, None)]


class NullTracer(Tracer):
    """Tracer that records nothing (the default)."""

    def __init__(self):
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, time: float, kind: str, **detail: Any) -> None:  # noqa: D102
        return

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:  # noqa: D102
        raise RuntimeError("cannot subscribe to a NullTracer")


#: Shared do-nothing tracer instance.
NULL_TRACER = NullTracer()
