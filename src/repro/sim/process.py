"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator: each ``yield`` hands an
:class:`~repro.sim.events.Event` to the kernel, and the process resumes
when the event fires.  A process is itself an event that succeeds with
the generator's return value, so processes can wait on each other:

    def child(env):
        yield env.timeout(5)
        return "done"

    def parent(env):
        result = yield env.process(child(env))
        assert result == "done"

Processes support interruption (:meth:`Process.interrupt`), which raises
:class:`~repro.errors.Interrupt` inside the target generator at its
current ``yield``.
"""

from __future__ import annotations

from types import GeneratorType
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import Interrupt, ProcessError
from repro.sim.events import Event, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Initialize(Event):
    """Immediate event that starts a process' generator.

    Scheduled with :data:`~repro.sim.events.URGENT` priority so a newly
    created process begins executing before ordinary events that share
    the current timestamp.
    """

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._bound_resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running simulation process.

    Parameters
    ----------
    env:
        The environment driving the process.
    generator:
        The generator implementing the process body.

    Notes
    -----
    The process-as-event succeeds with the generator's ``return`` value
    and fails if the generator raises.  An unhandled failure propagates
    out of :meth:`Environment.run` unless some other process was waiting
    on this one (or the failure is defused).
    """

    __slots__ = ("_generator", "_target", "name", "_bound_resume")

    def __init__(self, env: "Environment", generator, name: Optional[str] = None):
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (``None`` when
        #: the process is scheduled to resume or has terminated).
        self._target: Optional[Event] = None
        self.name = name if name is not None else generator.__name__
        #: Creating a bound method allocates; every wait registers this
        #: callback, so bind it once for the process' lifetime.
        self._bound_resume = self._resume
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process currently waits for, if any."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`~repro.errors.Interrupt` inside the process.

        Interrupting a dead process is an error; interrupting yourself
        is too (use plain exceptions for that).  The event the process
        was waiting on stays triggered-able — the process may re-yield
        it after handling the interrupt.
        """
        if not self.is_alive:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        # Jump the queue: the interrupt must beat whatever the process
        # was waiting on, even events already scheduled for "now".
        interrupt_event.callbacks.append(self._bound_resume)
        self.env.schedule(interrupt_event, priority=URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        env = self.env
        env._active_process = self

        # If we were interrupted, unhook from the event we were waiting
        # on (it may fire later; we must not be resumed twice for it).
        resume = self._bound_resume
        target = self._target
        if target is not None and target is not event:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None

        # Hot loop: every event delivery to every process runs through
        # here, so keep the generator bound to a local.
        generator = self._generator

        while True:
            try:
                if event._ok:
                    next_event = generator.send(event._value)
                else:
                    # The waited-on event failed: re-raise inside the
                    # generator so it can handle (or not) the failure.
                    event._defused = True
                    next_event = generator.throw(event._value)
            except StopIteration as stop:
                # Generator returned: the process-event succeeds.
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                # Generator crashed: the process-event fails.  Wrap in
                # ProcessError so the traceback points at the process.
                error = ProcessError(f"process {self.name!r} failed: {exc!r}")
                error.__cause__ = exc
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                # Yielding a non-event is a programming error; surface it
                # inside the generator so its traceback is useful.
                event = Event(env)
                event._ok = False
                event._value = RuntimeError(
                    f"process {self.name!r} yielded non-event {next_event!r}"
                )
                event._defused = True
                continue

            if next_event.callbacks is not None:
                # The event is pending or triggered-but-unprocessed: wait.
                next_event.callbacks.append(resume)
                self._target = next_event
                break

            # The event was already processed: feed its outcome straight
            # back into the generator without a kernel round-trip.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state} at {id(self):#x}>"
