"""Statistics accumulators for simulation output analysis.

The paper runs every simulation "as long as a confidence interval of 1%
was reached with probability p=0.99" (§4.1).  This module provides the
pieces for that rule:

* :class:`RunningStats` — numerically stable (Welford) accumulator of
  count/mean/variance for observation streams.
* :class:`TimeWeightedStats` — mean of a piecewise-constant signal
  weighted by how long each value was held (utilization, queue length).
* :class:`BatchMeans` — the classic batch-means method for estimating
  the variance of the mean of a *correlated* observation series, which
  is what a steady-state simulation produces.
* :func:`normal_ppf` — inverse standard-normal CDF (Acklam's algorithm)
  so the core library does not depend on scipy.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple


def normal_ppf(p: float) -> float:
    """Inverse CDF of the standard normal distribution.

    Uses Peter Acklam's rational approximation (relative error below
    1.15e-9 over the full domain), refined with one Halley step against
    ``math.erfc`` for double-precision accuracy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")

    # Coefficients of the rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)

    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    elif p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    else:
        q = math.sqrt(-2 * math.log(1 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )

    # One Halley refinement step.
    e = 0.5 * math.erfc(-x / math.sqrt(2)) - p
    u = e * math.sqrt(2 * math.pi) * math.exp(x * x / 2)
    x = x - u / (1 + x * u / 2)
    return x


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta function (NR §6.4)."""
    MAXIT, EPS, FPMIN = 200, 3e-15, 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < FPMIN:
        d = FPMIN
    d = 1.0 / d
    h = d
    for m in range(1, MAXIT + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < FPMIN:
            d = FPMIN
        c = 1.0 + aa / c
        if abs(c) < FPMIN:
            c = FPMIN
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < EPS:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_cdf(t: float, dof: float) -> float:
    """CDF of Student's t with ``dof`` degrees of freedom.

    Uses the central form ``P(|T| <= t) = I_y(1/2, dof/2)`` with
    ``y = t^2/(dof + t^2)``, which keeps full precision for small |t|
    (the tail form ``I_{dof/(dof+t^2)}`` loses t below ~1e-8 because
    its argument rounds to 1).
    """
    if dof <= 0:
        raise ValueError(f"dof must be positive, got {dof}")
    if t == 0.0:
        return 0.5
    y = t * t / (dof + t * t)
    central = regularized_incomplete_beta(0.5, dof / 2.0, y)
    return 0.5 + 0.5 * central if t > 0 else 0.5 - 0.5 * central


def student_t_ppf(p: float, dof: int) -> float:
    """Inverse CDF of Student's t with ``dof`` degrees of freedom.

    Exact inversion of :func:`student_t_cdf` by bisection bracketed
    around the normal quantile, accurate to ~1e-10 for all dof >= 1.
    For very large dof it short-circuits to :func:`normal_ppf`.
    """
    if dof <= 0:
        raise ValueError(f"dof must be positive, got {dof}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    z = normal_ppf(p)
    if dof > 1e6:
        return z
    # Bracket: t quantiles have heavier tails than the normal's.
    lo, hi = min(z, -1.0), max(z, 1.0)
    while student_t_cdf(lo, dof) > p:
        lo *= 2.0
    while student_t_cdf(hi, dof) < p:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if mid == lo or mid == hi:  # interval exhausted in double precision
            break
        if student_t_cdf(mid, dof) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


class RunningStats:
    """Streaming count/mean/variance via Welford's algorithm."""

    __slots__ = ("count", "mean", "_m2", "min", "max", "total")

    def __init__(self):
        self.count: int = 0
        self.mean: float = 0.0
        self._m2: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self.total: float = 0.0

    def add(self, value: float) -> None:
        """Record one observation.

        The arithmetic (and its order) is kept exactly as the textbook
        Welford update so results stay bit-identical across releases;
        only the attribute traffic is reduced to single read/write
        pairs — this accumulator ingests every observation of every
        simulation run.
        """
        value = float(value)
        count = self.count + 1
        self.count = count
        self.total += value
        mean = self.mean
        delta = value - mean
        mean += delta / count
        self.mean = mean
        self._m2 += delta * (value - mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (parallel Welford)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other.mean - self.mean
        total_n = n1 + n2
        self.mean += delta * n2 / total_n
        self._m2 += other._m2 + delta * delta * n1 * n2 / total_n
        self.count = total_n
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count < 2:
            return math.inf
        return self.stddev / math.sqrt(self.count)

    def confidence_halfwidth(self, confidence: float = 0.99) -> float:
        """Half-width of the CI for the mean, assuming i.i.d. samples."""
        if self.count < 2:
            return math.inf
        t = student_t_ppf(0.5 + confidence / 2.0, self.count - 1)
        return t * self.sem

    def __repr__(self) -> str:
        return (
            f"<RunningStats n={self.count} mean={self.mean:.6g} "
            f"sd={self.stddev:.6g}>"
        )


class TimeWeightedStats:
    """Time-average of a piecewise-constant signal.

    Call :meth:`update` whenever the signal changes; the contribution of
    each value is weighted by how long it was held.
    """

    __slots__ = ("_value", "_last_time", "_area", "_start", "max")

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0):
        self._value = float(initial_value)
        self._last_time = float(start_time)
        self._start = float(start_time)
        self._area = 0.0
        self.max = float(initial_value)

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def update(self, new_value: float, now: float) -> None:
        """Record that the signal changed to ``new_value`` at ``now``."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = float(new_value)
        if self._value > self.max:
            self.max = self._value

    def mean(self, now: float) -> float:
        """Time-average of the signal over ``[start, now]``."""
        span = now - self._start
        if span <= 0:
            return self._value
        area = self._area + self._value * (now - self._last_time)
        return area / span


class BatchMeans:
    """Batch-means estimator for correlated steady-state output.

    Observations are grouped into fixed-size batches; batch averages are
    approximately independent once batches are long relative to the
    autocorrelation time, so a t-based CI over batch means is valid.

    Parameters
    ----------
    batch_size:
        Number of observations per batch.
    warmup:
        Number of initial observations to discard (transient deletion).
    """

    __slots__ = (
        "batch_size",
        "warmup",
        "_seen",
        "_current_sum",
        "_current_n",
        "_batches",
        "_overall",
    )

    def __init__(self, batch_size: int = 500, warmup: int = 0):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.batch_size = batch_size
        self.warmup = warmup
        self._seen = 0
        self._current_sum = 0.0
        self._current_n = 0
        self._batches = RunningStats()
        self._overall = RunningStats()

    @property
    def batch_count(self) -> int:
        """Number of completed batches (post-warmup)."""
        return self._batches.count

    @property
    def observation_count(self) -> int:
        """Number of post-warmup observations recorded."""
        return self._overall.count

    @property
    def mean(self) -> float:
        """Grand mean over all post-warmup observations."""
        return self._overall.mean

    def add(self, value: float) -> None:
        """Record one observation."""
        seen = self._seen + 1
        self._seen = seen
        if seen <= self.warmup:
            return
        value = float(value)
        self._overall.add(value)
        current_sum = self._current_sum + value
        current_n = self._current_n + 1
        if current_n == self.batch_size:
            self._batches.add(current_sum / current_n)
            self._current_sum = 0.0
            self._current_n = 0
        else:
            self._current_sum = current_sum
            self._current_n = current_n

    def confidence_halfwidth(self, confidence: float = 0.99) -> float:
        """CI half-width for the mean from the batch-mean series."""
        if self._batches.count < 2:
            return math.inf
        return self._batches.confidence_halfwidth(confidence)

    def relative_halfwidth(self, confidence: float = 0.99) -> float:
        """Half-width divided by |mean| (``inf`` if mean is ~0)."""
        hw = self.confidence_halfwidth(confidence)
        mean = self.mean
        if abs(mean) < 1e-12:
            return math.inf
        return hw / abs(mean)

    def interval(self, confidence: float = 0.99) -> Tuple[float, float]:
        """(low, high) CI for the mean."""
        hw = self.confidence_halfwidth(confidence)
        return (self.mean - hw, self.mean + hw)
