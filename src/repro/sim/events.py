"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style popularized by
SimPy: simulation logic is written as Python generators that ``yield``
:class:`Event` instances and are resumed when those events fire.  This
module defines the event types; :mod:`repro.sim.kernel` owns the clock
and the event calendar, and :mod:`repro.sim.process` turns generators
into schedulable processes.

Events move through three states:

``pending``
    Created but not yet triggered.  Callbacks may still be added.
``triggered``
    Scheduled on the event calendar with a value (or an exception); it
    will fire when the kernel reaches its scheduled time.
``processed``
    Its callbacks have run.  Adding a callback to a processed event
    raises :class:`~repro.errors.EventAlreadyTriggered`.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.errors import EventAlreadyTriggered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
PENDING = object()

#: Priority used for ordinary events.
NORMAL = 1

#: Priority used for urgent events (processed before normal events that
#: share the same timestamp).  The kernel uses this for process bootstrap
#: so that a freshly started process runs before same-time timeouts.
URGENT = 0


class Event:
    """A condition that may happen at a point in simulated time.

    Parameters
    ----------
    env:
        The environment the event lives in.

    Notes
    -----
    An event can be *succeeded* with a value or *failed* with an
    exception, exactly once.  Processes waiting on a failed event have
    the exception re-raised at their ``yield`` statement.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks to invoke when the event is processed.  ``None``
        #: once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state inspection ---------------------------------------------------

    @property
    def triggered(self) -> bool:
        """``True`` once the event has been scheduled with a value."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded, ``False`` if it failed.

        Only meaningful once :attr:`triggered` is true.
        """
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises
        ------
        AttributeError
            If the event has not been triggered yet.
        """
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns the event so calls can be chained, e.g.
        ``return env.event().succeed(42)``.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Equivalent to env.schedule(self) — zero-delay NORMAL events
        # always land on the heap; inlined because triggering is hot.
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will see ``exception`` raised at their
        ``yield``.  If nobody waits, the kernel re-raises the exception
        at the end of the step unless the event is :meth:`defused`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        env = self.env
        heappush(env._queue, (env._now, NORMAL, next(env._eid), self))
        return self

    def trigger(self, event: "Event") -> None:
        """Adopt the outcome of another (triggered) event.

        Used as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the kernel does not crash."""
        self._defused = True

    # -- composition ----------------------------------------------------------

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation.

    Unlike a plain :class:`Event`, a timeout is scheduled immediately on
    construction and cannot be cancelled (waiting processes can be
    interrupted instead).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        # Timeouts dominate event traffic; assign the base fields
        # directly instead of chaining through Event.__init__.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        heappush(env._queue, (env._now + delay, NORMAL, next(env._eid), self))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} delay={self.delay} at {id(self):#x}>"


class Sleep(Timeout):
    """A pooled timeout handed out by :meth:`Environment.sleep`.

    Behaves exactly like a :class:`Timeout` with one lifecycle caveat:
    once processed, the kernel *recycles* the instance into the
    environment's sleep pool, and a later ``env.sleep`` call may hand
    the same object out again with fresh state.  A sleep event must
    therefore be yielded immediately and exactly once — never stored,
    re-yielded after an interrupt, or composed into a condition
    (conditions keep references to their sub-events past processing).
    Use :meth:`Environment.timeout` for those patterns.
    """

    __slots__ = ()


class ConditionValue:
    """Mapping-like result of a condition event.

    Maps each fired sub-event to its value, preserving creation order.
    """

    __slots__ = ("events", "_index")

    def __init__(self):
        self.events: List[Event] = []
        #: Identity index over ``events``, built on first lookup and
        #: rebuilt if events were appended since.  Events have identity
        #: equality, so ``id``-keyed lookups match list scans exactly
        #: while turning ``AllOf``-heavy membership checks O(1).
        self._index: Optional[dict] = None

    def _lookup(self) -> dict:
        index = self._index
        if index is None or len(index) != len(self.events):
            index = self._index = {id(event): event for event in self.events}
        return index

    def __getitem__(self, key: Event) -> Any:
        if id(key) not in self._lookup():
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return id(key) in self._lookup()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        """Return a plain ``{event: value}`` dict."""
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that fires when ``evaluate(events, count)`` becomes true.

    ``count`` is the number of sub-events that have fired so far.  The
    pre-built evaluators :meth:`all_events` and :meth:`any_events` give
    the usual ``&``/``|`` semantics.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: List[Event],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        if not self._events:
            # An empty condition is trivially satisfied.
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Only *processed* events count as having happened: a
            # Timeout is "triggered" from birth (it carries its value
            # immediately) but has not elapsed until processed.
            if event.processed and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        self._count += 1
        if not event.ok:
            # A failed sub-event fails the whole condition.
            event.defuse()
            self.fail(event.value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._collect_values())

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        """Evaluator: fire when every sub-event has fired."""
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        """Evaluator: fire when at least one sub-event has fired."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that fires once all of ``events`` have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that fires once any of ``events`` has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: List[Event]):
        super().__init__(env, Condition.any_events, events)
