"""Stopping rules for sequential simulation runs.

The paper (§4.1) stops every run once "a confidence interval of 1% was
reached with probability p=0.99", i.e. the relative half-width of the
99 % CI of the target metric is at most 1 %.  :class:`PrecisionStopping`
implements exactly that rule on top of the batch-means estimator, with
a safety cap so misconfigured runs terminate.

The rule is evaluated *sequentially*: the experiment runner simulates a
chunk, checks the rule, and continues until satisfied or capped (see
:class:`repro.experiments.runner.ExperimentRunner`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import StoppingRuleError
from repro.sim.stats import BatchMeans


@dataclass(frozen=True)
class StoppingConfig:
    """Configuration of the sequential stopping rule.

    Attributes
    ----------
    relative_precision:
        Target relative CI half-width (paper: ``0.01``).
    confidence:
        Coverage probability of the interval (paper: ``0.99``).
    batch_size:
        Observations per batch for the batch-means estimator.
    warmup:
        Initial observations discarded as the transient phase.
    min_batches:
        Batches required before the rule may fire (guards against
        spuriously small variance estimates early on).
    max_observations:
        Hard cap; when reached the run stops regardless of precision.
        ``None`` disables the cap (true paper semantics — may be slow).
    """

    relative_precision: float = 0.01
    confidence: float = 0.99
    batch_size: int = 400
    warmup: int = 500
    min_batches: int = 10
    max_observations: Optional[int] = 200_000

    def __post_init__(self):
        if not 0 < self.relative_precision < 1:
            raise StoppingRuleError(
                f"relative_precision must be in (0,1), got {self.relative_precision}"
            )
        if not 0 < self.confidence < 1:
            raise StoppingRuleError(
                f"confidence must be in (0,1), got {self.confidence}"
            )
        if self.min_batches < 2:
            raise StoppingRuleError(
                f"min_batches must be >= 2, got {self.min_batches}"
            )

    @classmethod
    def paper(cls) -> "StoppingConfig":
        """The paper's rule: 1 % relative CI at p = 0.99."""
        return cls(relative_precision=0.01, confidence=0.99)

    @classmethod
    def fast(cls) -> "StoppingConfig":
        """Loose rule for tests and smoke runs (5 % at p = 0.95)."""
        return cls(
            relative_precision=0.05,
            confidence=0.95,
            batch_size=100,
            warmup=100,
            min_batches=5,
            max_observations=20_000,
        )


class PrecisionStopping:
    """Sequential stopping rule driven by a batch-means estimator.

    Feed observations with :meth:`add`; poll :meth:`should_stop`.
    """

    def __init__(self, config: Optional[StoppingConfig] = None):
        self.config = config or StoppingConfig()
        self.estimator = BatchMeans(
            batch_size=self.config.batch_size, warmup=self.config.warmup
        )
        self._capped = False

    @property
    def capped(self) -> bool:
        """``True`` if the run hit ``max_observations`` before converging."""
        return self._capped

    @property
    def mean(self) -> float:
        """Current estimate of the metric mean."""
        return self.estimator.mean

    @property
    def observations(self) -> int:
        """Post-warmup observations recorded so far."""
        return self.estimator.observation_count

    def add(self, value: float) -> None:
        """Record one observation of the target metric."""
        self.estimator.add(value)

    def precision_reached(self) -> bool:
        """``True`` once the relative CI half-width target is met."""
        if self.estimator.batch_count < self.config.min_batches:
            return False
        return (
            self.estimator.relative_halfwidth(self.config.confidence)
            <= self.config.relative_precision
        )

    def should_stop(self) -> bool:
        """Whether the run may terminate (precision met or cap hit)."""
        if self.precision_reached():
            return True
        cap = self.config.max_observations
        if cap is not None and self.estimator.observation_count >= cap:
            self._capped = True
            return True
        return False

    def summary(self) -> dict:
        """Machine-readable snapshot of the rule's state."""
        cfg = self.config
        return {
            "mean": self.estimator.mean,
            "observations": self.estimator.observation_count,
            "batches": self.estimator.batch_count,
            "relative_halfwidth": self.estimator.relative_halfwidth(cfg.confidence),
            "confidence": cfg.confidence,
            "target": cfg.relative_precision,
            "converged": self.precision_reached(),
            "capped": self._capped,
        }
