"""The :class:`DistributedSystem` facade.

Wires together everything an experiment (or an application using the
public API) needs: the simulation environment, the random streams, the
network, the registry, and the invocation/migration services.  This is
the object most user code starts from::

    from repro import DistributedSystem

    system = DistributedSystem(nodes=3, seed=42)
    server = system.create_server(node=0)
    client = system.create_client(node=1)
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.network.faults import LinkFaultModel
from repro.network.latency import LatencyModel, NormalizedExponentialLatency
from repro.network.network import Network
from repro.network.topology import FullyConnected, Topology
from repro.runtime.clock import SimClock
from repro.runtime.invocation import InvocationService
from repro.runtime.locator import ImmediateUpdateLocator, Locator
from repro.runtime.migration import MigrationService
from repro.runtime.node import Node
from repro.runtime.objects import DistributedObject, ObjectKind
from repro.runtime.registry import ObjectRegistry
from repro.runtime.retry import RetryPolicy
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.sim.trace import NULL_TRACER, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry


class DistributedSystem:
    """A simulated distributed object system.

    Parameters
    ----------
    nodes:
        Number of nodes to create up front (the paper's D).
    seed:
        Root random seed for all streams of this run.
    migration_duration:
        The paper's M — transfer time of a size-1 object (default 6,
        the value used in every experiment of §4).
    topology:
        Physical network structure (default fully connected).
    latency:
        Message latency model (default normalized Exp(1)).
    locator:
        Location strategy (default immediate update = free lookup).
    tracer:
        Optional trace sink for tests/debugging.
    fault_model:
        Optional link fault model (message loss / partitions).  Absent
        by default, in which case the network is perfectly reliable and
        behaves bit-identically to the pre-fault-layer model.
    retry:
        Invocation timeout/retry policy; only consulted when the fault
        model actually loses a message.
    telemetry:
        Metrics/span sink threaded into the network, invocation and
        migration services (and read by policies via
        ``system.telemetry``).  The NULL default keeps every layer on
        its untraced fast path.
    """

    def __init__(
        self,
        nodes: int = 0,
        seed: int = 0,
        migration_duration: float = 6.0,
        topology: Optional[Topology] = None,
        latency: Optional[LatencyModel] = None,
        locator: Optional[Locator] = None,
        tracer: Tracer = NULL_TRACER,
        env: Optional[Environment] = None,
        fault_model: Optional[LinkFaultModel] = None,
        retry: Optional[RetryPolicy] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.env = env or Environment()
        #: Seam view of simulated time (see :mod:`repro.runtime.clock`);
        #: the live backend builds the same stack around a WallClock.
        self.clock = SimClock(self.env)
        self.streams = RandomStreams(seed)
        self.tracer = tracer
        self.telemetry = telemetry
        if telemetry.enabled:
            telemetry.bind(self.env)
        self._custom_topology = topology is not None
        self.topology = topology or FullyConnected(max(nodes, 1))
        self.network = Network(
            self.env,
            topology=self.topology,
            latency=latency or NormalizedExponentialLatency(1.0),
            streams=self.streams,
            fault_model=fault_model,
            telemetry=telemetry,
        )
        # Seam view of the network (pure delegation — shares counters
        # and draws with ``self.network``, see repro.network.simbackend).
        from repro.network.simbackend import SimTransport

        self.transport = SimTransport(self.network)
        self.registry = ObjectRegistry()
        self.locator = locator or ImmediateUpdateLocator(self.env, self.network)
        self.invocations = InvocationService(
            self.env,
            self.network,
            locator=self.locator,
            tracer=tracer,
            retry=retry,
            streams=self.streams,
            telemetry=telemetry,
        )
        self.migrations = MigrationService(
            self.env,
            self.registry,
            default_duration=migration_duration,
            locator=self.locator,
            tracer=tracer,
            network=self.network,
            telemetry=telemetry,
        )
        self._next_object_id = 0
        for _ in range(nodes):
            self.add_node()

    # -- construction -----------------------------------------------------------

    def add_node(self, name: str = "") -> Node:
        """Create and register one more node.

        Raises
        ------
        ConfigurationError
            When growing past the size of a user-supplied topology:
            custom topologies are fixed-size structures and silently
            swapping one for a fully connected network would invalidate
            the experiment's premise.  Pass a large-enough topology up
            front instead.
        """
        node = Node(len(self.registry.nodes), name=name)
        if node.node_id >= self.topology.size and self._custom_topology:
            raise ConfigurationError(
                f"cannot grow to {node.node_id + 1} nodes: the supplied "
                f"{type(self.topology).__name__} topology is fixed at size "
                f"{self.topology.size}"
            )
        self.registry.add_node(node)
        if node.node_id >= self.topology.size:
            # Growing past the default topology: rebuild fully connected.
            self.topology = FullyConnected(node.node_id + 1)
            self.network.topology = self.topology
        return node

    @property
    def nodes(self) -> List[Node]:
        """All nodes of the system."""
        return self.registry.nodes

    @property
    def node_count(self) -> int:
        """Number of nodes (the paper's D)."""
        return len(self.registry.nodes)

    def create_object(
        self,
        node: int,
        kind: ObjectKind = ObjectKind.SERVER,
        name: str = "",
        fixed: bool = False,
        size: float = 1.0,
    ) -> DistributedObject:
        """Create an object resident on ``node`` and register it."""
        obj = DistributedObject(
            self.env,
            object_id=self._next_object_id,
            node_id=node,
            kind=kind,
            name=name,
            fixed=fixed,
            size=size,
        )
        self._next_object_id += 1
        self.registry.add_object(obj)
        return obj

    def create_server(
        self, node: int, name: str = "", size: float = 1.0
    ) -> DistributedObject:
        """Create a movable server object on ``node``."""
        return self.create_object(
            node, kind=ObjectKind.SERVER, name=name, size=size
        )

    def create_client(self, node: int, name: str = "") -> DistributedObject:
        """Create a sedentary client object on ``node``.

        Clients are fixed: "Because clients are not invoked from other
        objects, there is no point in migrating them" (§4.1).
        """
        return self.create_object(
            node, kind=ObjectKind.CLIENT, name=name, fixed=True
        )

    # -- failure detection -------------------------------------------------------

    def install_failure_detector(
        self,
        faults=None,
        interval: float = 1.0,
        timeout: float = 15.0,
        phi_threshold: Optional[float] = None,
        monitor_node: int = 0,
        start: bool = False,
    ):
        """Build a heartbeat failure detector and wire it into the stack.

        The detector replaces the ground-truth health oracle wherever
        *suspicion* (not physical truth) is the right knowledge: it
        drives invocation failover (:attr:`InvocationService.
        failure_detector`) and forwarding-chain crash repair
        (``locator.health``).  Physical consequences of crashes —
        migration aborts towards truly-dead targets, calls blocking on
        truly-dead hosts — stay with the ground-truth ``faults``
        injector.  Returns the detector; pass ``start=True`` to launch
        its processes immediately.
        """
        from repro.runtime.failure import FailureDetector

        detector = FailureDetector(
            self,
            faults=faults,
            interval=interval,
            timeout=timeout,
            phi_threshold=phi_threshold,
            monitor_node=monitor_node,
        )
        self.invocations.failure_detector = detector
        if hasattr(self.locator, "health"):
            self.locator.health = detector
        if start:
            detector.start()
        return detector

    # -- convenience -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.env.now

    def run(self, until=None):
        """Run the underlying simulation."""
        return self.env.run(until=until)

    def __repr__(self) -> str:
        return (
            f"<DistributedSystem nodes={self.node_count} "
            f"objects={len(self.registry.objects)} t={self.env.now:.2f}>"
        )
