"""Invocation timeout and retry policy (bounded exponential backoff).

On a reliable network (the paper's model) a call always completes and
no timeout machinery is needed.  Under the fault layer a request or
reply message may be lost; the only way a sender detects this is by
waiting out a timeout.  :class:`RetryPolicy` captures the standard
production recipe:

* a fixed per-attempt *timeout* — the sender concludes loss after this
  much silence, never earlier than the already-elapsed wire time;
* *bounded retries* — at most ``max_attempts`` tries, after which the
  call fails with :class:`~repro.errors.TimeoutError`;
* *exponential backoff with jitter* — the k-th retry waits
  ``min(cap, base * multiplier**k)`` scaled by a random factor in
  ``[1 - jitter, 1]``, drawn from its own named stream
  (``"invocation.retry"``) so retrying never perturbs the latency or
  workload streams.

The defaults are sized for the paper's normalized Exp(1) message
latency: an 8-unit timeout is ~8 mean one-way latencies, so spurious
timeouts (the message was merely slow) are rare but possible —
exactly the real-world ambiguity retries must tolerate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.runtime.clock import Clock
from repro.sim.rng import Stream


class RandomJitter:
    """Jitter source for live (non-simulated) retries.

    :meth:`RetryPolicy.backoff` draws jitter via ``stream.uniform()``
    with no arguments — the contract of the simulation's
    :class:`~repro.sim.rng.Stream`.  The stdlib's ``random.Random``
    needs two arguments, so the live backend wraps one in this
    adapter; seeded, it is just as reproducible.
    """

    __slots__ = ("_rng",)

    def __init__(self, seed=None):
        self._rng = random.Random(seed)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Draw from ``[low, high)`` with the seeded generator."""
        return self._rng.uniform(low, high)


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff configuration for invocations.

    Attributes
    ----------
    max_attempts:
        Total tries per call (first attempt included).  Must be >= 1.
    timeout:
        Silence duration after which one attempt is abandoned.
    base:
        Backoff before the first retry.
    cap:
        Upper bound on any single backoff delay.
    multiplier:
        Growth factor between consecutive backoffs.
    jitter:
        Fraction of each backoff randomized away: the delay is drawn
        uniformly from ``[delay * (1 - jitter), delay]``.  0 disables
        jitter (deterministic backoff).
    """

    max_attempts: int = 4
    timeout: float = 8.0
    base: float = 1.0
    cap: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"cap must be >= base, got cap={self.cap} base={self.base}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def envelope(self, retry_index: int) -> float:
        """Un-jittered upper bound on the ``retry_index``-th backoff.

        ``min(cap, base * multiplier**k)`` — non-decreasing in ``k``
        (``multiplier >= 1``) and never above ``cap``; jitter only ever
        shrinks a delay below this envelope.
        """
        if retry_index < 0:
            raise ValueError(
                f"retry_index must be >= 0, got {retry_index}"
            )
        return min(self.cap, self.base * self.multiplier**retry_index)

    def backoff(self, retry_index: int, stream: Stream) -> float:
        """Delay before retry number ``retry_index`` (0-based).

        Only draws from ``stream`` when jitter is enabled, so a
        jitter-free policy is fully deterministic.  ``stream`` is any
        object with a no-argument ``uniform()`` returning [0, 1) — a
        simulation :class:`~repro.sim.rng.Stream` or a live
        :class:`RandomJitter`; the policy itself is backend-blind.
        """
        delay = self.envelope(retry_index)
        if self.jitter > 0 and delay > 0:
            delay *= 1.0 - self.jitter * stream.uniform()
        return delay

    def delays(self, stream: Stream) -> Iterator[float]:
        """The full backoff schedule: one delay per retry, in order.

        Yields ``max_attempts - 1`` delays (the first attempt has no
        backoff before it).  Pure computation over the injected
        ``stream`` — no clock, no sleeping.
        """
        for k in range(self.max_attempts - 1):
            yield self.backoff(k, stream)

    def schedule(
        self, clock: Clock, stream: Stream
    ) -> List[Tuple[float, float]]:
        """Absolute ``(start, deadline)`` of every attempt, from ``clock``.

        Timestamps come from the *injected* :class:`~repro.runtime.
        clock.Clock` — simulated time under a ``SimClock``, wall-clock
        seconds under a ``WallClock`` — never from any ambient time
        source; that is what makes the same policy drive both
        backends.  Attempt ``i`` starts when the previous attempt's
        timeout plus the i-1-th backoff has elapsed and times out
        ``timeout`` later.  Start times are monotonic non-decreasing by
        construction (delays are never negative).
        """
        schedule: List[Tuple[float, float]] = []
        start = clock.now()
        for attempt in range(self.max_attempts):
            schedule.append((start, start + self.timeout))
            if attempt < self.max_attempts - 1:
                start += self.timeout + self.backoff(attempt, stream)
        return schedule

    @property
    def worst_case_duration(self) -> float:
        """Upper bound on the sender-observed duration of a failed call.

        ``max_attempts`` timeouts plus every (un-jittered) backoff —
        the bound the fault-tolerance experiment checks against when it
        claims retries keep caller-observed latency bounded.
        """
        backoffs = sum(
            min(self.cap, self.base * self.multiplier**k)
            for k in range(self.max_attempts - 1)
        )
        return self.max_attempts * self.timeout + backoffs
