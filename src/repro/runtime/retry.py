"""Invocation timeout and retry policy (bounded exponential backoff).

On a reliable network (the paper's model) a call always completes and
no timeout machinery is needed.  Under the fault layer a request or
reply message may be lost; the only way a sender detects this is by
waiting out a timeout.  :class:`RetryPolicy` captures the standard
production recipe:

* a fixed per-attempt *timeout* — the sender concludes loss after this
  much silence, never earlier than the already-elapsed wire time;
* *bounded retries* — at most ``max_attempts`` tries, after which the
  call fails with :class:`~repro.errors.TimeoutError`;
* *exponential backoff with jitter* — the k-th retry waits
  ``min(cap, base * multiplier**k)`` scaled by a random factor in
  ``[1 - jitter, 1]``, drawn from its own named stream
  (``"invocation.retry"``) so retrying never perturbs the latency or
  workload streams.

The defaults are sized for the paper's normalized Exp(1) message
latency: an 8-unit timeout is ~8 mean one-way latencies, so spurious
timeouts (the message was merely slow) are rare but possible —
exactly the real-world ambiguity retries must tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import Stream


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry/backoff configuration for invocations.

    Attributes
    ----------
    max_attempts:
        Total tries per call (first attempt included).  Must be >= 1.
    timeout:
        Silence duration after which one attempt is abandoned.
    base:
        Backoff before the first retry.
    cap:
        Upper bound on any single backoff delay.
    multiplier:
        Growth factor between consecutive backoffs.
    jitter:
        Fraction of each backoff randomized away: the delay is drawn
        uniformly from ``[delay * (1 - jitter), delay]``.  0 disables
        jitter (deterministic backoff).
    """

    max_attempts: int = 4
    timeout: float = 8.0
    base: float = 1.0
    cap: float = 30.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"cap must be >= base, got cap={self.cap} base={self.base}"
            )
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, retry_index: int, stream: Stream) -> float:
        """Delay before retry number ``retry_index`` (0-based).

        Only draws from ``stream`` when jitter is enabled, so a
        jitter-free policy is fully deterministic.
        """
        if retry_index < 0:
            raise ValueError(
                f"retry_index must be >= 0, got {retry_index}"
            )
        delay = min(self.cap, self.base * self.multiplier**retry_index)
        if self.jitter > 0 and delay > 0:
            delay *= 1.0 - self.jitter * stream.uniform()
        return delay

    @property
    def worst_case_duration(self) -> float:
        """Upper bound on the sender-observed duration of a failed call.

        ``max_attempts`` timeouts plus every (un-jittered) backoff —
        the bound the fault-tolerance experiment checks against when it
        claims retries keep caller-observed latency bounded.
        """
        backoffs = sum(
            min(self.cap, self.base * self.multiplier**k)
            for k in range(self.max_attempts - 1)
        )
        return self.max_attempts * self.timeout + backoffs
