"""The :class:`Transport` seam: one message-passing authority per backend.

Companion of :mod:`repro.runtime.clock`.  Everything the migration
protocol does remotely — move requests, object transfers, heartbeats,
location lookups — funnels through a transport, and the protocol logic
only depends on this minimal contract:

* messages are addressed by integer node id (``src``/``dst``),
* sending costs time and *may fail* — lost on the wire
  (:class:`~repro.errors.MessageLostError`), or, on the live backend,
  the connection itself may die
  (:class:`~repro.errors.ConnectionLostError`),
* the transport keeps the aggregate accounting the analysis layer
  reads (remote/local message counts, time on the wire, drops).

Backends
--------
:class:`~repro.network.network.Network` is the simulation backend: its
``transmit`` is a generator that spends sampled latency in simulated
time (``yield from network.transmit(a, b)``).  The
:class:`~repro.network.simbackend.SimTransport` adapter presents it
through this seam.  :class:`~repro.runtime.live.transport.
AsyncioTransport` is the live backend: its ``send``/``request`` are
coroutines moving pickled frames over real TCP/Unix sockets between OS
processes, with :class:`~repro.runtime.live.transport.FaultyTransport`
injecting the same fault vocabulary (drops, delays, duplicates,
partitions) at the live layer.

The *waiting* primitive is deliberately backend-native — a generator
under the kernel, a coroutine under asyncio — exactly like
:meth:`Clock.sleep <repro.runtime.clock.Clock.sleep>`.  Shared protocol
code never drives a transmission itself; it hands the transport to the
backend's driver and consumes the outcome (delivered, lost, timed out)
through the shared fault taxonomy of :mod:`repro.errors`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict


class Transport(ABC):
    """Minimal message-passing contract shared by every backend.

    Concrete transports must expose four counters with these exact
    names (the analysis and telemetry layers read them):

    ``remote_messages``
        Messages between distinct nodes.
    ``local_messages``
        Messages a node sent to itself (free on the live backend,
        zero-latency-sampled on the sim backend).
    ``total_latency``
        Accumulated time messages spent on the wire.
    ``dropped_messages``
        Messages lost to injected faults.
    """

    remote_messages: int
    local_messages: int
    total_latency: float
    dropped_messages: int

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of nodes this transport connects."""

    @abstractmethod
    def transmit(self, src: int, dst: int, **kwargs):
        """Backend-native transmission of one message ``src`` → ``dst``.

        Sim backend: a generator to ``yield from`` inside a simulation
        process, returning the sampled latency or raising
        :class:`~repro.errors.MessageLostError`.  Live backend: a
        coroutine performing real socket I/O, raising
        :class:`~repro.errors.TransportError` subclasses on failure.
        """

    def stats(self) -> Dict[str, float]:
        """The shared accounting snapshot every backend provides."""
        return {
            "remote_messages": self.remote_messages,
            "local_messages": self.local_messages,
            "total_latency": self.total_latency,
            "dropped_messages": self.dropped_messages,
        }


__all__ = ["Transport"]
