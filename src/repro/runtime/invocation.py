"""Remote object invocation.

Implements the cost model of §4.1/§4.2.1:

* an invocation is a *call* message plus a *result* message;
* each message costs Exp(1) when the endpoints differ, 0 when they are
  co-located (local actions are four orders of magnitude cheaper and
  are neglected);
* a call whose callee is in transit "is blocked until the object is
  operational once again" — the blocking time is part of the call's
  measured duration, which is how migration inflates latency.

The caller's wall-clock view (send → reply received) is what the
paper's "mean duration of one call" (Fig 10) measures; the invocation
service returns it and also keeps aggregate accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.network.network import Network
from repro.runtime.locator import ImmediateUpdateLocator, Locator
from repro.runtime.messages import Message, MessageKind
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment
from repro.sim.stats import RunningStats
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class InvocationResult:
    """Outcome of one invocation, from the caller's point of view.

    Attributes
    ----------
    duration:
        Wall-clock time from send to reply receipt (includes blocking
        on in-transit callees).
    was_local:
        True when both messages were node-local (cost 0).
    blocked_time:
        Portion of ``duration`` spent waiting for the callee to be
        reinstalled after a migration.
    """

    duration: float
    was_local: bool
    blocked_time: float


class InvocationService:
    """Performs invocations on (possibly remote, possibly moving) objects."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        locator: Optional[Locator] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.env = env
        self.network = network
        self.locator = locator or ImmediateUpdateLocator(env, network)
        self.tracer = tracer
        #: Aggregate duration statistics over every invocation performed.
        self.durations = RunningStats()
        self.local_calls = 0
        self.remote_calls = 0
        self.blocked_calls = 0

    def invoke(
        self, caller_node: int, obj: DistributedObject, body=None
    ) -> Generator:
        """Process fragment performing one invocation; returns an
        :class:`InvocationResult`.

        Use as ``result = yield from service.invoke(node, obj)``.

        Parameters
        ----------
        caller_node:
            Node the invocation originates from.
        obj:
            The callee.
        body:
            Optional callable ``body(callee_node) -> generator`` run at
            the callee between request receipt and reply — this is how
            nested synchronous invocations (a first-layer server calling
            its second-layer working set, Fig 7) are modelled.  The
            nested time is part of the caller's observed duration.
        """
        start = self.env.now
        blocked = 0.0

        # An object in transit cannot accept the request; the call
        # blocks until it is reinstalled (§4.1).
        while obj.in_transit:
            t0 = self.env.now
            yield obj.reinstalled.wait()
            blocked += self.env.now - t0

        # Resolve the current location (free under immediate update).
        dst = yield from self.locator.locate(caller_node, obj)

        # Call message.
        call_latency = yield from self.network.transmit(caller_node, dst)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.INVOCATION_REQUEST.value,
                src=caller_node,
                dst=dst,
                object_id=obj.object_id,
                latency=call_latency,
            )

        # The object may have departed while the request was in flight;
        # the request waits at the runtime until it is operational again
        # and is then processed wherever the object landed.
        while obj.in_transit:
            t0 = self.env.now
            yield obj.reinstalled.wait()
            blocked += self.env.now - t0

        # Local processing is neglected (four orders of magnitude below
        # a remote action, §4.1).
        obj.invocation_count += 1

        # Nested invocations performed by the callee while serving this
        # call (e.g. a first-layer server using its second layer).
        if body is not None:
            yield from body(obj.node_id)

        reply_src = obj.node_id

        # Result message back to the caller.
        reply_latency = yield from self.network.transmit(reply_src, caller_node)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.INVOCATION_REPLY.value,
                src=reply_src,
                dst=caller_node,
                object_id=obj.object_id,
                latency=reply_latency,
            )

        duration = self.env.now - start
        was_local = call_latency == 0.0 and reply_latency == 0.0 and blocked == 0.0
        self.durations.add(duration)
        if was_local:
            self.local_calls += 1
        else:
            self.remote_calls += 1
        if blocked > 0:
            self.blocked_calls += 1
        return InvocationResult(
            duration=duration, was_local=was_local, blocked_time=blocked
        )
