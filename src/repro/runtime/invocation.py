"""Remote object invocation.

Implements the cost model of §4.1/§4.2.1:

* an invocation is a *call* message plus a *result* message;
* each message costs Exp(1) when the endpoints differ, 0 when they are
  co-located (local actions are four orders of magnitude cheaper and
  are neglected);
* a call whose callee is in transit "is blocked until the object is
  operational once again" — the blocking time is part of the call's
  measured duration, which is how migration inflates latency.

The caller's wall-clock view (send → reply received) is what the
paper's "mean duration of one call" (Fig 10) measures; the invocation
service returns it and also keeps aggregate accounting.

Fault tolerance
---------------
When the network has a :class:`~repro.network.faults.LinkFaultModel`
installed, either message of a call may be lost
(:class:`~repro.errors.MessageLostError`).  The service then applies
its :class:`~repro.runtime.retry.RetryPolicy`: the caller waits out the
attempt timeout, backs off (exponentially, with jitter drawn from the
``"invocation.retry"`` stream) and retries from scratch — including
re-locating the callee, which may have moved meanwhile.  Retries give
*at-least-once* semantics: a call whose reply was lost has already
executed once at the callee.  After ``max_attempts`` tries the call
fails with :class:`~repro.errors.TimeoutError`.  On a fault-free
network none of this machinery runs and the behaviour (and random-draw
sequence) is identical to the reliable model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.errors import MessageLostError, NodeDownError, TimeoutError
from repro.network.network import Network
from repro.runtime.locator import ImmediateUpdateLocator, Locator
from repro.runtime.messages import Message, MessageKind
from repro.runtime.objects import DistributedObject
from repro.runtime.retry import RetryPolicy
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.sim.stats import RunningStats
from repro.sim.trace import NULL_TRACER, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import ERROR


@dataclass(frozen=True)
class InvocationResult:
    """Outcome of one invocation, from the caller's point of view.

    Attributes
    ----------
    duration:
        Wall-clock time from send to reply receipt (includes blocking
        on in-transit callees, timeouts and backoff of failed attempts).
    was_local:
        True when both messages were node-local (cost 0).
    blocked_time:
        Portion of ``duration`` spent waiting for the callee to be
        reinstalled after a migration.
    attempts:
        Number of attempts performed (1 on a reliable network).
    """

    duration: float
    was_local: bool
    blocked_time: float
    attempts: int = 1


class InvocationService:
    """Performs invocations on (possibly remote, possibly moving) objects.

    Parameters
    ----------
    env, network:
        Simulation environment and interconnect.
    locator:
        Location strategy (default immediate update = free lookup).
    tracer:
        Trace sink.
    retry:
        Timeout/retry policy applied when the network loses messages;
        irrelevant (never consulted) on a fault-free network.
    streams:
        Random-stream factory; backoff jitter draws from the stream
        named ``"invocation.retry"`` only when a retry actually occurs.
    telemetry:
        Metrics/span sink.  With the NULL default, :meth:`invoke`
        dispatches straight to the untraced generator — the disabled
        path executes the exact pre-telemetry bytecode.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        locator: Optional[Locator] = None,
        tracer: Tracer = NULL_TRACER,
        retry: Optional[RetryPolicy] = None,
        streams: Optional[RandomStreams] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.env = env
        self.network = network
        self.locator = locator or ImmediateUpdateLocator(env, network)
        self.tracer = tracer
        self.retry = retry or RetryPolicy()
        self._streams = streams or RandomStreams(0)
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_local = metrics.counter("invocation.calls", scope="local")
            self._m_remote = metrics.counter("invocation.calls", scope="remote")
            self._m_retries = metrics.counter("invocation.retries")
            self._m_timeouts = metrics.counter("invocation.timeouts")
            self._m_failed = metrics.counter("invocation.failed")
            self._m_duration = metrics.histogram("invocation.duration")
        #: Optional heartbeat :class:`~repro.runtime.failure.
        #: FailureDetector`.  When set, a caller whose attempt timed
        #: out against a node the detector suspects stops burning
        #: retries and fails over immediately with
        #: :class:`~repro.errors.NodeDownError` — the caller can then
        #: redirect to a replica instead of waiting out the full retry
        #: budget against a (suspected) corpse.  ``None`` (default)
        #: keeps the retry behaviour bit-identical.
        self.failure_detector = None
        #: Optional ground-truth liveness provider (``is_down`` +
        #: ``wait_until_up`` generator).  When set, a request arriving
        #: at a crashed node parks until the node recovers instead of
        #: executing on it — the physical crash-recover semantics the
        #: invariant monitors assert.  ``None`` keeps the pre-chaos
        #: behaviour.
        self.liveness = None
        #: Aggregate duration statistics over every completed invocation.
        self.durations = RunningStats()
        self.local_calls = 0
        self.remote_calls = 0
        self.blocked_calls = 0
        # Fault-tolerance accounting (all zero on a reliable network).
        self.timeouts = 0
        self.retries = 0
        self.failed_calls = 0
        self.retry_wait_time = 0.0
        #: Calls abandoned early because the detector suspected the callee.
        self.failovers = 0
        #: Executions that went through on a node the liveness provider
        #: reported down — must stay 0; the chaos invariant monitors
        #: assert on it.
        self.executions_on_crashed = 0

    def stats(self) -> dict:
        """Aggregate counters for reports and degradation analysis."""
        return {
            "calls": self.durations.count,
            "mean_duration": self.durations.mean if self.durations.count else 0.0,
            "local_calls": self.local_calls,
            "remote_calls": self.remote_calls,
            "blocked_calls": self.blocked_calls,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failed_calls": self.failed_calls,
            "retry_wait_time": self.retry_wait_time,
            "failovers": self.failovers,
            "executions_on_crashed": self.executions_on_crashed,
        }

    def invoke(
        self, caller_node: int, obj: DistributedObject, body=None
    ) -> Generator:
        """Process fragment performing one invocation; returns an
        :class:`InvocationResult`.

        Use as ``result = yield from service.invoke(node, obj)``.

        Parameters
        ----------
        caller_node:
            Node the invocation originates from.
        obj:
            The callee.
        body:
            Optional callable ``body(callee_node) -> generator`` run at
            the callee between request receipt and reply — this is how
            nested synchronous invocations (a first-layer server calling
            its second-layer working set, Fig 7) are modelled.  The
            nested time is part of the caller's observed duration.

        Raises
        ------
        TimeoutError
            When the network loses messages and every attempt allowed
            by the retry policy timed out.
        """
        if self._telemetry_on:
            return self._invoke_traced(caller_node, obj, body)
        return self._invoke(caller_node, obj, body)

    def _invoke_traced(
        self, caller_node: int, obj: DistributedObject, body
    ) -> Generator:
        """Span-wrapped :meth:`_invoke`: one ``invocation`` span per call.

        Every exit path closes the span — error status carries the
        exception type, so abandoned calls (retry exhaustion, failover)
        never leak an open span.
        """
        telemetry = self.telemetry
        span = telemetry.start_span(
            "invocation", node=caller_node, object=obj.name
        )
        try:
            result = yield from self._invoke(caller_node, obj, body)
        except BaseException as exc:
            telemetry.end_span(span, status=ERROR, error=type(exc).__name__)
            raise
        telemetry.end_span(
            span,
            attempts=result.attempts,
            local=result.was_local,
            blocked=result.blocked_time,
        )
        return result

    def _invoke(
        self, caller_node: int, obj: DistributedObject, body
    ) -> Generator:
        """The untraced invocation generator (see :meth:`invoke`)."""
        start = self.env.now
        blocked = 0.0
        attempt = 0

        while True:
            attempt += 1
            attempt_start = self.env.now
            try:
                call_latency, reply_latency, attempt_blocked = (
                    yield from self._attempt(caller_node, obj, body)
                )
                blocked += attempt_blocked
                break
            except MessageLostError:
                # Blocked time of a voided attempt is indistinguishable
                # from timeout waiting to the caller; it stays part of
                # the overall duration but not of ``blocked_time``.
                self.timeouts += 1
                if self._telemetry_on:
                    self._m_timeouts.inc()
                # The sender learns nothing until its timeout elapses;
                # the wire time already spent counts towards it.
                remaining = self.retry.timeout - (self.env.now - attempt_start)
                if remaining > 0:
                    yield self.env.sleep(remaining)
                if self.tracer.enabled:
                    self.tracer.emit(
                        self.env.now,
                        "invocation.timeout",
                        src=caller_node,
                        object_id=obj.object_id,
                        attempt=attempt,
                    )
                detector = self.failure_detector
                if detector is not None and detector.is_down(obj.node_id):
                    # Failover: the callee's node is suspected dead —
                    # stop burning the retry budget against it and let
                    # the caller redirect (e.g. to a replica).
                    self.failed_calls += 1
                    self.failovers += 1
                    if self._telemetry_on:
                        self._m_failed.inc()
                    raise NodeDownError(
                        f"invocation of {obj.name} from node {caller_node} "
                        f"abandoned after {attempt} attempts: node "
                        f"{obj.node_id} is suspected crashed"
                    ) from None
                if attempt >= self.retry.max_attempts:
                    self.failed_calls += 1
                    if self._telemetry_on:
                        self._m_failed.inc()
                    raise TimeoutError(
                        f"invocation of {obj.name} from node {caller_node} "
                        f"failed after {attempt} attempts"
                    ) from None
                self.retries += 1
                if self._telemetry_on:
                    self._m_retries.inc()
                delay = self.retry.backoff(
                    attempt - 1, self._streams.stream("invocation.retry")
                )
                if delay > 0:
                    self.retry_wait_time += delay
                    yield self.env.sleep(delay)

        duration = self.env.now - start
        was_local = (
            call_latency == 0.0
            and reply_latency == 0.0
            and blocked == 0.0
            and attempt == 1
        )
        self.durations.add(duration)
        if was_local:
            self.local_calls += 1
        else:
            self.remote_calls += 1
        if blocked > 0:
            self.blocked_calls += 1
        if self._telemetry_on:
            (self._m_local if was_local else self._m_remote).inc()
            self._m_duration.observe(duration)
        return InvocationResult(
            duration=duration,
            was_local=was_local,
            blocked_time=blocked,
            attempts=attempt,
        )

    def _attempt(
        self, caller_node: int, obj: DistributedObject, body
    ) -> Generator:
        """One try of the call/reply exchange.

        Returns ``(call_latency, reply_latency, blocked_time)``;
        propagates :class:`MessageLostError` from either message leg.
        """
        blocked = 0.0

        # An object in transit cannot accept the request; the call
        # blocks until it is reinstalled (§4.1).
        while obj.in_transit:
            t0 = self.env.now
            yield obj.reinstalled.wait()
            blocked += self.env.now - t0

        # Resolve the current location (free under immediate update).
        if self._telemetry_on:
            lspan = self.telemetry.start_span(
                "locate", node=caller_node, object=obj.name
            )
            try:
                dst = yield from self.locator.locate(caller_node, obj)
            except BaseException as exc:
                self.telemetry.end_span(
                    lspan, status=ERROR, error=type(exc).__name__
                )
                raise
            hops = getattr(self.locator, "last_hops", None)
            if hops is not None:
                lspan.tag(hops=hops)
            self.telemetry.end_span(lspan, dst=dst)
        else:
            dst = yield from self.locator.locate(caller_node, obj)

        # Call message.
        call_latency = yield from self.network.transmit(caller_node, dst)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.INVOCATION_REQUEST.value,
                src=caller_node,
                dst=dst,
                object_id=obj.object_id,
                latency=call_latency,
            )

        # The object may have departed while the request was in flight;
        # the request waits at the runtime until it is operational again
        # and is then processed wherever the object landed.
        while obj.in_transit:
            t0 = self.env.now
            yield obj.reinstalled.wait()
            blocked += self.env.now - t0

        # Crash-recover semantics: a request present at a crashed node
        # parks until recovery (stable state) rather than executing on
        # a corpse.  Only active when a liveness provider is wired in
        # (the chaos harness does); otherwise the pre-fault behaviour
        # and event sequence are untouched.
        liveness = self.liveness
        if liveness is not None:
            while liveness.is_down(obj.node_id):
                blocked += yield from liveness.wait_until_up(obj.node_id)
                # The object may have moved while the request was parked.
                while obj.in_transit:
                    t1 = self.env.now
                    yield obj.reinstalled.wait()
                    blocked += self.env.now - t1

        # Local processing is neglected (four orders of magnitude below
        # a remote action, §4.1).
        if liveness is not None and liveness.is_down(obj.node_id):
            self.executions_on_crashed += 1  # pragma: no cover - invariant
        obj.invocation_count += 1

        # Nested invocations performed by the callee while serving this
        # call (e.g. a first-layer server using its second layer).
        if body is not None:
            yield from body(obj.node_id)

        reply_src = obj.node_id

        # Result message back to the caller.
        reply_latency = yield from self.network.transmit(reply_src, caller_node)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.INVOCATION_REPLY.value,
                src=reply_src,
                dst=caller_node,
                object_id=obj.object_id,
                latency=reply_latency,
            )

        return call_latency, reply_latency, blocked
