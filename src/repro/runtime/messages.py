"""Message vocabulary of the distributed object runtime.

The simulation is process-based rather than literally message-passing,
but every remote interaction corresponds to one of these message kinds,
and the runtime emits a trace record per message so tests can assert on
the exact wire behaviour (e.g. that transient placement adds no remote
operations — §3.2's key property).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional


class MessageKind(Enum):
    """Every remote-interaction type the runtime can perform."""

    #: Client → object: invoke a method (the "call" half of §4.2.1).
    INVOCATION_REQUEST = "invocation.request"
    #: Object → client: the "result" half.
    INVOCATION_REPLY = "invocation.reply"
    #: Client → object: a move()/visit() request (forwarded to the
    #: object's current location, §3.1).
    MOVE_REQUEST = "move.request"
    #: Object runtime → client: grant or "locked" indication (§3.2).
    MOVE_REPLY = "move.reply"
    #: Client → object: end-of-move-block notification.  Local (free)
    #: under the place-policy; forwarded under the dynamic policies.
    END_REQUEST = "end.request"
    #: The linearized object state in transit between nodes.
    OBJECT_TRANSFER = "object.transfer"
    #: Location-service traffic (name-server lookup / broadcast /
    #: forwarding hop) — only charged by non-default locators.
    LOCATION_LOOKUP = "location.lookup"


@dataclass(frozen=True)
class Message:
    """One (possibly local) message exchanged in the model.

    Attributes
    ----------
    kind:
        The message type.
    src, dst:
        Node ids of the endpoints (equal for local messages).
    object_id:
        The object concerned, if any.
    latency:
        The sampled latency the message spent on the wire (0 locally).
    """

    kind: MessageKind
    src: int
    dst: int
    object_id: Optional[int] = None
    latency: float = 0.0

    @property
    def is_remote(self) -> bool:
        """True when the endpoints are different nodes."""
        return self.src != self.dst
