"""Heartbeat-based failure detection (imperfect liveness knowledge).

The fault layer of the first fault-tolerance PR broke crashed movers'
locks by consulting a ground-truth health oracle — something no real
non-monolithic system has.  A real runtime can only *suspect* a node is
dead from the absence of its heartbeats, and that suspicion can be
wrong: a lossy link or a partition silences a perfectly healthy node.
The place-policy stays safe under such false suspicion (a live mover
that loses its locks merely degrades to remote invocation, §3.2), and
this module makes the imperfection explicit so it can be exercised.

:class:`FailureDetector` runs one heartbeat process per node over the
simulated :class:`~repro.network.network.Network`.  Each node sends a
heartbeat every ``interval`` to the ``monitor_node``; the detector
records arrival times and suspects a node once no heartbeat has been
seen for ``timeout`` (or, in *phi-accrual* mode, once the suspicion
level :meth:`phi` crosses ``phi_threshold``).  Heartbeat messages ride
the real network: they pay latency, they are lost on lossy links, and
partitions silence whole groups — which is exactly how false suspicion
arises.  Suspicion clears the moment a fresh heartbeat arrives, so the
system converges once connectivity returns.

Determinism: heartbeat latencies are drawn from dedicated per-node
streams (``"failure.heartbeat.<id>"``) passed into
:meth:`Network.transmit`, never from the shared ``"network.latency"``
stream — enabling the detector on a fault-free run leaves every other
component's random draws, and therefore every paper-figure result,
bit-identical.

The detector is duck-type compatible with the ground-truth
:class:`~repro.availability.faults.FaultInjector` wherever a *health
provider* is expected (``is_down(node_id) -> bool``): it can drive
:meth:`LockManager.break_crashed <repro.core.locking.LockManager.
break_crashed>`, the :class:`~repro.core.locking.LeaseSweeper`,
invocation failover and forwarding-chain repair.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Generator, Optional, Set

from repro.errors import MessageLostError

#: ln(10), used by the phi-accrual suspicion level.
_LN10 = math.log(10.0)


class HeartbeatHistory:
    """Pure heartbeat bookkeeping + suspicion math, clock-agnostic.

    This is the part of the failure detector that is *protocol*, not
    simulation: record arrival timestamps, estimate the inter-arrival
    mean, and answer "how suspicious is this much silence?" — either in
    fixed-timeout mode or as the phi-accrual level.  Every query takes
    ``now`` explicitly, so the same instance serves the simulated
    detector (``now = env.now``) and the live
    :class:`~repro.runtime.live.supervisor.NodeSupervisor`
    (``now = WallClock().now()``) unchanged.

    Parameters mirror :class:`FailureDetector`; see there.
    """

    __slots__ = ("interval", "timeout", "phi_threshold", "window",
                 "_last", "_intervals")

    def __init__(
        self,
        interval: float = 1.0,
        timeout: float = 15.0,
        phi_threshold: Optional[float] = None,
        window: int = 32,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if phi_threshold is not None and phi_threshold <= 0:
            raise ValueError(
                f"phi_threshold must be positive, got {phi_threshold}"
            )
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.interval = interval
        self.timeout = timeout
        self.phi_threshold = phi_threshold
        self.window = window
        #: node id -> arrival time of its most recent heartbeat.
        self._last: Dict[int, float] = {}
        #: node id -> recent heartbeat inter-arrival samples.
        self._intervals: Dict[int, Deque[float]] = {}

    def ensure(self, node_id: int, now: float) -> None:
        """Bootstrap: consider the node heard-from at ``now``.

        Suspicion then needs a full timeout of *real* silence; without
        this a freshly watched node would be instantly suspect.
        """
        self._last.setdefault(node_id, now)
        self._intervals.setdefault(node_id, deque(maxlen=self.window))

    def record(self, node_id: int, now: float) -> None:
        """One heartbeat from ``node_id`` arrived at ``now``."""
        prev = self._last.get(node_id)
        if prev is None:
            self._intervals.setdefault(node_id, deque(maxlen=self.window))
        else:
            self._intervals[node_id].append(now - prev)
        self._last[node_id] = now

    def forget(self, node_id: int) -> None:
        """Drop a node's history (e.g. after a supervised restart)."""
        self._last.pop(node_id, None)
        self._intervals.pop(node_id, None)

    def last(self, node_id: int) -> Optional[float]:
        """Arrival time of the node's latest heartbeat, if any."""
        return self._last.get(node_id)

    def known(self) -> Set[int]:
        """Every node id with at least a bootstrap entry."""
        return set(self._last)

    def phi(self, node_id: int, now: float) -> float:
        """Phi-accrual suspicion level of one node at time ``now``.

        Models heartbeat inter-arrivals as exponential with the
        observed mean ``m``; the probability that a healthy node stays
        silent for ``t`` is ``exp(-t/m)``, so
        ``phi = t / (m * ln 10)``.  A ``phi`` of 1 means a 10% chance
        the silence is ordinary, 2 means 1%, and so on.
        """
        last = self._last.get(node_id)
        if last is None:
            return 0.0
        elapsed = now - last
        samples = self._intervals.get(node_id)
        if samples:
            mean = sum(samples) / len(samples)
        else:
            mean = self.interval
        if mean <= 0:
            mean = self.interval
        return elapsed / (mean * _LN10)

    def is_down(self, node_id: int, now: float) -> bool:
        """Whether the silence observed by ``now`` crosses the threshold."""
        last = self._last.get(node_id)
        if last is None:
            return False  # never monitored: assume up (no evidence)
        if self.phi_threshold is not None:
            return self.phi(node_id, now) >= self.phi_threshold
        return (now - last) > self.timeout

    def __repr__(self) -> str:
        mode = (
            f"phi>={self.phi_threshold}"
            if self.phi_threshold is not None
            else f"timeout={self.timeout}"
        )
        return f"<HeartbeatHistory nodes={len(self._last)} {mode}>"


class FailureDetector:
    """Per-node heartbeat processes plus a suspicion evaluator.

    Parameters
    ----------
    system:
        The :class:`~repro.runtime.system.DistributedSystem` whose
        nodes are monitored.
    faults:
        Optional ground-truth :class:`~repro.availability.faults.
        FaultInjector`.  Used for two things only: a crashed node's
        heartbeat process stops sending (a process dies with its host —
        that is local knowledge, not an oracle), and suspicion events
        are classified as true or false for the accounting counters.
        The *suspicion decision itself* never consults it.
    interval:
        Simulated time between heartbeats of one node.
    timeout:
        Suspicion threshold in timeout mode: a node is suspected when
        no heartbeat arrived for this long.  Should be a comfortable
        multiple of ``interval`` plus the typical message latency,
        otherwise latency jitter alone produces false suspicions.
    phi_threshold:
        When set, enables *phi-accrual* mode (Hayashibara et al.): the
        node is suspected when :meth:`phi` — the negative decimal log of
        the probability that the silence observed so far is ordinary,
        under an exponential model of heartbeat inter-arrivals —
        reaches this value.  ``timeout`` is ignored in this mode.
    window:
        Number of recent inter-arrival samples kept per node for the
        phi estimate.
    monitor_node:
        Node hosting the detector; heartbeats from this node are local
        (never lost, zero latency).
    """

    def __init__(
        self,
        system,
        faults=None,
        interval: float = 1.0,
        timeout: float = 15.0,
        phi_threshold: Optional[float] = None,
        window: int = 32,
        monitor_node: int = 0,
    ):
        #: Clock-agnostic arrival bookkeeping + suspicion math, shared
        #: verbatim with the live supervisor (parameter validation
        #: happens in there).
        self.history = HeartbeatHistory(
            interval=interval,
            timeout=timeout,
            phi_threshold=phi_threshold,
            window=window,
        )
        self.system = system
        self.faults = faults
        self.interval = interval
        self.timeout = timeout
        self.phi_threshold = phi_threshold
        self.window = window
        self.monitor_node = monitor_node
        #: Nodes currently suspected (transition bookkeeping only; the
        #: authoritative answer is computed lazily by :meth:`is_down`).
        self._suspected: Set[int] = set()
        self._watched: Set[int] = set()
        self._started = False
        # Accounting.
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        self.heartbeats_lost = 0
        self.suspicions = 0
        self.false_suspicions = 0
        self.suspicions_cleared = 0

    # -- the health-provider interface ----------------------------------------

    def is_down(self, node_id: int) -> bool:
        """Whether the detector currently *suspects* the node.

        Unlike the ground-truth injector this answer can be wrong in
        both directions: a freshly crashed node is not yet suspected
        (its last heartbeat is still recent), and a live node behind a
        lossy link may be falsely suspected.
        """
        return self.history.is_down(node_id, self.system.env.now)

    def phi(self, node_id: int) -> float:
        """Phi-accrual suspicion level of one node (see
        :meth:`HeartbeatHistory.phi`)."""
        return self.history.phi(node_id, self.system.env.now)

    def suspected_nodes(self) -> Set[int]:
        """Snapshot of every node the detector currently suspects."""
        return {n for n in self.history.known() if self.is_down(n)}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Launch heartbeat senders and the suspicion evaluator.

        Idempotent per node, like the fault injector: calling it again
        only starts senders for nodes added since the previous call.
        """
        env = self.system.env
        if not self._started:
            self._started = True
            env.process(self._evaluator(), name="failure-detector")
        for node in self.system.registry.nodes:
            node_id = node.node_id
            if node_id in self._watched:
                continue
            self._watched.add(node_id)
            # Bootstrap: a node is considered heard-from at start time,
            # so suspicion needs a full timeout of real silence.
            self.history.ensure(node_id, env.now)
            env.process(
                self._heartbeat(node_id), name=f"heartbeat-{node_id}"
            )

    def _heartbeat(self, node_id: int) -> Generator:
        env = self.system.env
        network = self.system.network
        stream = self.system.streams.stream(f"failure.heartbeat.{node_id}")
        while True:
            yield env.timeout(self.interval)
            if self.faults is not None and self.faults.is_down(node_id):
                # A crashed host runs no processes: nothing is sent.
                # This is local knowledge (the process died with the
                # node), not an oracle consultation.
                continue
            self.heartbeats_sent += 1
            if node_id == self.monitor_node:
                self._record(node_id)
                continue
            try:
                yield from network.transmit(
                    node_id, self.monitor_node, stream=stream
                )
            except MessageLostError:
                self.heartbeats_lost += 1
                continue
            self._record(node_id)

    def _record(self, node_id: int) -> None:
        self.history.record(node_id, self.system.env.now)
        self.heartbeats_received += 1
        if node_id in self._suspected:
            # Fresh evidence of life clears the suspicion — this is
            # what makes false suspicion recoverable.
            self._suspected.discard(node_id)
            self.suspicions_cleared += 1

    def _evaluator(self) -> Generator:
        """Periodic suspicion-transition bookkeeping (accounting only)."""
        env = self.system.env
        while True:
            yield env.timeout(self.interval)
            for node_id in self._watched:
                if node_id in self._suspected or not self.is_down(node_id):
                    continue
                self._suspected.add(node_id)
                self.suspicions += 1
                # Without an injector no node is ever really down, so
                # every suspicion is false by definition.
                if self.faults is None or not self.faults.is_down(node_id):
                    self.false_suspicions += 1

    def stats(self) -> dict:
        """Aggregate counters for reports and tests."""
        return {
            "heartbeats_sent": self.heartbeats_sent,
            "heartbeats_received": self.heartbeats_received,
            "heartbeats_lost": self.heartbeats_lost,
            "suspicions": self.suspicions,
            "false_suspicions": self.false_suspicions,
            "suspicions_cleared": self.suspicions_cleared,
        }

    def __repr__(self) -> str:
        mode = (
            f"phi>={self.phi_threshold}"
            if self.phi_threshold is not None
            else f"timeout={self.timeout}"
        )
        return (
            f"<FailureDetector nodes={len(self._watched)} "
            f"interval={self.interval} {mode} "
            f"suspected={len(self._suspected)}>"
        )
