"""Migration mechanics: linearize, transfer, reinstall.

The mechanism (not the policy — §2.2 insists on that separation): a
migration takes an object off its node, spends the transfer duration M
(Table 1: fixed, per object; conceptually it scales with object size),
and reinstalls the object at the target, waking every call that blocked
on it meanwhile.

A *set* migration (the transitive attachment closure of §3.4) transfers
its members in parallel: the elapsed time is the slowest member's M,
but every member is individually unavailable for its own transfer
window, which is what makes dragging a large working set so costly for
everyone else.

Objects that are already at the target are not transferred ("moving" an
object to where it is costs nothing).  Objects in transit are waited
for, then transferred — this is how a conventional move "steals" an
object that is already moving elsewhere.

Abort and rollback
------------------
Under the fault layer a transfer can fail: the target node may be down
(per the installed ``health`` provider, usually a
:class:`~repro.availability.faults.FaultInjector`) or the transfer
message may be lost on the wire (per the network's
:class:`~repro.network.faults.LinkFaultModel`).  The rollback rule: the
object is reinstalled *at its origin*, every caller blocked on it is
woken there, and the locator is corrected — the move simply never
happened, except for the wasted wire time.  A target that is already
known-dead aborts immediately without linearizing the object at all.
Aborted members are surfaced in :attr:`MigrationOutcome.aborted` (or,
in ``strict`` mode, raised as
:class:`~repro.errors.MigrationAbortedError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import MigrationAbortedError, ObjectFixedError
from repro.network.network import Network
from repro.runtime.locator import Locator
from repro.runtime.messages import MessageKind
from repro.runtime.objects import DistributedObject
from repro.runtime.registry import ObjectRegistry
from repro.sim.kernel import Environment
from repro.sim.trace import NULL_TRACER, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import ERROR, Span


@dataclass
class MigrationOutcome:
    """Result of one (possibly multi-object) migration operation.

    Attributes
    ----------
    target_node:
        Where the objects were sent.
    moved:
        Objects actually transferred.
    already_there:
        Objects that were resident at the target already.
    aborted:
        Objects whose transfer failed (dead target or lost transfer
        message) and that were rolled back to their origin node.
    elapsed:
        Wall-clock duration of the whole operation (includes waiting
        for in-transit members).
    transfer_time:
        Sum of the individual transfer durations (the network work).
    wasted_transfer_time:
        Wire time spent on aborted transfers (outbound + rollback legs).
    """

    target_node: int
    moved: List[DistributedObject] = field(default_factory=list)
    already_there: List[DistributedObject] = field(default_factory=list)
    aborted: List[DistributedObject] = field(default_factory=list)
    elapsed: float = 0.0
    transfer_time: float = 0.0
    wasted_transfer_time: float = 0.0

    @property
    def moved_count(self) -> int:
        """Number of objects actually transferred."""
        return len(self.moved)

    @property
    def aborted_count(self) -> int:
        """Number of objects whose transfer was aborted."""
        return len(self.aborted)


class MigrationService:
    """Executes migrations against the registry and the clock.

    Parameters
    ----------
    env, registry:
        Simulation environment and authoritative registry.
    default_duration:
        The paper's M: transfer time for a size-1 object.
    locator:
        Optional locator to notify of moves (forwarding addresses).
    tracer:
        Trace sink.
    network:
        Optional network reference; when present and a link fault model
        is installed, transfer messages are subject to loss.
    health:
        Optional node-health provider (any object with
        ``is_down(node_id) -> bool``); when present, transfers towards
        down nodes abort.  :class:`~repro.availability.faults.FaultInjector`
        wires itself in here.
    telemetry:
        Metrics/span sink.  With the NULL default, :meth:`migrate`
        dispatches straight to the untraced generator; enabled, each
        ``migrate`` renders as one ``migration`` span with per-object
        ``transfer`` children (and ``rollback`` grandchildren on abort).
    """

    def __init__(
        self,
        env: Environment,
        registry: ObjectRegistry,
        default_duration: float = 6.0,
        locator: Optional[Locator] = None,
        tracer: Tracer = NULL_TRACER,
        network: Optional[Network] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        if default_duration < 0:
            raise ValueError(
                f"default_duration must be >= 0, got {default_duration}"
            )
        self.env = env
        self.registry = registry
        self.default_duration = default_duration
        self.locator = locator
        self.tracer = tracer
        self.network = network
        #: Node-health provider consulted for abort decisions (duck
        #: typed: anything with ``is_down(node_id)``; None = all up).
        self.health = None
        #: Total number of object transfers performed.
        self.migration_count = 0
        #: Total transfer time spent (sum of per-object durations).
        self.total_transfer_time = 0.0
        #: Transfers aborted and rolled back to their origin.
        self.migrations_aborted = 0
        #: Wire time wasted on aborted transfers.
        self.wasted_transfer_time = 0.0
        #: Transfers currently on the wire: object id -> (origin,
        #: target).  Chaos campaigns read this to crash a participant
        #: mid-transfer; entries exist exactly while the object is in
        #: transit on the outbound leg.
        self.active_transfers: Dict[int, Tuple[int, int]] = {}
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_moves = metrics.counter("migration.moves")
            self._m_transfer = metrics.histogram("migration.transfer_time")

    def _node_down(self, node_id: int) -> bool:
        return self.health is not None and self.health.is_down(node_id)

    def _transfer_lost(self, src: int, dst: int) -> bool:
        return (
            self.network is not None
            and self.network.faults is not None
            and self.network.faults.should_drop(src, dst)
        )

    def duration_for(self, obj: DistributedObject) -> float:
        """Transfer time for one object (M scaled by object size)."""
        return self.default_duration * obj.size

    def _transfer_one(
        self,
        obj: DistributedObject,
        target_node: int,
        extra_time: float = 0.0,
        parent: Optional[Span] = None,
    ) -> Generator:
        """Move a single object; returns ``(status, transfer_time)``
        with ``status`` one of ``"moved"``, ``"already"``, ``"aborted"``.

        ``parent`` is the spawning migration's span: transfers run as
        freshly spawned processes, so the causal link must be handed
        over explicitly (the parent's span context is per-process).
        """
        # Wait out any in-flight migration of this object: the request
        # queues at the runtime and executes on reinstallation.
        while obj.in_transit:
            yield obj.reinstalled.wait()

        if obj.fixed:
            raise ObjectFixedError(f"{obj.name} is fixed and cannot migrate")

        if obj.node_id == target_node:
            return ("already", 0.0)

        origin = obj.node_id
        tspan = None
        if self._telemetry_on:
            tspan = self.telemetry.start_span(
                "transfer",
                node=origin,
                parent=parent,
                object=obj.name,
                dst=target_node,
            )

        # Fast abort: a target known to be dead rejects the transfer at
        # the origin runtime before the object is even linearized.
        if self._node_down(target_node):
            self.migrations_aborted += 1
            if self._telemetry_on:
                self.telemetry.metrics.counter(
                    "migration.aborted", reason="node-down"
                ).inc()
                self.telemetry.end_span(
                    tspan, status=ERROR, reason="node-down"
                )
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now,
                    "migration.abort",
                    object_id=obj.object_id,
                    src=origin,
                    dst=target_node,
                    reason="node-down",
                )
            return ("aborted", 0.0)

        duration = self.duration_for(obj) + extra_time
        self.registry.depart(obj)
        obj.begin_transit()
        self.active_transfers[obj.object_id] = (origin, target_node)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "migration.start",
                object_id=obj.object_id,
                src=origin,
                dst=target_node,
                duration=duration,
            )

        # The transfer message itself may be lost; the drop is decided
        # now but only *observed* after the transfer window, when the
        # origin's runtime times out waiting for the install ack.
        lost = self._transfer_lost(origin, target_node)
        if duration > 0:
            yield self.env.sleep(duration)
        self.active_transfers.pop(obj.object_id, None)

        if lost or self._node_down(target_node):
            # Abort: roll the object back to its origin.  The return
            # trip costs another transfer window, then the object is
            # reinstalled where it started, blocked callers wake there
            # and the locator forgets the move ever happened.
            reason = "transfer-lost" if lost else "node-down"
            rspan = None
            if self._telemetry_on:
                rspan = self.telemetry.start_span(
                    "rollback",
                    node=origin,
                    parent=tspan,
                    object=obj.name,
                    reason=reason,
                )
            if duration > 0:
                yield self.env.sleep(duration)
            obj.install(origin)
            self.registry.arrive(obj, origin)
            if self.locator is not None:
                self.locator.note_migration(obj, origin)
            wasted = 2 * duration
            self.migrations_aborted += 1
            self.wasted_transfer_time += wasted
            if self._telemetry_on:
                self.telemetry.metrics.counter(
                    "migration.aborted", reason=reason
                ).inc()
                self.telemetry.end_span(rspan)
                self.telemetry.end_span(tspan, status=ERROR, reason=reason)
            if self.tracer.enabled:
                self.tracer.emit(
                    self.env.now,
                    "migration.abort",
                    object_id=obj.object_id,
                    src=origin,
                    dst=target_node,
                    reason=reason,
                )
            return ("aborted", wasted)

        obj.install(target_node)
        self.registry.arrive(obj, target_node)
        if self.locator is not None:
            self.locator.note_migration(obj, target_node)
        self.migration_count += 1
        self.total_transfer_time += duration
        if self._telemetry_on:
            self._m_moves.inc()
            self._m_transfer.observe(duration)
            self.telemetry.end_span(tspan)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "migration.done",
                object_id=obj.object_id,
                src=origin,
                dst=target_node,
            )
        return ("moved", duration)

    def migrate(
        self,
        objects: Iterable[DistributedObject],
        target_node: int,
        extra_time: float = 0.0,
        strict: bool = False,
    ) -> Generator:
        """Process fragment migrating ``objects`` to ``target_node``.

        Transfers run in parallel; the fragment completes when the last
        member is installed.  Returns a :class:`MigrationOutcome`.

        ``extra_time`` is added to every member's transfer duration —
        this is how §3.3's bookkeeping payload ("the size of data that
        has to be transferred when migrating an object increases") is
        charged when a dynamic policy opts into overhead accounting.

        With ``strict=True`` an outcome with aborted members raises
        :class:`MigrationAbortedError` (after every rollback finished);
        by default callers inspect :attr:`MigrationOutcome.aborted`.
        """
        if self._telemetry_on:
            return self._migrate_traced(objects, target_node, extra_time, strict)
        return self._migrate(objects, target_node, extra_time, strict)

    def _migrate_traced(
        self,
        objects: Iterable[DistributedObject],
        target_node: int,
        extra_time: float,
        strict: bool,
    ) -> Generator:
        """Span-wrapped :meth:`_migrate` (one ``migration`` span)."""
        objects = list(objects)
        telemetry = self.telemetry
        span = telemetry.start_span(
            "migration", node=target_node, objects=len(objects)
        )
        try:
            outcome = yield from self._migrate(
                objects, target_node, extra_time, strict, span=span
            )
        except BaseException as exc:
            telemetry.end_span(span, status=ERROR, error=type(exc).__name__)
            raise
        telemetry.end_span(
            span,
            moved=outcome.moved_count,
            aborted=outcome.aborted_count,
            already=len(outcome.already_there),
        )
        return outcome

    def _migrate(
        self,
        objects: Iterable[DistributedObject],
        target_node: int,
        extra_time: float = 0.0,
        strict: bool = False,
        span: Optional[Span] = None,
    ) -> Generator:
        """The untraced migration generator (see :meth:`migrate`)."""
        if extra_time < 0:
            raise ValueError(f"extra_time must be >= 0, got {extra_time}")
        self.registry.node(target_node)  # validate target exists
        objects = list(objects)
        outcome = MigrationOutcome(target_node=target_node)
        start = self.env.now

        movers = []
        for obj in objects:
            if not obj.in_transit and obj.node_id == target_node:
                outcome.already_there.append(obj)
                continue
            movers.append(obj)

        if movers:
            procs = [
                self.env.process(
                    self._transfer_one(obj, target_node, extra_time, span),
                    name=f"transfer-{obj.name}",
                )
                for obj in movers
            ]
            yield self.env.all_of(procs)
            for obj, proc in zip(movers, procs):
                status, transfer = proc.value
                if status == "moved":
                    outcome.moved.append(obj)
                    outcome.transfer_time += transfer
                elif status == "aborted":
                    outcome.aborted.append(obj)
                    outcome.wasted_transfer_time += transfer
                else:
                    # It was in transit towards (or already reached) the
                    # target when we caught up with it.
                    outcome.already_there.append(obj)

        outcome.elapsed = self.env.now - start
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.OBJECT_TRANSFER.value,
                target=target_node,
                moved=outcome.moved_count,
                elapsed=outcome.elapsed,
            )
        if strict and outcome.aborted:
            names = ", ".join(o.name for o in outcome.aborted)
            raise MigrationAbortedError(
                f"migration to node {target_node} aborted for {names}"
            )
        return outcome
