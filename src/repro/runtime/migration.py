"""Migration mechanics: linearize, transfer, reinstall.

The mechanism (not the policy — §2.2 insists on that separation): a
migration takes an object off its node, spends the transfer duration M
(Table 1: fixed, per object; conceptually it scales with object size),
and reinstalls the object at the target, waking every call that blocked
on it meanwhile.

A *set* migration (the transitive attachment closure of §3.4) transfers
its members in parallel: the elapsed time is the slowest member's M,
but every member is individually unavailable for its own transfer
window, which is what makes dragging a large working set so costly for
everyone else.

Objects that are already at the target are not transferred ("moving" an
object to where it is costs nothing).  Objects in transit are waited
for, then transferred — this is how a conventional move "steals" an
object that is already moving elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Iterable, List, Optional

from repro.errors import ObjectFixedError
from repro.runtime.locator import Locator
from repro.runtime.messages import MessageKind
from repro.runtime.objects import DistributedObject
from repro.runtime.registry import ObjectRegistry
from repro.sim.kernel import Environment
from repro.sim.trace import NULL_TRACER, Tracer


@dataclass
class MigrationOutcome:
    """Result of one (possibly multi-object) migration operation.

    Attributes
    ----------
    target_node:
        Where the objects were sent.
    moved:
        Objects actually transferred.
    already_there:
        Objects that were resident at the target already.
    elapsed:
        Wall-clock duration of the whole operation (includes waiting
        for in-transit members).
    transfer_time:
        Sum of the individual transfer durations (the network work).
    """

    target_node: int
    moved: List[DistributedObject] = field(default_factory=list)
    already_there: List[DistributedObject] = field(default_factory=list)
    elapsed: float = 0.0
    transfer_time: float = 0.0

    @property
    def moved_count(self) -> int:
        """Number of objects actually transferred."""
        return len(self.moved)


class MigrationService:
    """Executes migrations against the registry and the clock.

    Parameters
    ----------
    env, registry:
        Simulation environment and authoritative registry.
    default_duration:
        The paper's M: transfer time for a size-1 object.
    locator:
        Optional locator to notify of moves (forwarding addresses).
    tracer:
        Trace sink.
    """

    def __init__(
        self,
        env: Environment,
        registry: ObjectRegistry,
        default_duration: float = 6.0,
        locator: Optional[Locator] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if default_duration < 0:
            raise ValueError(
                f"default_duration must be >= 0, got {default_duration}"
            )
        self.env = env
        self.registry = registry
        self.default_duration = default_duration
        self.locator = locator
        self.tracer = tracer
        #: Total number of object transfers performed.
        self.migration_count = 0
        #: Total transfer time spent (sum of per-object durations).
        self.total_transfer_time = 0.0

    def duration_for(self, obj: DistributedObject) -> float:
        """Transfer time for one object (M scaled by object size)."""
        return self.default_duration * obj.size

    def _transfer_one(
        self, obj: DistributedObject, target_node: int, extra_time: float = 0.0
    ) -> Generator:
        """Move a single object; returns ``(moved, transfer_time)``."""
        # Wait out any in-flight migration of this object: the request
        # queues at the runtime and executes on reinstallation.
        while obj.in_transit:
            yield obj.reinstalled.wait()

        if obj.fixed:
            raise ObjectFixedError(f"{obj.name} is fixed and cannot migrate")

        if obj.node_id == target_node:
            return (False, 0.0)

        origin = obj.node_id
        duration = self.duration_for(obj) + extra_time
        self.registry.depart(obj)
        obj.begin_transit()
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "migration.start",
                object_id=obj.object_id,
                src=origin,
                dst=target_node,
                duration=duration,
            )
        if duration > 0:
            yield self.env.timeout(duration)
        obj.install(target_node)
        self.registry.arrive(obj, target_node)
        if self.locator is not None:
            self.locator.note_migration(obj, target_node)
        self.migration_count += 1
        self.total_transfer_time += duration
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "migration.done",
                object_id=obj.object_id,
                src=origin,
                dst=target_node,
            )
        return (True, duration)

    def migrate(
        self,
        objects: Iterable[DistributedObject],
        target_node: int,
        extra_time: float = 0.0,
    ) -> Generator:
        """Process fragment migrating ``objects`` to ``target_node``.

        Transfers run in parallel; the fragment completes when the last
        member is installed.  Returns a :class:`MigrationOutcome`.

        ``extra_time`` is added to every member's transfer duration —
        this is how §3.3's bookkeeping payload ("the size of data that
        has to be transferred when migrating an object increases") is
        charged when a dynamic policy opts into overhead accounting.
        """
        if extra_time < 0:
            raise ValueError(f"extra_time must be >= 0, got {extra_time}")
        self.registry.node(target_node)  # validate target exists
        objects = list(objects)
        outcome = MigrationOutcome(target_node=target_node)
        start = self.env.now

        movers = []
        for obj in objects:
            if not obj.in_transit and obj.node_id == target_node:
                outcome.already_there.append(obj)
                continue
            movers.append(obj)

        if movers:
            procs = [
                self.env.process(
                    self._transfer_one(obj, target_node, extra_time),
                    name=f"transfer-{obj.name}",
                )
                for obj in movers
            ]
            yield self.env.all_of(procs)
            for obj, proc in zip(movers, procs):
                moved, transfer = proc.value
                if moved:
                    outcome.moved.append(obj)
                    outcome.transfer_time += transfer
                else:
                    # It was in transit towards (or already reached) the
                    # target when we caught up with it.
                    outcome.already_there.append(obj)

        outcome.elapsed = self.env.now - start
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                MessageKind.OBJECT_TRANSFER.value,
                target=target_node,
                moved=outcome.moved_count,
                elapsed=outcome.elapsed,
            )
        return outcome
