"""Object registry: id → object map plus node residency bookkeeping.

The registry is the model's (idealized) location service: it always
knows where every object is.  How expensive it is for *callers* to learn
a location is decided by the pluggable locator (:mod:`repro.runtime.
locator`); the paper's default normalizes that cost away (§4.1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import UnknownNodeError, UnknownObjectError
from repro.runtime.node import Node
from repro.runtime.objects import DistributedObject


class ObjectRegistry:
    """Authoritative map of objects and their locations."""

    def __init__(self):
        self._objects: Dict[int, DistributedObject] = {}
        self._nodes: Dict[int, Node] = {}

    # -- nodes ------------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node (ids must be unique)."""
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node with id {node_id}") from None

    @property
    def nodes(self) -> List[Node]:
        """All registered nodes, by id."""
        return [self._nodes[k] for k in sorted(self._nodes)]

    # -- objects ----------------------------------------------------------------

    def add_object(self, obj: DistributedObject) -> None:
        """Register an object and record its initial residency."""
        if obj.object_id in self._objects:
            raise ValueError(f"duplicate object id {obj.object_id}")
        node = self.node(obj.node_id)  # validates the node exists
        self._objects[obj.object_id] = obj
        node.resident_ids.add(obj.object_id)

    def get(self, object_id: int) -> DistributedObject:
        """Look up an object by id."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise UnknownObjectError(f"no object with id {object_id}") from None

    @property
    def objects(self) -> List[DistributedObject]:
        """All registered objects, by id."""
        return [self._objects[k] for k in sorted(self._objects)]

    def location_of(self, object_id: int) -> int:
        """The ``location_of()`` primitive of §2.2 (authoritative)."""
        return self.get(object_id).node_id

    def objects_at(self, node_id: int) -> List[DistributedObject]:
        """Objects currently resident on a node."""
        node = self.node(node_id)
        return [self._objects[oid] for oid in sorted(node.resident_ids)]

    # -- residency maintenance -----------------------------------------------------

    def depart(self, obj: DistributedObject) -> None:
        """Remove the object from its node's resident set (transit start)."""
        self.node(obj.node_id).resident_ids.discard(obj.object_id)

    def arrive(self, obj: DistributedObject, node_id: int) -> None:
        """Record the object's arrival on its new node."""
        self.node(node_id).resident_ids.add(obj.object_id)

    def check_consistency(self) -> None:
        """Assert the invariant: node residency sets mirror object state.

        Every resident object appears in exactly its own node's set;
        objects in transit appear in no set.  Raises ``AssertionError``
        on violation — used heavily by the property tests.
        """
        for obj in self._objects.values():
            for node in self._nodes.values():
                present = obj.object_id in node.resident_ids
                should_be = (
                    not obj.in_transit and node.node_id == obj.node_id
                )
                assert present == should_be, (
                    f"{obj!r}: residency mismatch on {node!r} "
                    f"(present={present}, expected={should_be})"
                )

    def __repr__(self) -> str:
        return (
            f"<ObjectRegistry nodes={len(self._nodes)} "
            f"objects={len(self._objects)}>"
        )
