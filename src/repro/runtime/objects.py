"""Distributed objects: the mobile entities of the model.

An object encapsulates state and interacts only via invocations, which
is exactly what makes it movable (§2.1/§2.2).  The model distinguishes
*clients* (sedentary by construction — "there is no point in migrating
them", §4.1) from *servers* (the movable, shared service providers).

Mobility state machine::

    RESIDENT --begin_transit()--> IN_TRANSIT --install(node)--> RESIDENT

While IN_TRANSIT the object "can not perform any operation until it is
reinstalled at the target node" (§4.1): invocations and move requests
park on :attr:`DistributedObject.reinstalled` until installation.
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Optional

from repro.errors import MigrationInProgressError
from repro.sim.kernel import Environment
from repro.sim.resources import Waiters

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.moveblock import MoveBlock


class ObjectKind(Enum):
    """Role of an object in the client–server model of §4.1."""

    CLIENT = "client"
    SERVER = "server"


class MobilityState(Enum):
    """Whether the object is installed somewhere or on the wire."""

    RESIDENT = "resident"
    IN_TRANSIT = "in_transit"


class DistributedObject:
    """One object of the distributed application.

    Parameters
    ----------
    env:
        Simulation environment (needed for the reinstall condition).
    object_id:
        Unique id within the system.
    node_id:
        Initial location.
    kind:
        Client or server.
    name:
        Human-readable label (defaults to ``kind-id``).
    fixed:
        When true the object may never migrate (the ``fix()`` type
        attribute of §2.2).  Clients are created fixed.
    size:
        Abstract size; migration duration may scale with it (the paper
        keeps M fixed, so the default workloads use size 1).
    version:
        Schema/configuration version tag of the object's state.  The
        paper migrates objects in *space*; :mod:`repro.versioning`
        migrates them in *version* — this tag is what a staged deploy
        flips (atomically per object) and what the content hashes of
        :mod:`repro.versioning.diff` cover.
    """

    __slots__ = (
        "env",
        "object_id",
        "name",
        "kind",
        "fixed",
        "size",
        "version",
        "_node_id",
        "_state",
        "reinstalled",
        "lock_holder",
        "migration_count",
        "invocation_count",
        "_transit_started",
        "transit_time",
    )

    def __init__(
        self,
        env: Environment,
        object_id: int,
        node_id: int,
        kind: ObjectKind = ObjectKind.SERVER,
        name: str = "",
        fixed: bool = False,
        size: float = 1.0,
        version: str = "v0",
    ):
        if size <= 0:
            raise ValueError(f"size must be positive, got {size}")
        self.env = env
        self.object_id = object_id
        self.name = name or f"{kind.value}-{object_id}"
        self.kind = kind
        self.fixed = fixed
        self.size = size
        self.version = version
        self._node_id = node_id
        self._state = MobilityState.RESIDENT
        #: Broadcast condition released every time the object is
        #: (re)installed; blocked calls and moves wait on it.
        self.reinstalled = Waiters(env)
        #: The move-block currently holding this object under the
        #: place-policy (None when unlocked).  See §3.2.
        self.lock_holder: Optional["MoveBlock"] = None
        # Lifetime accounting.
        self.migration_count = 0
        self.invocation_count = 0
        self._transit_started = 0.0
        self.transit_time = 0.0

    # -- location -------------------------------------------------------------

    @property
    def node_id(self) -> int:
        """Current (or, while in transit, destination-pending) node."""
        return self._node_id

    @property
    def state(self) -> MobilityState:
        """Mobility state."""
        return self._state

    @property
    def in_transit(self) -> bool:
        """True while the object is linearized on the wire."""
        return self._state is MobilityState.IN_TRANSIT

    @property
    def is_locked(self) -> bool:
        """True while a move-block holds the place-policy lock."""
        return self.lock_holder is not None

    def is_resident_on(self, node_id: int) -> bool:
        """The ``is_resident()`` primitive of §2.2."""
        return self._state is MobilityState.RESIDENT and self._node_id == node_id

    # -- mobility transitions ---------------------------------------------------

    def begin_transit(self) -> None:
        """Linearize the object and take it off its node.

        Only the migration service calls this.  The object keeps its
        old ``node_id`` until installation so in-flight bookkeeping can
        still attribute it somewhere, but ``in_transit`` is now true.
        """
        if self._state is MobilityState.IN_TRANSIT:
            raise MigrationInProgressError(
                f"{self.name} is already in transit"
            )
        self._state = MobilityState.IN_TRANSIT
        self._transit_started = self.env.now

    def install(self, node_id: int) -> None:
        """Reinstall the object at ``node_id`` and wake blocked callers."""
        if self._state is not MobilityState.IN_TRANSIT:
            raise MigrationInProgressError(
                f"{self.name} is not in transit; cannot install"
            )
        self._state = MobilityState.RESIDENT
        self._node_id = node_id
        self.migration_count += 1
        self.transit_time += self.env.now - self._transit_started
        self.reinstalled.notify_all(node_id)

    def __repr__(self) -> str:
        state = "transit" if self.in_transit else f"@{self._node_id}"
        lock = f" locked-by={self.lock_holder}" if self.lock_holder else ""
        return f"<{self.kind.value.capitalize()} {self.name} {state}{lock}>"

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributedObject):
            return NotImplemented
        return self.object_id == other.object_id
