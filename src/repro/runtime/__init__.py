"""Distributed object runtime substrate.

Nodes, mobile objects, proxy-style invocation forwarding, and the
linearize–transfer–reinstall migration mechanism (§3.1's system model).
"""

from repro.runtime.clock import Clock, SimClock, WallClock
from repro.runtime.failure import FailureDetector, HeartbeatHistory
from repro.runtime.invocation import InvocationResult, InvocationService
from repro.runtime.locator import (
    LOCATORS,
    BroadcastLocator,
    ForwardingLocator,
    ImmediateUpdateLocator,
    Locator,
    NameServerLocator,
    make_locator,
)
from repro.runtime.messages import Message, MessageKind
from repro.runtime.migration import MigrationOutcome, MigrationService
from repro.runtime.node import Node
from repro.runtime.objects import DistributedObject, MobilityState, ObjectKind
from repro.runtime.registry import ObjectRegistry
from repro.runtime.retry import RandomJitter, RetryPolicy
from repro.runtime.system import DistributedSystem
from repro.runtime.transport import Transport

__all__ = [
    "BroadcastLocator",
    "Clock",
    "DistributedObject",
    "DistributedSystem",
    "FailureDetector",
    "ForwardingLocator",
    "HeartbeatHistory",
    "ImmediateUpdateLocator",
    "InvocationResult",
    "InvocationService",
    "LOCATORS",
    "Locator",
    "Message",
    "MessageKind",
    "MigrationOutcome",
    "MigrationService",
    "MobilityState",
    "Node",
    "ObjectKind",
    "ObjectRegistry",
    "RandomJitter",
    "RetryPolicy",
    "SimClock",
    "Transport",
    "WallClock",
    "make_locator",
]
