"""Distributed object runtime substrate.

Nodes, mobile objects, proxy-style invocation forwarding, and the
linearize–transfer–reinstall migration mechanism (§3.1's system model).
"""

from repro.runtime.failure import FailureDetector
from repro.runtime.invocation import InvocationResult, InvocationService
from repro.runtime.locator import (
    LOCATORS,
    BroadcastLocator,
    ForwardingLocator,
    ImmediateUpdateLocator,
    Locator,
    NameServerLocator,
    make_locator,
)
from repro.runtime.messages import Message, MessageKind
from repro.runtime.migration import MigrationOutcome, MigrationService
from repro.runtime.node import Node
from repro.runtime.objects import DistributedObject, MobilityState, ObjectKind
from repro.runtime.registry import ObjectRegistry
from repro.runtime.retry import RetryPolicy
from repro.runtime.system import DistributedSystem

__all__ = [
    "BroadcastLocator",
    "DistributedObject",
    "DistributedSystem",
    "FailureDetector",
    "ForwardingLocator",
    "ImmediateUpdateLocator",
    "InvocationResult",
    "InvocationService",
    "LOCATORS",
    "Locator",
    "Message",
    "MessageKind",
    "MigrationOutcome",
    "MigrationService",
    "MobilityState",
    "Node",
    "ObjectKind",
    "ObjectRegistry",
    "RetryPolicy",
    "make_locator",
]
