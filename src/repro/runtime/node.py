"""Nodes of the distributed system."""

from __future__ import annotations

from typing import Set


class Node:
    """One machine of the distributed system.

    Nodes are passive containers in the model: behaviour lives in
    objects (clients/servers) and in the runtime services.  A node
    tracks which objects currently reside on it, which the registry
    keeps consistent with each object's own location field.
    """

    __slots__ = ("node_id", "name", "resident_ids")

    def __init__(self, node_id: int, name: str = ""):
        if node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {node_id}")
        self.node_id = node_id
        self.name = name or f"node-{node_id}"
        #: Ids of objects currently installed on this node.
        self.resident_ids: Set[int] = set()

    @property
    def population(self) -> int:
        """Number of objects currently resident here."""
        return len(self.resident_ids)

    def __repr__(self) -> str:
        return f"<Node {self.name} objects={self.population}>"

    def __hash__(self) -> int:
        return hash(self.node_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Node):
            return NotImplemented
        return self.node_id == other.node_id
