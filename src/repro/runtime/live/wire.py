"""Wire vocabulary of the live backend: envelopes, kinds, dedup.

Every live message is one pickled :class:`Envelope`.  The envelope
carries the protocol-level message kind (the same vocabulary as the
sim's :class:`~repro.runtime.messages.MessageKind`, extended with the
control-plane kinds only a real deployment needs: heartbeats, fault
injection, drain, restart recovery), plus:

``msg_id``
    Globally unique ``(src_node, sequence)`` pair.  Reconnects resend
    unacknowledged envelopes, so the receiver deduplicates on this id —
    *idempotent redelivery* is what makes connection-level retry safe.
``reply_to``
    For responses: the ``msg_id`` of the request being answered, used
    by the sender to correlate its pending futures.
``trace``
    Optional ``(trace_id, parent_span_id)`` telemetry context.  A mover
    stamps its migration-root span context onto MOVE_REQUEST /
    OBJECT_TRANSFER / PLACE envelopes, and the arbiter forwards it on
    EVICT/RESTORE notices, so one live migration renders as a single
    cross-process span tree.  ``None`` (the default, and the
    NullTelemetry path) costs nothing on the wire beyond the field.

Payloads are plain picklable objects (dicts of primitives and, for
OBJECT_TRANSFER, the pickled object state itself).  Pickle is safe here
because every peer is a process *we* spawned on this machine — the
transport never listens on a routable interface by default.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, Optional, Set, Tuple

#: Control/data kinds of the live protocol.  String values keep frames
#: readable in dumps and decouple the wire from enum identity.
HEARTBEAT = "heartbeat"
LOCATE = "locate"
MOVE_REQUEST = "move.request"
OBJECT_TRANSFER = "object.transfer"
PLACE = "place"
ROLLBACK = "rollback"
END_REQUEST = "end.request"
INVOKE = "invoke"
BREAK_CRASHED = "break.crashed"
SET_FAULTS = "set.faults"
DRAIN = "drain"
SHUTDOWN = "shutdown"
REPLY = "reply"
EVICT = "evict"
SEED = "seed"
START = "start"
STATS = "stats"
INVENTORY = "inventory"
#: Settlement notice to a transfer's source: restore the held-back
#: copy.  Distinct from ROLLBACK (the *request* a mover sends to the
#: arbiter) because under home arbitration one worker plays both
#: roles and must tell the messages apart.
RESTORE = "restore"
#: Home arbitration (peer-granted leases) control kinds.
HOME_ASSIGN = "home.assign"  # supervisor -> worker: own these slices
HOME_MAP = "home.map"  # supervisor -> worker: slice -> home node map
HOME_STATE = "home.state"  # supervisor <- worker: authoritative placements
PLACE_NOTICE = "place.notice"  # home -> supervisor: mirror a commit to WAL
BREAK_HOMED = "break.homed"  # supervisor -> homes: a peer died, break it
SETTLE_HOMED = "settle.homed"  # supervisor -> worker: evict/restore lists
SETTLE = "settle"  # supervisor -> homes: drain-time transfer settlement

#: Node id of the supervisor on the live control plane.
SUPERVISOR = -1


@dataclass
class Envelope:
    """One live message: kind + addressing + dedup id + payload."""

    kind: str
    src: int
    dst: int
    msg_id: Tuple[int, int]
    payload: Dict[str, Any] = field(default_factory=dict)
    reply_to: Optional[Tuple[int, int]] = None
    trace: Optional[Tuple[int, int]] = None

    def encode(self) -> bytes:
        """Pickle this envelope for the wire."""
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def decode(blob: bytes) -> "Envelope":
        """Inverse of :meth:`encode`."""
        envelope = pickle.loads(blob)
        if not isinstance(envelope, Envelope):
            raise TypeError(
                f"frame decoded to {type(envelope).__name__}, not Envelope"
            )
        return envelope


#: Sequence-space width reserved per node incarnation: a restarted
#: worker starts minting above everything its predecessor could have
#: sent, so peers' dedup floors (which outlive the crash) never
#: suppress the new incarnation's messages as replays of the old one.
INCARNATION_SPAN = 1_000_000_000


class EnvelopeFactory:
    """Mints envelopes with monotonically increasing per-node msg ids."""

    __slots__ = ("node_id", "_seq")

    def __init__(self, node_id: int, incarnation: int = 0):
        if incarnation < 0:
            raise ValueError(f"incarnation must be >= 0, got {incarnation}")
        self.node_id = node_id
        self._seq = count(incarnation * INCARNATION_SPAN + 1)

    def make(
        self,
        kind: str,
        dst: int,
        payload: Optional[Dict[str, Any]] = None,
        reply_to: Optional[Tuple[int, int]] = None,
        trace: Optional[Tuple[int, int]] = None,
    ) -> Envelope:
        """Mint an envelope with the next id in this incarnation's band."""
        return Envelope(
            kind=kind,
            src=self.node_id,
            dst=dst,
            msg_id=(self.node_id, next(self._seq)),
            payload=payload or {},
            reply_to=reply_to,
            trace=trace,
        )


class DedupIndex:
    """Sliding-window duplicate detector keyed by envelope msg_id.

    A reconnecting sender may redeliver envelopes whose ack was lost
    with the connection; ``seen()`` answers whether an id was already
    processed so the handler runs at most once.  Per peer, the index
    remembers the highest contiguous sequence acknowledged plus a
    bounded window of out-of-order ids — O(window) memory per peer no
    matter how long the run.
    """

    __slots__ = ("window", "_floor", "_recent", "duplicates")

    def __init__(self, window: int = 4096):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        #: peer -> every sequence <= floor has been seen.
        self._floor: Dict[int, int] = {}
        #: peer -> out-of-order seen sequences above the floor.
        self._recent: Dict[int, Set[int]] = {}
        #: Total duplicates suppressed.
        self.duplicates = 0

    def seen(self, msg_id: Tuple[int, int]) -> bool:
        """Record ``msg_id``; True when it was already processed."""
        peer, seq = msg_id
        floor = self._floor.get(peer, 0)
        if seq <= floor:
            self.duplicates += 1
            return True
        recent = self._recent.setdefault(peer, set())
        if seq in recent:
            self.duplicates += 1
            return True
        recent.add(seq)
        # Advance the contiguous floor and trim the window.
        while floor + 1 in recent:
            floor += 1
            recent.discard(floor)
        self._floor[peer] = floor
        if len(recent) > self.window:
            # Pathological reordering: collapse the oldest ids into the
            # floor (may treat a genuinely-new very-old id as dup — the
            # safe direction for at-most-once handling).
            for stale in sorted(recent)[: len(recent) - self.window]:
                recent.discard(stale)
                self._floor[peer] = max(self._floor[peer], stale)
        return False

    def __repr__(self) -> str:
        return (
            f"<DedupIndex peers={len(self._floor)} "
            f"duplicates={self.duplicates}>"
        )


__all__ = [
    "BREAK_CRASHED",
    "BREAK_HOMED",
    "DRAIN",
    "DedupIndex",
    "END_REQUEST",
    "EVICT",
    "Envelope",
    "EnvelopeFactory",
    "HEARTBEAT",
    "HOME_ASSIGN",
    "HOME_MAP",
    "HOME_STATE",
    "INCARNATION_SPAN",
    "INVENTORY",
    "INVOKE",
    "LOCATE",
    "MOVE_REQUEST",
    "OBJECT_TRANSFER",
    "PLACE",
    "PLACE_NOTICE",
    "REPLY",
    "RESTORE",
    "ROLLBACK",
    "SEED",
    "SET_FAULTS",
    "SETTLE",
    "SETTLE_HOMED",
    "SHUTDOWN",
    "START",
    "STATS",
    "SUPERVISOR",
]
