"""Live runtime backend: the seam's wall-clock, real-socket side.

Everything under ``repro.runtime.live`` runs protocol code over real OS
processes: length-prefixed pickled envelopes on Unix/TCP sockets
(:mod:`~repro.runtime.live.framing`, :mod:`~repro.runtime.live.wire`),
a crash-tolerant asyncio transport with reconnect + idempotent dedup
(:mod:`~repro.runtime.live.transport`), per-node workers speaking the
same lock/lease protocol as the sim (:mod:`~repro.runtime.live.node`),
and a supervisor with heartbeat failure detection, crash restart, and
lease recovery (:mod:`~repro.runtime.live.supervisor`).

Imports here stay lazy-free and asyncio-only so the sim path never pays
for the live backend: nothing in ``repro.sim`` or ``repro.runtime``
core imports this package.
"""

from repro.runtime.live.framing import (
    DEFAULT_MAX_PAYLOAD,
    PREFIX_SIZE,
    FrameDecoder,
    encode_frame,
)
from repro.runtime.live.transport import (
    DEFAULT_CONNECT_RETRY,
    AsyncioTransport,
    FaultyTransport,
    unix_supported,
)
from repro.runtime.live.wire import (
    SUPERVISOR,
    DedupIndex,
    Envelope,
    EnvelopeFactory,
)

__all__ = [
    "AsyncioTransport",
    "DEFAULT_CONNECT_RETRY",
    "DEFAULT_MAX_PAYLOAD",
    "DedupIndex",
    "Envelope",
    "EnvelopeFactory",
    "FaultyTransport",
    "FrameDecoder",
    "PREFIX_SIZE",
    "SUPERVISOR",
    "encode_frame",
    "unix_supported",
]
