"""Crash-tolerant asyncio transport: real sockets, real failures.

:class:`AsyncioTransport` is the live backend of the
:class:`~repro.runtime.transport.Transport` seam.  One instance runs
inside each OS process (worker node or supervisor) and provides:

* a listening endpoint (Unix socket by default, TCP loopback where
  ``AF_UNIX`` is unavailable) accepting length-prefixed pickled
  :class:`~repro.runtime.live.wire.Envelope` frames;
* lazy outbound connections with **connection-level retry**: connect
  and send failures back off with jitter under the same
  :class:`~repro.runtime.retry.RetryPolicy` recipe the sim's
  invocation layer uses, and exhaust into
  :class:`~repro.errors.ConnectionLostError`;
* **idempotent redelivery**: a send that dies mid-frame is re-sent on
  the fresh connection with the *same* ``msg_id``; the receiver's
  :class:`~repro.runtime.live.wire.DedupIndex` suppresses the
  duplicate, so retry never double-executes a handler;
* **request/reply with wall-clock deadlines**: ``request()`` correlates
  a response future by msg id and raises the shared
  :class:`repro.errors.TimeoutError` when the deadline passes — the
  same ambiguity (lost? slow? dead?) the sim's retry layer models.

:class:`FaultyTransport` wraps a transport and injects the sim fault
vocabulary at the live layer — drops, fixed/jittered delays,
duplicates, and partitions — so the chaos campaigns' scenarios drive
real processes.  Control-plane traffic (anything to or from the
supervisor) always bypasses injected faults: chaos must break the data
plane, not the experiment harness.
"""

from __future__ import annotations

import asyncio
import random
import socket
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ConnectionLostError,
    FrameTooLargeError,
    TimeoutError,
    TransportClosedError,
    TransportError,
)
from repro.runtime.clock import Clock, WallClock
from repro.runtime.live.framing import (
    DEFAULT_MAX_PAYLOAD,
    FrameDecoder,
    encode_frame,
)
from repro.runtime.live.wire import (
    DedupIndex,
    Envelope,
    EnvelopeFactory,
    SUPERVISOR,
)
from repro.runtime.retry import RandomJitter, RetryPolicy
from repro.runtime.transport import Transport

#: Address forms: ("unix", path) or ("tcp", host, port).
Address = Tuple

#: Default connect/send retry recipe: quick, capped, jittered —
#: wall-clock seconds, not sim units.
DEFAULT_CONNECT_RETRY = RetryPolicy(
    max_attempts=5, timeout=2.0, base=0.05, cap=1.0, multiplier=2.0,
    jitter=0.5,
)


def unix_supported() -> bool:
    """Whether this platform offers AF_UNIX stream sockets."""
    return hasattr(socket, "AF_UNIX")


class AsyncioTransport(Transport):
    """Live message transport for one OS process.

    Parameters
    ----------
    node_id:
        This endpoint's id (:data:`~repro.runtime.live.wire.SUPERVISOR`
        for the control plane).
    listen:
        Address to accept peers on.
    peers:
        node id -> address of every endpoint (self included).
    clock:
        Wall clock used for deadlines and latency accounting.
    retry:
        Connect/send retry policy (wall-clock seconds).
    jitter_seed:
        Seed for the backoff jitter stream (reproducible reconnects).
    max_payload:
        Frame size bound, both directions.
    """

    def __init__(
        self,
        node_id: int,
        listen: Address,
        peers: Dict[int, Address],
        clock: Optional[Clock] = None,
        retry: RetryPolicy = DEFAULT_CONNECT_RETRY,
        jitter_seed: int = 0,
        max_payload: int = DEFAULT_MAX_PAYLOAD,
        incarnation: int = 0,
    ):
        self.node_id = node_id
        self.listen_addr = listen
        self.peers = dict(peers)
        self.clock = clock or WallClock()
        self.retry = retry
        self.max_payload = max_payload
        # Restarted nodes mint in a fresh sequence band so peers' dedup
        # floors from the previous incarnation don't swallow them.
        self.incarnation = incarnation
        self.factory = EnvelopeFactory(node_id, incarnation)
        self.dedup = DedupIndex()
        self._jitter = RandomJitter(jitter_seed)
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._write_locks: Dict[int, asyncio.Lock] = {}
        self._pending: Dict[Tuple[int, int], asyncio.Future] = {}
        self._reader_tasks: set = set()
        self._side_tasks: set = set()
        self._closed = False
        #: Async handler called for every non-reply inbound envelope.
        self.handler: Optional[Callable[[Envelope], Awaitable[None]]] = None
        #: Optional outbound fault filter (see :class:`FaultyTransport`).
        self.outbound_filter = None
        #: Optional envelope observer (the crash flight recorder): an
        #: object with ``on_send(envelope)`` / ``on_receive(envelope,
        #: duplicate)`` methods, called synchronously from the hot
        #: paths.  ``None`` (the default) costs one attribute read and
        #: a branch per frame — the same fast-path discipline as
        #: :class:`~repro.telemetry.NullTelemetry`.
        self.observer = None
        # The seam's shared accounting, plus live-only counters.
        self.remote_messages = 0
        self.local_messages = 0
        self.total_latency = 0.0
        self.dropped_messages = 0
        self.reconnects = 0
        self.frames_received = 0
        self.frames_sent = 0

    # -- seam contract --------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.peers)

    def transmit(self, src: int, dst: int, **kwargs):
        """Seam-named alias: a coroutine sending one data envelope."""
        if src != self.node_id:
            raise ValueError(
                f"live transport of node {self.node_id} cannot send as {src}"
            )
        kind = kwargs.pop("kind", "data")
        payload = kwargs.pop("payload", None)
        return self.send(dst, kind, payload)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Begin accepting peer connections on the listen address."""
        if self.listen_addr[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._serve_connection, path=self.listen_addr[1]
            )
        else:
            self._server = await asyncio.start_server(
                self._serve_connection,
                host=self.listen_addr[1],
                port=self.listen_addr[2],
            )

    async def close(self) -> None:
        """Stop serving, drop every connection, fail pending requests."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        for writer in self._writers.values():
            writer.close()
        self._writers.clear()
        for future in self._pending.values():
            if not future.done():
                future.set_exception(
                    TransportClosedError("transport closed with request pending")
                )
        self._pending.clear()
        for task in list(self._reader_tasks) + list(self._side_tasks):
            task.cancel()

    # -- inbound --------------------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._reader_tasks.add(task)
        decoder = FrameDecoder(self.max_payload)
        try:
            while True:
                chunk = await reader.read(65536)
                if not chunk:
                    break
                for blob in decoder.feed(chunk):
                    await self._dispatch(Envelope.decode(blob))
        except (FrameTooLargeError, ConnectionError, asyncio.IncompleteReadError):
            pass  # drop this connection; the peer will reconnect
        except asyncio.CancelledError:
            pass  # transport closing; exit the reader quietly
        except Exception:
            if not self._closed:
                raise
        finally:
            self._reader_tasks.discard(task)
            writer.close()

    async def _dispatch(self, envelope: Envelope) -> None:
        self.frames_received += 1
        duplicate = self.dedup.seen(envelope.msg_id)
        observer = self.observer
        if observer is not None:
            # Pre-dedup so the flight recorder shows redeliveries too.
            observer.on_receive(envelope, duplicate)
        if duplicate:
            return  # idempotent redelivery: already processed
        if envelope.reply_to is not None:
            future = self._pending.pop(envelope.reply_to, None)
            if future is not None and not future.done():
                future.set_result(envelope)
            return
        if self.handler is not None:
            # Handlers run as tasks so a slow handler (e.g. a drain
            # waiting for the workload) never blocks this connection's
            # read loop — replies the handler is itself waiting on may
            # arrive on the very same connection.
            self._spawn(self._run_handler(envelope))

    async def _run_handler(self, envelope: Envelope) -> None:
        try:
            await self.handler(envelope)
        except (TransportError, TimeoutError):
            pass  # peer vanished mid-handling; its retry will return

    # -- outbound -------------------------------------------------------------

    async def _connect(self, dst: int) -> asyncio.StreamWriter:
        writer = self._writers.get(dst)
        if writer is not None and not writer.is_closing():
            return writer
        address = self.peers[dst]
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt > 0:
                self.reconnects += 1
                await asyncio.sleep(
                    self.retry.backoff(attempt - 1, self._jitter)
                )
            if self._closed:
                raise TransportClosedError("transport closed during connect")
            try:
                if address[0] == "unix":
                    reader, writer = await asyncio.open_unix_connection(
                        path=address[1]
                    )
                else:
                    reader, writer = await asyncio.open_connection(
                        host=address[1], port=address[2]
                    )
                self._writers[dst] = writer
                self._write_locks.setdefault(dst, asyncio.Lock())
                return writer
            except (ConnectionError, OSError) as exc:
                last_error = exc
        raise ConnectionLostError(
            f"could not connect to node {dst} after "
            f"{self.retry.max_attempts} attempts: {last_error}",
            peer=dst,
        ) from last_error

    async def _raw_send(self, envelope: Envelope) -> None:
        """Frame + write one envelope, reconnecting on a dead pipe.

        Redelivery keeps the envelope's ``msg_id``, so a frame that
        actually arrived before the connection died is suppressed by
        the receiver's dedup index — at-most-once handling on top of
        at-least-one-delivery retries.
        """
        if self._closed:
            raise TransportClosedError(
                f"send of {envelope.kind!r} on closed transport"
            )
        dst = envelope.dst
        if dst == self.node_id:
            # Loopback: no wire, no frame — matches the sim's free
            # local messages.
            self.local_messages += 1
            await self._dispatch(envelope)
            return
        frame = encode_frame(envelope.encode(), self.max_payload)
        last_error: Optional[BaseException] = None
        for attempt in range(self.retry.max_attempts):
            if attempt > 0:
                await asyncio.sleep(
                    self.retry.backoff(attempt - 1, self._jitter)
                )
            try:
                writer = await self._connect(dst)
                lock = self._write_locks.setdefault(dst, asyncio.Lock())
                async with lock:
                    writer.write(frame)
                    await writer.drain()
                self.remote_messages += 1
                self.frames_sent += 1
                return
            except ConnectionLostError:
                raise
            except (ConnectionError, OSError) as exc:
                last_error = exc
                stale = self._writers.pop(dst, None)
                if stale is not None:
                    stale.close()
        raise ConnectionLostError(
            f"send of {envelope.kind!r} to node {dst} failed after "
            f"{self.retry.max_attempts} attempts: {last_error}",
            peer=dst,
        ) from last_error

    async def _send_envelope(self, envelope: Envelope) -> None:
        """Send one envelope through the fault filter, if installed."""
        observer = self.observer
        if observer is not None:
            observer.on_send(envelope)
        fault_filter = self.outbound_filter
        if fault_filter is None:
            await self._raw_send(envelope)
            return
        deliveries = fault_filter.plan(envelope)
        if not deliveries:
            self.dropped_messages += 1
            return
        for delay, copy_ in deliveries:
            if delay <= 0:
                await self._raw_send(copy_)
            else:
                self._spawn(self._delayed_send(delay, copy_))

    async def _delayed_send(self, delay: float, envelope: Envelope) -> None:
        await asyncio.sleep(delay)
        try:
            await self._raw_send(envelope)
        except (ConnectionLostError, TransportClosedError):
            pass  # a delayed copy racing shutdown is just a lost message

    def _spawn(self, coro) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._side_tasks.add(task)
        task.add_done_callback(self._side_tasks.discard)

    # -- public API -----------------------------------------------------------

    async def send(
        self,
        dst: int,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        trace: Optional[Tuple[int, int]] = None,
    ) -> Envelope:
        """Fire one envelope at ``dst``; returns the sent envelope."""
        envelope = self.factory.make(kind, dst, payload, trace=trace)
        await self._send_envelope(envelope)
        return envelope

    async def reply(
        self,
        request: Envelope,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Envelope:
        """Answer a request envelope (correlated via ``reply_to``).

        The request's trace context (if any) is echoed on the reply so
        flight-recorder dumps show both directions of an exchange under
        the same trace.
        """
        envelope = self.factory.make(
            "reply", request.src, payload, reply_to=request.msg_id,
            trace=request.trace,
        )
        await self._send_envelope(envelope)
        return envelope

    async def request(
        self,
        dst: int,
        kind: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: float = 5.0,
        trace: Optional[Tuple[int, int]] = None,
    ) -> Envelope:
        """Send and await the correlated reply under a deadline.

        Raises the shared :class:`repro.errors.TimeoutError` when the
        wall-clock deadline passes — the caller cannot distinguish a
        lost request from a lost reply from a slow peer, exactly the
        ambiguity the sim's retry layer models.
        """
        envelope = self.factory.make(kind, dst, payload, trace=trace)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[envelope.msg_id] = future
        started = self.clock.now()
        try:
            await self._send_envelope(envelope)
            reply = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"{kind!r} request to node {dst} timed out after "
                f"{timeout}s"
            ) from None
        finally:
            self._pending.pop(envelope.msg_id, None)
        self.total_latency += self.clock.now() - started
        return reply

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        base.update(
            reconnects=self.reconnects,
            frames_received=self.frames_received,
            frames_sent=self.frames_sent,
            duplicates_suppressed=self.dedup.duplicates,
        )
        return base

    def __repr__(self) -> str:
        return (
            f"<AsyncioTransport node={self.node_id} "
            f"peers={len(self.peers)} "
            f"msgs={self.remote_messages}r/{self.local_messages}l>"
        )


class FaultyTransport:
    """Live-layer fault injector: drops, delays, duplicates, partitions.

    Wraps an :class:`AsyncioTransport` by installing itself as the
    transport's outbound filter; the transport's own API is unchanged,
    so protocol code cannot tell whether its wire is clean or hostile —
    the same property the sim gets from
    :class:`~repro.network.faults.LinkFaultModel` inside
    ``Network.transmit``.

    All knobs apply to *data-plane* envelopes only: control traffic to
    or from the supervisor passes clean, so the harness can always
    reconfigure, drain, and collect results mid-chaos.
    """

    def __init__(self, transport: AsyncioTransport, seed: int = 0):
        self.transport = transport
        self._rng = random.Random(seed)
        self.drop_rate = 0.0
        self.duplicate_rate = 0.0
        #: (min, max) extra seconds per message; (0, 0) = no delay.
        self.delay_range: Tuple[float, float] = (0.0, 0.0)
        #: Groups of node ids; messages crossing group boundaries drop.
        self.partitions: List[frozenset] = []
        self.injected_drops = 0
        self.injected_duplicates = 0
        self.injected_delays = 0
        transport.outbound_filter = self

    # -- configuration (applied instantly, also via SET_FAULTS) ---------------

    def configure(
        self,
        drop_rate: Optional[float] = None,
        duplicate_rate: Optional[float] = None,
        delay_range: Optional[Tuple[float, float]] = None,
        partitions: Optional[List] = None,
    ) -> None:
        """Bulk-update knobs; ``None`` leaves a knob unchanged."""
        if drop_rate is not None:
            if not 0.0 <= drop_rate < 1.0:
                raise ValueError(f"drop_rate must be in [0,1), got {drop_rate}")
            self.drop_rate = drop_rate
        if duplicate_rate is not None:
            if not 0.0 <= duplicate_rate < 1.0:
                raise ValueError(
                    f"duplicate_rate must be in [0,1), got {duplicate_rate}"
                )
            self.duplicate_rate = duplicate_rate
        if delay_range is not None:
            low, high = delay_range
            if low < 0 or high < low:
                raise ValueError(f"bad delay_range {delay_range}")
            self.delay_range = (low, high)
        if partitions is not None:
            self.partitions = [frozenset(group) for group in partitions]

    def partition(self, *groups) -> None:
        """Split the data plane into isolated groups of node ids."""
        self.configure(partitions=list(groups))

    def heal(self) -> None:
        """Remove every partition (other knobs unchanged)."""
        self.partitions = []

    def snapshot(self) -> Dict[str, Any]:
        """Picklable config (for SET_FAULTS control messages)."""
        return {
            "drop_rate": self.drop_rate,
            "duplicate_rate": self.duplicate_rate,
            "delay_range": self.delay_range,
            "partitions": [sorted(g) for g in self.partitions],
        }

    def apply_snapshot(self, config: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`."""
        self.configure(
            drop_rate=config.get("drop_rate"),
            duplicate_rate=config.get("duplicate_rate"),
            delay_range=tuple(config["delay_range"])
            if config.get("delay_range") is not None
            else None,
            partitions=config.get("partitions"),
        )

    # -- the filter hook ------------------------------------------------------

    def _partitioned(self, src: int, dst: int) -> bool:
        if not self.partitions:
            return False
        for group in self.partitions:
            if src in group:
                return dst not in group
        # src in no group: cut off from every grouped node.
        return any(dst in group for group in self.partitions)

    def plan(self, envelope: Envelope) -> List[Tuple[float, Envelope]]:
        """Deliveries for one envelope: [] = dropped; may duplicate."""
        src, dst = envelope.src, envelope.dst
        if src == SUPERVISOR or dst == SUPERVISOR or src == dst:
            return [(0.0, envelope)]  # control plane / loopback: clean
        if self._partitioned(src, dst):
            self.injected_drops += 1
            return []
        if self.drop_rate > 0 and self._rng.random() < self.drop_rate:
            self.injected_drops += 1
            return []
        delay = 0.0
        low, high = self.delay_range
        if high > 0:
            delay = self._rng.uniform(low, high)
            if delay > 0:
                self.injected_delays += 1
        deliveries = [(delay, envelope)]
        if self.duplicate_rate > 0 and self._rng.random() < self.duplicate_rate:
            self.injected_duplicates += 1
            deliveries.append((delay, envelope))
        return deliveries

    def stats(self) -> Dict[str, int]:
        """Counters for every fault this filter has injected."""
        return {
            "injected_drops": self.injected_drops,
            "injected_duplicates": self.injected_duplicates,
            "injected_delays": self.injected_delays,
        }

    def __repr__(self) -> str:
        return (
            f"<FaultyTransport drop={self.drop_rate} "
            f"dup={self.duplicate_rate} delay={self.delay_range} "
            f"partitions={len(self.partitions)}>"
        )


__all__ = [
    "Address",
    "AsyncioTransport",
    "DEFAULT_CONNECT_RETRY",
    "FaultyTransport",
    "unix_supported",
]
