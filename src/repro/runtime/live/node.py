"""Live node worker: one OS process speaking the migration protocol.

A worker hosts a shard of mobile objects and runs the paper's
move-block loop against an *arbiter*:

1. ``MOVE_REQUEST`` to the arbiter — the place-policy decision (grant
   or "locked", §3.2) happens there, against the *real*
   :class:`~repro.core.locking.LockManager` running on a wall clock.
2. Granted: ``OBJECT_TRANSFER`` to the source worker over the data
   plane (the faultable path), carrying pickled object state back.
3. ``PLACE`` to the arbiter — the linearization point.  The arbiter
   fences by transfer id: exactly one of {placed at the destination,
   rolled back at the source} wins, so an ack lost to a partition can
   never duplicate an object.
4. Local invocations inside the block, then ``END_REQUEST`` releases
   the place-policy lock.

Who the arbiter *is* depends on the deployment's arbitration mode:

``central``
    The supervisor process grants every lock (PR 8's design, now
    journaled to the arbitration WAL so the arbiter itself may crash).

``home``
    The object space is partitioned into slices (``object_id %
    num_slices``) and each worker is *home node* for its slices,
    granting move-block leases for its own objects peer-to-peer — the
    supervisor is demoted to spawner / failure detector /
    home-reassigner.  A home node runs the same ``LockManager`` +
    transfer-fence machinery the supervisor runs centrally; commits
    are mirrored to the supervisor (``PLACE_NOTICE``) so the WAL keeps
    an ownership record to reassign slices from when a home dies.

Denied movers degrade to remote ``INVOKE`` at the object's current
location — §3.2's graceful degradation, now across real processes.
A transfer that times out (dropped frames, partition) aborts with
``ROLLBACK``: the source keeps its copy, the destination installs
nothing, the lock is released.  Crash-killed workers are restarted by
the supervisor and re-seeded; their in-flight blocks are reclaimed via
``break_crashed``.  Workers are spawned *non-daemon* so they survive a
supervisor SIGKILL; the heartbeat loop doubles as an orphan detector —
a worker whose heartbeats go unanswered for ``orphan_grace`` seconds
concludes the control plane is gone for good and exits.

The module-level :func:`worker_main` is the ``multiprocessing`` spawn
target — everything it needs arrives as picklable arguments.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import ConnectionLostError, TimeoutError, TransportClosedError
from repro.runtime.live.transport import AsyncioTransport, FaultyTransport
from repro.runtime.live.wal import TRANSFER_BAND, TransferLogEntry
from repro.runtime.live.wire import (
    BREAK_HOMED,
    DRAIN,
    END_REQUEST,
    EVICT,
    HEARTBEAT,
    HOME_ASSIGN,
    HOME_MAP,
    HOME_STATE,
    INVENTORY,
    INVOKE,
    MOVE_REQUEST,
    OBJECT_TRANSFER,
    PLACE,
    PLACE_NOTICE,
    RESTORE,
    ROLLBACK,
    SEED,
    SET_FAULTS,
    SETTLE,
    SETTLE_HOMED,
    SHUTDOWN,
    START,
    STATS,
    SUPERVISOR,
    Envelope,
)
from repro.telemetry.core import NULL_TELEMETRY, Telemetry, span_context
from repro.telemetry.live import (
    LATENCY_BUCKETS,
    FlightRecorder,
    ProcessTelemetryWriter,
    process_id_base,
)
from repro.telemetry.spans import ERROR

#: Bound on the per-worker migration-latency sample list shipped at
#: drain (a frame, not a stream — the histogram lives supervisor-side).
MAX_LATENCY_SAMPLES = 2000

#: Seconds between incremental telemetry flushes / flight snapshots.
TELEMETRY_FLUSH_INTERVAL = 0.5


class LiveObject:
    """A mobile object as a live worker hosts it.

    Duck-types the slots of
    :class:`~repro.runtime.objects.DistributedObject` that the lock
    manager and move-block machinery touch (``object_id``, ``name``,
    ``lock_holder``) and adds the transferable state: an opaque payload
    plus a version counter bumped by every invocation — the invariant
    checker uses versions to prove no invocation was applied to a
    stale duplicate.
    """

    __slots__ = ("object_id", "name", "payload", "version", "lock_holder")

    def __init__(self, object_id: int, payload: Any = None, version: int = 0):
        self.object_id = object_id
        self.name = f"obj-{object_id}"
        self.payload = payload
        self.version = version
        self.lock_holder = None

    def state(self) -> Dict[str, Any]:
        """Picklable transfer form."""
        return {
            "object_id": self.object_id,
            "payload": self.payload,
            "version": self.version,
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "LiveObject":
        return LiveObject(
            state["object_id"], state["payload"], state["version"]
        )

    def __repr__(self) -> str:
        return f"<LiveObject {self.name} v{self.version}>"


@dataclass
class WorkerStats:
    """Per-worker workload counters, shipped home at drain."""

    attempts: int = 0
    granted: int = 0
    migrations: int = 0
    denied: int = 0
    aborted: int = 0
    invocations: int = 0
    remote_invocations: int = 0
    moved_object_ids: List[int] = field(default_factory=list)
    #: Wall-clock seconds per completed migration (bounded sample).
    transfer_latencies: List[float] = field(default_factory=list)
    #: Grants/denials served while acting as a home node.
    home_grants: int = 0
    home_denials: int = 0

    def as_dict(self) -> Dict[str, Any]:
        """Picklable counter snapshot for the supervisor's report."""
        return {
            "attempts": self.attempts,
            "granted": self.granted,
            "migrations": self.migrations,
            "denied": self.denied,
            "aborted": self.aborted,
            "invocations": self.invocations,
            "remote_invocations": self.remote_invocations,
            "moved_object_ids": list(self.moved_object_ids),
            "transfer_latencies": list(self.transfer_latencies),
            "home_grants": self.home_grants,
            "home_denials": self.home_denials,
        }


class _PeerDown:
    """``health`` adapter naming one dead peer for ``break_crashed``."""

    def __init__(self, node_id: int):
        self.node_id = node_id

    def is_down(self, node_id: int) -> bool:
        return node_id == self.node_id


class LiveNodeWorker:
    """The asyncio application running inside one worker process."""

    def __init__(
        self,
        node_id: int,
        listen,
        peers: Dict[int, Tuple],
        seed_objects: List[Dict[str, Any]],
        heartbeat_interval: float = 0.1,
        request_timeout: float = 3.0,
        rng_seed: int = 0,
        incarnation: int = 0,
        arbitration: str = "central",
        num_slices: int = 0,
        lease_duration: float = 5.0,
        orphan_grace: float = 0.0,
        telemetry_dir: Optional[str] = None,
        flight_capacity: int = 512,
    ):
        self.node_id = node_id
        self.transport = AsyncioTransport(
            node_id,
            listen,
            peers,
            jitter_seed=rng_seed,
            incarnation=incarnation,
        )
        self.faults = FaultyTransport(self.transport, seed=rng_seed)
        # -- per-process telemetry (NullTelemetry fast path when off) --
        self.telemetry_dir = telemetry_dir
        if telemetry_dir:
            self.telemetry = Telemetry(
                id_base=process_id_base(node_id, incarnation)
            )
            self.telemetry.bind_clock(self.transport.clock)
            self._writer = ProcessTelemetryWriter(
                self.telemetry,
                telemetry_dir,
                node=node_id,
                incarnation=incarnation,
                role="worker",
                mono_origin=self.transport.clock.origin,
            )
            self.flight = FlightRecorder(
                node_id,
                capacity=flight_capacity,
                clock=self.transport.clock,
                incarnation=incarnation,
                path=FlightRecorder.path_for(
                    telemetry_dir, node_id, incarnation
                ),
            )
            self.transport.observer = self.flight
        else:
            self.telemetry = NULL_TELEMETRY
            self._writer = None
            self.flight = None
        self._drain_metrics_done = False
        self.objects: Dict[int, LiveObject] = {}
        for state in seed_objects:
            obj = LiveObject.from_state(state)
            self.objects[obj.object_id] = obj
        #: transfer_id -> object held back pending PLACE/ROLLBACK.
        self.in_transit: Dict[int, LiveObject] = {}
        self.heartbeat_interval = heartbeat_interval
        self.request_timeout = request_timeout
        self.orphan_grace = orphan_grace
        self.rng = random.Random(rng_seed)
        self.stats = WorkerStats()
        self._stopping = asyncio.Event()
        self._draining = asyncio.Event()
        self._workload_done = asyncio.Event()
        self._workload_done.set()  # no workload until START arrives
        self._workload_params: Dict[str, Any] = {}
        # -- home-node arbitration state (inert under central mode) --
        self.arbitration = arbitration
        self.num_slices = num_slices
        #: slice -> home node, as last broadcast by the supervisor.
        self.home_map: Dict[int, int] = {}
        #: Slices this worker is home for.
        self.home_slices: Set[int] = set()
        #: Authoritative placement for objects in our slices.
        self.home_placement: Dict[int, int] = {}
        #: Lockable stand-ins for our slice's objects (lock state only —
        #: the *hosted* object may live on any worker).
        self.home_records: Dict[int, LiveObject] = {}
        self.home_locks = LockManager(
            clock=self.transport.clock, lease_duration=lease_duration
        )
        self.home_blocks: Dict[int, MoveBlock] = {}
        self.home_transfers: Dict[int, TransferLogEntry] = {}
        self._home_seq = count(1)
        self._notices: Set = set()

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> None:
        """Serve the node until SHUTDOWN: transport, heartbeats, blocks."""
        self.transport.handler = self.handle
        await self.transport.start()
        if self.flight is not None:
            self.flight.record("state.up", pid=os.getpid())
            try:
                # Graceful-abnormal exit: dump the flight ring before
                # dying so a TERMed worker still leaves a post-mortem.
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGTERM, self._on_sigterm
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # platform without loop signal handlers
        heartbeats = asyncio.ensure_future(self._heartbeat_loop())
        await self._stopping.wait()
        heartbeats.cancel()
        self._dump_flight("exit")
        if self._writer is not None:
            self._writer.close()
        await self.transport.close()

    def _on_sigterm(self) -> None:
        if self.flight is not None:
            self.flight.record("state.sigterm")
        self._dump_flight("sigterm")
        if self._writer is not None:
            self._writer.flush()
        self._stopping.set()

    def _dump_flight(self, reason: str) -> None:
        """Persist the flight ring, recording a ``flight.dump`` span."""
        if self.flight is None:
            return
        telemetry = self.telemetry
        span = telemetry.start_span(
            "flight.dump",
            node=self.node_id,
            detached=True,
            reason=reason,
            entries=len(self.flight.entries()),
        )
        self.flight.dump(reason=reason)
        telemetry.end_span(span)

    async def _heartbeat_loop(self) -> None:
        clock = self.transport.clock
        last_ok = clock.now()
        last_flush = last_ok
        while not self._stopping.is_set():
            try:
                payload = {
                    "node": self.node_id,
                    "pid": os.getpid(),
                    "incarnation": self.transport.incarnation,
                }
                if self.telemetry.enabled:
                    # Handshake clock sample for supervisor-side
                    # cross-process timestamp alignment (ClockSync).
                    payload["clock"] = clock.now()
                await self.transport.send(SUPERVISOR, HEARTBEAT, payload)
                last_ok = clock.now()
            except (ConnectionLostError, TransportClosedError):
                # Supervisor briefly away (crashed and recovering):
                # keep beating — unless it has been gone so long we
                # must assume this process is orphaned for good.
                if (
                    self.orphan_grace > 0
                    and clock.now() - last_ok > self.orphan_grace
                ):
                    if self.flight is not None:
                        self.flight.record("state.orphaned")
                    self._stopping.set()
                    return
            if (
                self._writer is not None
                and clock.now() - last_flush >= TELEMETRY_FLUSH_INTERVAL
            ):
                last_flush = clock.now()
                self._writer.flush()
                self.flight.dump(reason="snapshot")
            await asyncio.sleep(self.heartbeat_interval)

    # -- inbound protocol -----------------------------------------------------

    async def handle(self, envelope: Envelope) -> None:
        """Dispatch one inbound message to its protocol serve."""
        kind = envelope.kind
        if kind == OBJECT_TRANSFER:
            await self._serve_transfer(envelope)
        elif kind == INVOKE:
            await self._serve_invoke(envelope)
        elif kind == EVICT:
            transfer_id = envelope.payload["transfer_id"]
            self.in_transit.pop(transfer_id, None)
            if self.telemetry.enabled:
                self.telemetry.end_span(
                    self.telemetry.start_span(
                        "live.evict",
                        node=self.node_id,
                        remote=envelope.trace,
                        detached=True,
                        transfer=transfer_id,
                    )
                )
            await self.transport.reply(envelope, {"ok": True})
        elif kind == RESTORE:
            transfer_id = envelope.payload["transfer_id"]
            obj = self.in_transit.pop(transfer_id, None)
            if obj is not None:
                self.objects[obj.object_id] = obj
            if self.telemetry.enabled:
                self.telemetry.end_span(
                    self.telemetry.start_span(
                        "live.restore",
                        node=self.node_id,
                        remote=envelope.trace,
                        detached=True,
                        transfer=transfer_id,
                        restored=obj is not None,
                    )
                )
            await self.transport.reply(envelope, {"ok": True})
        elif kind == MOVE_REQUEST:
            await self._serve_home_move(envelope)
        elif kind == PLACE:
            await self._serve_home_place(envelope)
        elif kind == ROLLBACK:
            await self._serve_home_rollback(envelope)
        elif kind == END_REQUEST:
            block = self.home_blocks.pop(envelope.payload["block_id"], None)
            released = (
                self.home_locks.release_block(block) if block else 0
            )
            await self.transport.reply(envelope, {"released": released})
        elif kind == HOME_ASSIGN:
            await self._serve_home_assign(envelope)
        elif kind == HOME_MAP:
            self.home_map = dict(envelope.payload["map"])
            self.num_slices = envelope.payload.get(
                "num_slices", self.num_slices
            )
            await self.transport.reply(envelope, {"ok": True})
        elif kind == HOME_STATE:
            await self.transport.reply(
                envelope,
                {
                    "slices": sorted(self.home_slices),
                    "placement": dict(self.home_placement),
                    "pending": [
                        t.transfer_id
                        for t in self.home_transfers.values()
                        if t.state == "pending"
                    ],
                },
            )
        elif kind == BREAK_HOMED:
            await self._serve_break_homed(envelope)
        elif kind == SETTLE_HOMED:
            for tid in envelope.payload.get("evict", ()):
                self.in_transit.pop(tid, None)
            for tid in envelope.payload.get("restore", ()):
                obj = self.in_transit.pop(tid, None)
                if obj is not None:
                    self.objects[obj.object_id] = obj
            await self.transport.reply(envelope, {"ok": True})
        elif kind == SETTLE:
            await self._serve_settle(envelope)
        elif kind == SEED:
            for state in envelope.payload["objects"]:
                obj = LiveObject.from_state(state)
                self.objects[obj.object_id] = obj
            if self.telemetry.enabled:
                self.telemetry.end_span(
                    self.telemetry.start_span(
                        "live.seed",
                        node=self.node_id,
                        remote=envelope.trace,
                        detached=True,
                        count=len(envelope.payload["objects"]),
                    )
                )
            await self.transport.reply(
                envelope, {"ok": True, "count": len(self.objects)}
            )
        elif kind == SET_FAULTS:
            self.faults.apply_snapshot(envelope.payload["config"])
            await self.transport.reply(envelope, {"ok": True})
        elif kind == START:
            self._workload_params = dict(envelope.payload)
            self._workload_done.clear()
            asyncio.ensure_future(self._workload())
            await self.transport.reply(envelope, {"ok": True})
        elif kind == STATS:
            await self.transport.reply(envelope, self.stats.as_dict())
        elif kind == DRAIN:
            await self._serve_drain(envelope)
        elif kind == INVENTORY:
            if self.telemetry.enabled:
                self.telemetry.end_span(
                    self.telemetry.start_span(
                        "live.inventory",
                        node=self.node_id,
                        remote=envelope.trace,
                        detached=True,
                        objects=len(self.objects),
                        in_transit=len(self.in_transit),
                    )
                )
            await self.transport.reply(
                envelope,
                {
                    "inventory": {
                        oid: obj.version
                        for oid, obj in sorted(self.objects.items())
                    },
                    "in_transit": sorted(self.in_transit),
                    "in_transit_objects": {
                        tid: obj.object_id
                        for tid, obj in sorted(self.in_transit.items())
                    },
                },
            )
        elif kind == SHUTDOWN:
            await self.transport.reply(envelope, {"ok": True})
            self._stopping.set()

    async def _serve_transfer(self, envelope: Envelope) -> None:
        """Source side of a migration: hand the state out, hold a copy.

        The copy stays in ``in_transit`` until the arbiter settles the
        transfer (EVICT on success, RESTORE on abort) — losing the
        reply on the way back must not lose the object.
        """
        object_id = envelope.payload["object_id"]
        transfer_id = envelope.payload["transfer_id"]
        obj = self.objects.pop(object_id, None)
        if self.telemetry.enabled:
            self.telemetry.end_span(
                self.telemetry.start_span(
                    "live.transfer.serve",
                    node=self.node_id,
                    remote=envelope.trace,
                    detached=True,
                    object=object_id,
                    transfer=transfer_id,
                    held=obj is not None,
                )
            )
        if obj is None:
            await self.transport.reply(envelope, {"state": None})
            return
        self.in_transit[transfer_id] = obj
        await self.transport.reply(envelope, {"state": obj.state()})

    async def _serve_invoke(self, envelope: Envelope) -> None:
        """Remote invocation: §3.2's degraded mode for denied movers."""
        obj = self.objects.get(envelope.payload["object_id"])
        if obj is None:
            await self.transport.reply(envelope, {"ok": False})
            return
        obj.version += 1
        await self.transport.reply(
            envelope, {"ok": True, "version": obj.version}
        )

    async def _serve_drain(self, envelope: Envelope) -> None:
        """Quiesce: finish the in-flight block, then report stats.

        The inventory snapshot is a separate INVENTORY request the
        supervisor issues only after *every* worker is quiesced and
        every transfer settled — snapshotting here would race the
        still-running movers on other nodes.
        """
        telemetry = self.telemetry
        span = None
        if telemetry.enabled:
            span = telemetry.start_span(
                "live.drain",
                node=self.node_id,
                remote=envelope.trace,
                detached=True,
            )
        if self.flight is not None:
            self.flight.record("state.draining")
        self._draining.set()
        await self._workload_done.wait()
        if telemetry.enabled and not self._drain_metrics_done:
            # Materialize workload counters exactly once — the
            # supervisor may retry DRAIN while quiescing.
            self._drain_metrics_done = True
            metrics = telemetry.metrics
            for name in (
                "attempts",
                "granted",
                "migrations",
                "denied",
                "aborted",
                "invocations",
                "remote_invocations",
            ):
                metrics.counter(f"live.worker.{name}").inc(
                    getattr(self.stats, name)
                )
        if span is not None:
            telemetry.end_span(span, migrations=self.stats.migrations)
        if self._writer is not None:
            self._writer.flush()
        await self.transport.reply(
            envelope,
            {
                "stats": self.stats.as_dict(),
                "transport": self.transport.stats(),
            },
        )

    # -- home-node arbitration: this worker as the §3.2 arbiter ---------------

    async def _serve_home_assign(self, envelope: Envelope) -> None:
        """Become home for the given slices with their placements."""
        for slice_id in envelope.payload["slices"]:
            self.home_slices.add(slice_id)
            self.home_map[slice_id] = self.node_id
        for oid, where in envelope.payload["placement"].items():
            self.home_placement[oid] = where
            if oid not in self.home_records:
                self.home_records[oid] = LiveObject(oid)
        await self.transport.reply(
            envelope, {"ok": True, "slices": sorted(self.home_slices)}
        )

    async def _serve_home_move(self, envelope: Envelope) -> None:
        """§3.2 at a peer home node: grant the lock or answer "locked"."""
        decision = self._home_move_decision(envelope)
        if self.telemetry.enabled:
            self.telemetry.end_span(
                self.telemetry.start_span(
                    "live.grant",
                    node=self.node_id,
                    remote=envelope.trace,
                    detached=True,
                    object=envelope.payload["object_id"],
                    granted=decision["granted"],
                )
            )
        await self.transport.reply(envelope, decision)

    def _home_move_decision(self, envelope: Envelope) -> Dict[str, Any]:
        """The grant-or-deny decision behind :meth:`_serve_home_move`."""
        object_id = envelope.payload["object_id"]
        mover = envelope.src
        in_slice = (
            self.num_slices > 0
            and object_id % self.num_slices in self.home_slices
        )
        if not in_slice or object_id not in self.home_placement:
            # Stale map at the mover (slice reassigned): not ours.
            return {
                "granted": False,
                "location": self.home_placement.get(object_id),
                "not_home": True,
            }
        record = self.home_records[object_id]
        if self.home_locks.is_locked(record):
            self.stats.home_denials += 1
            return {
                "granted": False,
                "location": self.home_placement[object_id],
            }
        block = MoveBlock(client_node=mover, target=record)
        try:
            self.home_locks.lock(record, block)
        except Exception:
            self.stats.home_denials += 1
            return {
                "granted": False,
                "location": self.home_placement[object_id],
            }
        self.stats.home_grants += 1
        self.home_blocks[block.block_id] = block
        source = self.home_placement[object_id]
        transfer_id = None
        if source != mover:
            # Band the id by home node: two homes can never mint the
            # same transfer id, and recovery can attribute any id to
            # the home that granted it.
            transfer_id = self.node_id * TRANSFER_BAND + next(self._home_seq)
            self.home_transfers[transfer_id] = TransferLogEntry(
                transfer_id=transfer_id,
                object_id=object_id,
                src=source,
                dst=mover,
                block_id=block.block_id,
            )
        return {
            "granted": True,
            "source": source,
            "block_id": block.block_id,
            "transfer_id": transfer_id,
        }

    async def _serve_home_place(self, envelope: Envelope) -> None:
        """The linearization point, at the home: commit or fence out."""
        transfer = self.home_transfers.get(envelope.payload["transfer_id"])
        ok = (
            transfer is not None
            and transfer.state == "pending"
            and transfer.dst == envelope.src
            and transfer.block_id in self.home_blocks
            and not self.home_locks.was_broken(
                self.home_blocks[transfer.block_id]
            )
        )
        if ok:
            transfer.state = "placed"
            self.home_placement[transfer.object_id] = transfer.dst
            self._notify(
                transfer.src,
                EVICT,
                {"transfer_id": transfer.transfer_id},
                trace=envelope.trace,
            )
            # Mirror the commit to the supervisor's WAL so a dead
            # home's slice can be reassigned from durable ownership
            # records.  Fire-and-forget: the supervisor may itself be
            # mid-recovery; a lost notice only widens the inventory
            # reconciliation it must do anyway.
            self._notify(
                SUPERVISOR,
                PLACE_NOTICE,
                {
                    "transfer_id": transfer.transfer_id,
                    "object_id": transfer.object_id,
                    "node": transfer.dst,
                },
                trace=envelope.trace,
            )
        if self.telemetry.enabled:
            self.telemetry.end_span(
                self.telemetry.start_span(
                    "live.place",
                    node=self.node_id,
                    remote=envelope.trace,
                    detached=True,
                    transfer=envelope.payload["transfer_id"],
                    ok=ok,
                )
            )
        await self.transport.reply(envelope, {"ok": ok})

    async def _serve_home_rollback(self, envelope: Envelope) -> None:
        """Abort a home-granted transfer; restore the source's copy."""
        transfer = self.home_transfers.get(envelope.payload["transfer_id"])
        ok = transfer is not None and transfer.state == "pending"
        if ok:
            transfer.state = "rolled_back"
            self._notify(
                transfer.src,
                RESTORE,
                {"transfer_id": transfer.transfer_id},
                trace=envelope.trace,
            )
        if self.telemetry.enabled:
            self.telemetry.end_span(
                self.telemetry.start_span(
                    "live.rollback",
                    node=self.node_id,
                    remote=envelope.trace,
                    detached=True,
                    transfer=envelope.payload["transfer_id"],
                    ok=ok,
                )
            )
        await self.transport.reply(envelope, {"ok": ok})

    async def _serve_break_homed(self, envelope: Envelope) -> None:
        """A peer died: break its leases, settle its transfers locally.

        Mirrors the central supervisor's ``_restart_inner`` lock
        recovery, but only for the state *this* home arbitrates.
        """
        dead = envelope.payload["node"]
        before = set(self.home_locks._broken)
        broken = self.home_locks.break_crashed(_PeerDown(dead))
        for block_id in self.home_locks._broken - before:
            self.home_blocks.pop(block_id, None)
        for transfer in self.home_transfers.values():
            if transfer.state != "pending":
                continue
            if transfer.dst == dead:
                transfer.state = "rolled_back"
                if transfer.src != dead:
                    self._notify(
                        transfer.src,
                        RESTORE,
                        {"transfer_id": transfer.transfer_id},
                    )
            elif transfer.src == dead:
                # Source died holding the held-back copy: state lost,
                # placement never moved — the supervisor re-seeds it.
                transfer.state = "failed"
        await self.transport.reply(envelope, {"broken": broken})

    async def _serve_settle(self, envelope: Envelope) -> None:
        """Drain-time settlement of everything this home arbitrates."""
        leaked = 0
        for transfer in self.home_transfers.values():
            if transfer.state == "pending":
                transfer.state = "rolled_back"
                self._notify(
                    transfer.src,
                    RESTORE,
                    {"transfer_id": transfer.transfer_id},
                )
        for block in list(self.home_blocks.values()):
            leaked += 1 if self.home_locks.release_block(block) else 0
        self.home_blocks.clear()
        deadline = self.transport.clock.deadline(self.request_timeout)
        while self._notices and not self.transport.clock.expired(deadline):
            await asyncio.sleep(0.02)
        lock_violations: List[str] = []
        try:
            self.home_locks.check_invariant()
        except AssertionError as exc:
            lock_violations.append(f"home {self.node_id}: {exc}")
        await self.transport.reply(
            envelope,
            {
                "leaked_blocks": leaked,
                "placement": dict(self.home_placement),
                "slices": sorted(self.home_slices),
                "lock_violations": lock_violations,
            },
        )

    def _notify(
        self,
        node: int,
        kind: str,
        payload: Dict[str, Any],
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Fire-and-forget settlement/mirror notice to a peer."""

        async def deliver():
            try:
                await self.transport.request(
                    node,
                    kind,
                    payload,
                    timeout=self.request_timeout,
                    trace=trace,
                )
            except Exception:
                pass  # dead peer: its state is re-seeded/reconciled anyway

        task = asyncio.ensure_future(deliver())
        self._notices.add(task)
        task.add_done_callback(self._notices.discard)

    # -- the workload: concurrent movers --------------------------------------

    def _arbiter_for(self, object_id: int) -> int:
        """Who grants moves for this object (mode-dependent)."""
        if self.arbitration == "home" and self.num_slices > 0:
            return self.home_map.get(
                object_id % self.num_slices, SUPERVISOR
            )
        return SUPERVISOR

    async def _workload(self) -> None:
        params = self._workload_params
        num_objects = params["num_objects"]
        think = params.get("think_time", 0.002)
        invokes = params.get("invocations_per_block", 3)
        try:
            while not self._draining.is_set() and not self._stopping.is_set():
                await self._move_block(
                    self.rng.randrange(num_objects), invokes
                )
                await asyncio.sleep(self.rng.uniform(0, 2 * think))
        finally:
            self._workload_done.set()

    async def _move_block(self, object_id: int, invokes: int) -> None:
        """One move-block: request, transfer, place, invoke, end.

        When telemetry is on, the whole block runs under a detached
        ``live.move`` root span whose context is stamped onto every
        envelope — the arbiter's grant and the source's transfer serve
        join it from their own processes, so one migration renders as
        a single cross-process trace.
        """
        self.stats.attempts += 1
        arbiter = self._arbiter_for(object_id)
        started = self.transport.clock.now()
        telemetry = self.telemetry
        span = None
        if telemetry.enabled:
            span = telemetry.start_span(
                "live.move",
                node=self.node_id,
                detached=True,
                object=object_id,
                arbiter=arbiter,
            )
        trace = span_context(span)
        try:
            grant = await self.transport.request(
                arbiter,
                MOVE_REQUEST,
                {"object_id": object_id},
                timeout=self.request_timeout,
                trace=trace,
            )
        except (TimeoutError, ConnectionLostError):
            self.stats.aborted += 1
            if span is not None:
                telemetry.end_span(
                    span, status=ERROR, outcome="grant_timeout"
                )
            return
        if not grant.payload["granted"]:
            # Locked by a concurrent mover: degrade to remote invocation.
            self.stats.denied += 1
            await self._invoke_remotely(
                object_id, grant.payload["location"], trace=trace
            )
            if span is not None:
                telemetry.end_span(span, outcome="denied")
            return
        self.stats.granted += 1
        block_id = grant.payload["block_id"]
        source = grant.payload["source"]
        transfer_id = grant.payload["transfer_id"]
        resident = source == self.node_id
        pulled = False
        if not resident:
            resident = pulled = await self._pull(
                arbiter, object_id, source, transfer_id, parent=span
            )
            if resident:
                self._record_latency(
                    self.transport.clock.now() - started
                )
        if resident:
            obj = self.objects.get(object_id)
            if obj is not None:
                for _ in range(invokes):
                    obj.version += 1
                    self.stats.invocations += 1
        try:
            await self.transport.request(
                arbiter,
                END_REQUEST,
                {"block_id": block_id},
                timeout=self.request_timeout,
                trace=trace,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # lease expiry / break_crashed reclaims the lock
        if span is not None:
            telemetry.end_span(
                span,
                outcome=(
                    "migrated"
                    if pulled
                    else ("resident" if resident else "aborted")
                ),
            )

    def _record_latency(self, seconds: float) -> None:
        if len(self.stats.transfer_latencies) < MAX_LATENCY_SAMPLES:
            self.stats.transfer_latencies.append(seconds)
        if self.telemetry.enabled:
            self.telemetry.metrics.histogram(
                "live.transfer.latency_s", buckets=LATENCY_BUCKETS
            ).observe(seconds)

    async def _pull(
        self,
        arbiter: int,
        object_id: int,
        source: int,
        transfer_id: int,
        parent=None,
    ) -> bool:
        """Transfer + place; aborts (with rollback) on any timeout."""
        telemetry = self.telemetry
        span = None
        if telemetry.enabled:
            span = telemetry.start_span(
                "live.transfer",
                node=self.node_id,
                parent=parent,
                detached=True,
                object=object_id,
                transfer=transfer_id,
                source=source,
            )
        trace = span_context(span)
        try:
            transfer = await self.transport.request(
                source,
                OBJECT_TRANSFER,
                {"object_id": object_id, "transfer_id": transfer_id},
                timeout=self.request_timeout,
                trace=trace,
            )
            state = transfer.payload["state"]
            if state is None:
                raise TimeoutError("source no longer holds the object")
            place = await self.transport.request(
                arbiter,
                PLACE,
                {"transfer_id": transfer_id},
                timeout=self.request_timeout,
                trace=trace,
            )
        except (TimeoutError, ConnectionLostError):
            self.stats.aborted += 1
            await self._rollback(arbiter, transfer_id, trace=trace)
            if span is not None:
                telemetry.end_span(span, status=ERROR, outcome="timeout")
            return False
        if not place.payload["ok"]:
            # Fenced out (arbiter saw us crash-suspected, or the
            # transfer was already rolled back): drop the state.
            self.stats.aborted += 1
            if span is not None:
                telemetry.end_span(span, status=ERROR, outcome="fenced")
            return False
        self.objects[object_id] = LiveObject.from_state(state)
        self.stats.migrations += 1
        self.stats.moved_object_ids.append(object_id)
        if span is not None:
            telemetry.end_span(span, outcome="placed")
        return True

    async def _rollback(
        self,
        arbiter: int,
        transfer_id: int,
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        try:
            await self.transport.request(
                arbiter,
                ROLLBACK,
                {"transfer_id": transfer_id},
                timeout=self.request_timeout,
                trace=trace,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # arbiter settles the transfer when it breaks us

    async def _invoke_remotely(
        self,
        object_id: int,
        location: Optional[int],
        trace: Optional[Tuple[int, int]] = None,
    ) -> None:
        if location is None:
            return
        if location == self.node_id:
            obj = self.objects.get(object_id)
            if obj is not None:
                obj.version += 1
                self.stats.remote_invocations += 1
            return
        try:
            reply = await self.transport.request(
                location,
                INVOKE,
                {"object_id": object_id},
                timeout=self.request_timeout,
                trace=trace,
            )
            if reply.payload["ok"]:
                self.stats.remote_invocations += 1
        except (TimeoutError, ConnectionLostError):
            pass  # degraded call lost to chaos: acceptable, not fatal


def worker_main(
    node_id: int,
    listen,
    peers: Dict[int, Tuple],
    seed_objects: List[Dict[str, Any]],
    heartbeat_interval: float,
    request_timeout: float,
    rng_seed: int,
    incarnation: int = 0,
    arbitration: str = "central",
    num_slices: int = 0,
    lease_duration: float = 5.0,
    orphan_grace: float = 0.0,
    telemetry_dir: Optional[str] = None,
) -> None:
    """``multiprocessing`` spawn target: run one worker to completion."""
    worker = LiveNodeWorker(
        node_id,
        listen,
        peers,
        seed_objects,
        heartbeat_interval=heartbeat_interval,
        request_timeout=request_timeout,
        rng_seed=rng_seed,
        incarnation=incarnation,
        arbitration=arbitration,
        num_slices=num_slices,
        lease_duration=lease_duration,
        orphan_grace=orphan_grace,
        telemetry_dir=telemetry_dir,
    )
    try:
        asyncio.run(worker.run())
    except BaseException:
        # Unhandled crash: leave a post-mortem before the process dies.
        if worker.flight is not None:
            worker.flight.record("state.crash")
            try:
                worker.flight.dump(reason="crash")
            except OSError:
                pass
        raise


__all__ = ["LiveNodeWorker", "LiveObject", "WorkerStats", "worker_main"]
