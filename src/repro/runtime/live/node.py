"""Live node worker: one OS process speaking the migration protocol.

A worker hosts a shard of mobile objects and runs the paper's
move-block loop against the supervisor arbiter:

1. ``MOVE_REQUEST`` to the supervisor — the place-policy decision
   (grant or "locked", §3.2) happens there, against the *real*
   :class:`~repro.core.locking.LockManager` running on a wall clock.
2. Granted: ``OBJECT_TRANSFER`` to the source worker over the data
   plane (the faultable path), carrying pickled object state back.
3. ``PLACE`` to the supervisor — the linearization point.  The
   supervisor fences by transfer id: exactly one of {placed at the
   destination, rolled back at the source} wins, so an ack lost to a
   partition can never duplicate an object.
4. Local invocations inside the block, then ``END_REQUEST`` releases
   the place-policy lock.

Denied movers degrade to remote ``INVOKE`` at the object's current
location — §3.2's graceful degradation, now across real processes.
A transfer that times out (dropped frames, partition) aborts with
``ROLLBACK``: the source keeps its copy, the destination installs
nothing, the lock is released.  Crash-killed workers are restarted by
the supervisor and re-seeded; their in-flight blocks are reclaimed via
``break_crashed``.

The module-level :func:`worker_main` is the ``multiprocessing`` spawn
target — everything it needs arrives as picklable arguments.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConnectionLostError, TimeoutError, TransportClosedError
from repro.runtime.live.transport import AsyncioTransport, FaultyTransport
from repro.runtime.live.wire import (
    DRAIN,
    END_REQUEST,
    EVICT,
    HEARTBEAT,
    INVENTORY,
    INVOKE,
    MOVE_REQUEST,
    OBJECT_TRANSFER,
    PLACE,
    ROLLBACK,
    SEED,
    SET_FAULTS,
    SHUTDOWN,
    START,
    STATS,
    SUPERVISOR,
    Envelope,
)


class LiveObject:
    """A mobile object as a live worker hosts it.

    Duck-types the slots of
    :class:`~repro.runtime.objects.DistributedObject` that the lock
    manager and move-block machinery touch (``object_id``, ``name``,
    ``lock_holder``) and adds the transferable state: an opaque payload
    plus a version counter bumped by every invocation — the invariant
    checker uses versions to prove no invocation was applied to a
    stale duplicate.
    """

    __slots__ = ("object_id", "name", "payload", "version", "lock_holder")

    def __init__(self, object_id: int, payload: Any = None, version: int = 0):
        self.object_id = object_id
        self.name = f"obj-{object_id}"
        self.payload = payload
        self.version = version
        self.lock_holder = None

    def state(self) -> Dict[str, Any]:
        """Picklable transfer form."""
        return {
            "object_id": self.object_id,
            "payload": self.payload,
            "version": self.version,
        }

    @staticmethod
    def from_state(state: Dict[str, Any]) -> "LiveObject":
        return LiveObject(
            state["object_id"], state["payload"], state["version"]
        )

    def __repr__(self) -> str:
        return f"<LiveObject {self.name} v{self.version}>"


@dataclass
class WorkerStats:
    """Per-worker workload counters, shipped home at drain."""

    attempts: int = 0
    granted: int = 0
    migrations: int = 0
    denied: int = 0
    aborted: int = 0
    invocations: int = 0
    remote_invocations: int = 0
    moved_object_ids: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """Picklable counter snapshot for the supervisor's report."""
        return {
            "attempts": self.attempts,
            "granted": self.granted,
            "migrations": self.migrations,
            "denied": self.denied,
            "aborted": self.aborted,
            "invocations": self.invocations,
            "remote_invocations": self.remote_invocations,
            "moved_object_ids": list(self.moved_object_ids),
        }


class LiveNodeWorker:
    """The asyncio application running inside one worker process."""

    def __init__(
        self,
        node_id: int,
        listen,
        peers: Dict[int, Tuple],
        seed_objects: List[Dict[str, Any]],
        heartbeat_interval: float = 0.1,
        request_timeout: float = 3.0,
        rng_seed: int = 0,
        incarnation: int = 0,
    ):
        self.node_id = node_id
        self.transport = AsyncioTransport(
            node_id,
            listen,
            peers,
            jitter_seed=rng_seed,
            incarnation=incarnation,
        )
        self.faults = FaultyTransport(self.transport, seed=rng_seed)
        self.objects: Dict[int, LiveObject] = {}
        for state in seed_objects:
            obj = LiveObject.from_state(state)
            self.objects[obj.object_id] = obj
        #: transfer_id -> object held back pending PLACE/ROLLBACK.
        self.in_transit: Dict[int, LiveObject] = {}
        self.heartbeat_interval = heartbeat_interval
        self.request_timeout = request_timeout
        self.rng = random.Random(rng_seed)
        self.stats = WorkerStats()
        self._stopping = asyncio.Event()
        self._draining = asyncio.Event()
        self._workload_done = asyncio.Event()
        self._workload_done.set()  # no workload until START arrives
        self._workload_params: Dict[str, Any] = {}

    # -- lifecycle ------------------------------------------------------------

    async def run(self) -> None:
        """Serve the node until SHUTDOWN: transport, heartbeats, blocks."""
        self.transport.handler = self.handle
        await self.transport.start()
        heartbeats = asyncio.ensure_future(self._heartbeat_loop())
        await self._stopping.wait()
        heartbeats.cancel()
        await self.transport.close()

    async def _heartbeat_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                await self.transport.send(
                    SUPERVISOR, HEARTBEAT, {"node": self.node_id}
                )
            except (ConnectionLostError, TransportClosedError):
                pass  # supervisor briefly away; keep beating
            await asyncio.sleep(self.heartbeat_interval)

    # -- inbound protocol -----------------------------------------------------

    async def handle(self, envelope: Envelope) -> None:
        """Dispatch one inbound message to its protocol serve."""
        kind = envelope.kind
        if kind == OBJECT_TRANSFER:
            await self._serve_transfer(envelope)
        elif kind == INVOKE:
            await self._serve_invoke(envelope)
        elif kind == EVICT:
            self.in_transit.pop(envelope.payload["transfer_id"], None)
            await self.transport.reply(envelope, {"ok": True})
        elif kind == ROLLBACK:
            obj = self.in_transit.pop(envelope.payload["transfer_id"], None)
            if obj is not None:
                self.objects[obj.object_id] = obj
            await self.transport.reply(envelope, {"ok": True})
        elif kind == SEED:
            for state in envelope.payload["objects"]:
                obj = LiveObject.from_state(state)
                self.objects[obj.object_id] = obj
            await self.transport.reply(
                envelope, {"ok": True, "count": len(self.objects)}
            )
        elif kind == SET_FAULTS:
            self.faults.apply_snapshot(envelope.payload["config"])
            await self.transport.reply(envelope, {"ok": True})
        elif kind == START:
            self._workload_params = dict(envelope.payload)
            self._workload_done.clear()
            asyncio.ensure_future(self._workload())
            await self.transport.reply(envelope, {"ok": True})
        elif kind == STATS:
            await self.transport.reply(envelope, self.stats.as_dict())
        elif kind == DRAIN:
            await self._serve_drain(envelope)
        elif kind == INVENTORY:
            await self.transport.reply(
                envelope,
                {
                    "inventory": {
                        oid: obj.version
                        for oid, obj in sorted(self.objects.items())
                    },
                    "in_transit": sorted(self.in_transit),
                },
            )
        elif kind == SHUTDOWN:
            await self.transport.reply(envelope, {"ok": True})
            self._stopping.set()

    async def _serve_transfer(self, envelope: Envelope) -> None:
        """Source side of a migration: hand the state out, hold a copy.

        The copy stays in ``in_transit`` until the supervisor settles
        the transfer (EVICT on success, ROLLBACK on abort) — losing the
        reply on the way back must not lose the object.
        """
        object_id = envelope.payload["object_id"]
        transfer_id = envelope.payload["transfer_id"]
        obj = self.objects.pop(object_id, None)
        if obj is None:
            await self.transport.reply(envelope, {"state": None})
            return
        self.in_transit[transfer_id] = obj
        await self.transport.reply(envelope, {"state": obj.state()})

    async def _serve_invoke(self, envelope: Envelope) -> None:
        """Remote invocation: §3.2's degraded mode for denied movers."""
        obj = self.objects.get(envelope.payload["object_id"])
        if obj is None:
            await self.transport.reply(envelope, {"ok": False})
            return
        obj.version += 1
        await self.transport.reply(
            envelope, {"ok": True, "version": obj.version}
        )

    async def _serve_drain(self, envelope: Envelope) -> None:
        """Quiesce: finish the in-flight block, then report stats.

        The inventory snapshot is a separate INVENTORY request the
        supervisor issues only after *every* worker is quiesced and
        every transfer settled — snapshotting here would race the
        still-running movers on other nodes.
        """
        self._draining.set()
        await self._workload_done.wait()
        await self.transport.reply(
            envelope, {"stats": self.stats.as_dict()}
        )

    # -- the workload: concurrent movers --------------------------------------

    async def _workload(self) -> None:
        params = self._workload_params
        num_objects = params["num_objects"]
        think = params.get("think_time", 0.002)
        invokes = params.get("invocations_per_block", 3)
        try:
            while not self._draining.is_set() and not self._stopping.is_set():
                await self._move_block(
                    self.rng.randrange(num_objects), invokes
                )
                await asyncio.sleep(self.rng.uniform(0, 2 * think))
        finally:
            self._workload_done.set()

    async def _move_block(self, object_id: int, invokes: int) -> None:
        """One move-block: request, transfer, place, invoke, end."""
        self.stats.attempts += 1
        try:
            grant = await self.transport.request(
                SUPERVISOR,
                MOVE_REQUEST,
                {"object_id": object_id},
                timeout=self.request_timeout,
            )
        except TimeoutError:
            self.stats.aborted += 1
            return
        if not grant.payload["granted"]:
            # Locked by a concurrent mover: degrade to remote invocation.
            self.stats.denied += 1
            await self._invoke_remotely(object_id, grant.payload["location"])
            return
        self.stats.granted += 1
        block_id = grant.payload["block_id"]
        source = grant.payload["source"]
        transfer_id = grant.payload["transfer_id"]
        resident = source == self.node_id
        if not resident:
            resident = await self._pull(object_id, source, transfer_id)
        if resident:
            obj = self.objects.get(object_id)
            if obj is not None:
                for _ in range(invokes):
                    obj.version += 1
                    self.stats.invocations += 1
        try:
            await self.transport.request(
                SUPERVISOR,
                END_REQUEST,
                {"block_id": block_id},
                timeout=self.request_timeout,
            )
        except TimeoutError:
            pass  # lease expiry / break_crashed reclaims the lock

    async def _pull(
        self, object_id: int, source: int, transfer_id: int
    ) -> bool:
        """Transfer + place; aborts (with rollback) on any timeout."""
        try:
            transfer = await self.transport.request(
                source,
                OBJECT_TRANSFER,
                {"object_id": object_id, "transfer_id": transfer_id},
                timeout=self.request_timeout,
            )
            state = transfer.payload["state"]
            if state is None:
                raise TimeoutError("source no longer holds the object")
            place = await self.transport.request(
                SUPERVISOR,
                PLACE,
                {"transfer_id": transfer_id},
                timeout=self.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            self.stats.aborted += 1
            await self._rollback(transfer_id)
            return False
        if not place.payload["ok"]:
            # Fenced out (supervisor saw us crash-suspected, or the
            # transfer was already rolled back): drop the state.
            self.stats.aborted += 1
            return False
        self.objects[object_id] = LiveObject.from_state(state)
        self.stats.migrations += 1
        self.stats.moved_object_ids.append(object_id)
        return True

    async def _rollback(self, transfer_id: int) -> None:
        try:
            await self.transport.request(
                SUPERVISOR,
                ROLLBACK,
                {"transfer_id": transfer_id},
                timeout=self.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # supervisor settles the transfer when it breaks us

    async def _invoke_remotely(self, object_id: int, location: int) -> None:
        if location == self.node_id:
            obj = self.objects.get(object_id)
            if obj is not None:
                obj.version += 1
                self.stats.remote_invocations += 1
            return
        try:
            reply = await self.transport.request(
                location,
                INVOKE,
                {"object_id": object_id},
                timeout=self.request_timeout,
            )
            if reply.payload["ok"]:
                self.stats.remote_invocations += 1
        except (TimeoutError, ConnectionLostError):
            pass  # degraded call lost to chaos: acceptable, not fatal


def worker_main(
    node_id: int,
    listen,
    peers: Dict[int, Tuple],
    seed_objects: List[Dict[str, Any]],
    heartbeat_interval: float,
    request_timeout: float,
    rng_seed: int,
    incarnation: int = 0,
) -> None:
    """``multiprocessing`` spawn target: run one worker to completion."""
    worker = LiveNodeWorker(
        node_id,
        listen,
        peers,
        seed_objects,
        heartbeat_interval=heartbeat_interval,
        request_timeout=request_timeout,
        rng_seed=rng_seed,
        incarnation=incarnation,
    )
    asyncio.run(worker.run())


__all__ = ["LiveNodeWorker", "LiveObject", "WorkerStats", "worker_main"]
