"""Arbitration write-ahead log: the control plane's durable memory.

PR 8 made the *workers* crash-tolerant; the supervisor itself was the
one process whose death the deployment could not survive — exactly the
monolithic weakness the paper argues against.  This module gives the
arbiter a recovery substrate: every arbitration state transition
(grant, PLACE-fence commit, rollback, lease break, incarnation bump,
home-slice assignment) is appended to an fsync'd, checksummed JSONL
log *before* the corresponding control message leaves the process.  A
restarted supervisor replays the log to rebuild its
:class:`~repro.core.locking.LockManager`, placement map and transfer
fences, then settles the in-doubt tail against live worker
inventories and resumes.

Format
------
One JSON object per line::

    {"seq": 17, "kind": "grant", "data": {...}, "crc": 2914207069}

``seq`` is a strictly increasing record number; ``crc`` is the CRC-32
of the canonical JSON encoding of ``[seq, kind, data]``.  A torn final
record (the classic crash-during-append) fails its checksum and is
*discarded*, never trusted; corruption anywhere before the tail means
the log cannot be trusted at all and raises
:class:`~repro.errors.WalCorruptionError`.

Replay is a pure fold: :class:`WalState` is a reducer over records,
idempotent by ``seq`` — applying any prefix twice yields the same
state, which is what makes "replay, then keep appending" safe and what
the hypothesis suite hammers on.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WalCorruptionError
from repro.telemetry.core import NULL_TELEMETRY, Telemetry

#: Record kinds.  String values keep the log greppable.
INIT = "init"  # initial placement / config, first record of a log
SUPER_START = "super.start"  # one per supervisor (re)incarnation
GRANT = "grant"  # move-block lock granted (maybe with a transfer)
END = "end"  # move-block released
PLACE = "place"  # transfer committed at the fence
ROLLBACK = "rollback"  # transfer aborted, source copy restored
REVERT = "revert"  # recovery undid a placed-but-not-delivered commit
FAILED = "failed"  # transfer's source died holding the copy
BREAK = "break"  # leases of a crashed node force-broken
INCARNATION = "incarnation"  # worker respawned with a new incarnation
HOME_ASSIGN = "home.assign"  # object-space slice assigned to a home node
PLACE_MIRROR = "place.mirror"  # home-granted commit mirrored for recovery

#: Transfer-id band width per home node (home arbitration mints
#: ``node_id * TRANSFER_BAND + seq`` so two homes never collide and
#: recovery can attribute an id to the home that minted it).
TRANSFER_BAND = 1_000_000


def _crc(seq: int, kind: str, data: Dict[str, Any]) -> int:
    canonical = json.dumps(
        [seq, kind, data], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(canonical.encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One decoded, checksum-verified log record."""

    seq: int
    kind: str
    data: Dict[str, Any]

    def encode(self) -> str:
        """The record's canonical JSONL line (checksummed)."""
        return json.dumps(
            {
                "seq": self.seq,
                "kind": self.kind,
                "data": self.data,
                "crc": _crc(self.seq, self.kind, self.data),
            },
            sort_keys=True,
            separators=(",", ":"),
        )


def decode_record(line: str) -> WalRecord:
    """Parse + checksum-verify one JSONL line.

    Raises ``ValueError`` on any defect (malformed JSON, missing
    fields, checksum mismatch) — the caller decides whether the defect
    is a tolerable torn tail or fatal mid-log corruption.
    """
    doc = json.loads(line)
    if not isinstance(doc, dict):
        raise ValueError("record is not an object")
    try:
        seq, kind, data, crc = doc["seq"], doc["kind"], doc["data"], doc["crc"]
    except KeyError as exc:
        raise ValueError(f"record missing field {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError("record data is not an object")
    if _crc(seq, kind, data) != crc:
        raise ValueError("checksum mismatch")
    return WalRecord(seq=int(seq), kind=str(kind), data=data)


def read_records(path: str) -> Tuple[List[WalRecord], int]:
    """Read every verifiable record; returns ``(records, truncated)``.

    ``truncated`` counts discarded torn-tail lines (0 or 1).  A bad
    record anywhere *before* the final line raises
    :class:`WalCorruptionError`: the fsync discipline guarantees only
    the very last append can be torn, so earlier damage means the file
    itself cannot be trusted.
    """
    if not os.path.exists(path):
        return [], 0
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line for line in fh.read().splitlines() if line.strip()]
    records: List[WalRecord] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            record = decode_record(line)
        except ValueError as exc:
            if lineno == len(lines):
                return records, 1  # torn final append: discard, carry on
            raise WalCorruptionError(
                f"unreadable WAL record ({exc})", path=path, line=lineno
            ) from exc
        if records and record.seq <= records[-1].seq:
            raise WalCorruptionError(
                f"non-monotonic seq {record.seq} after {records[-1].seq}",
                path=path,
                line=lineno,
            )
        records.append(record)
    return records, 0


class ArbitrationWal:
    """Append-only arbitration log bound to one file.

    ``append`` is synchronous and durable (``fsync`` unless the config
    opted out): by the time it returns, a post-crash replay will see
    the record.  That ordering — *log, then send* — is the whole
    recovery contract.
    """

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        self.path = path
        self.fsync = fsync
        self._fh = None
        self._seq = 0
        self.appended = 0
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_appended = metrics.counter("wal.records_appended")

    def open(self, start_seq: Optional[int] = None) -> None:
        """Open for appending; resume numbering after existing records.

        ``start_seq`` (the replayed state's ``last_seq``) skips the
        re-scan when the caller already replayed the file.
        """
        if self._fh is not None:
            return
        if start_seq is None:
            records, _ = read_records(self.path)
            start_seq = records[-1].seq if records else 0
        self._seq = start_seq
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, kind: str, data: Optional[Dict[str, Any]] = None) -> int:
        """Durably append one record; returns its ``seq``."""
        if self._fh is None:
            raise WalCorruptionError(
                "append on a closed WAL", path=self.path
            )
        self._seq += 1
        record = WalRecord(seq=self._seq, kind=kind, data=data or {})
        self._fh.write(record.encode() + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.appended += 1
        if self._telemetry_on:
            self._m_appended.inc()
        return record.seq

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "ArbitrationWal":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class TransferLogEntry:
    """A transfer as the log knows it (mirrors supervisor.Transfer)."""

    transfer_id: int
    object_id: int
    src: int
    dst: int
    block_id: int
    state: str = "pending"


@dataclass
class WalState:
    """Pure reducer over WAL records: the arbiter's recoverable state.

    ``apply`` is idempotent by ``seq`` — records at or below
    ``last_seq`` are skipped — so replaying any prefix again is a
    no-op.  Placement is a dict keyed by object id, which makes the
    "every object hosted exactly once" invariant structural: a commit
    *moves* the single entry, it can never fork it.
    """

    last_seq: int = 0
    num_objects: int = 0
    arbitration: str = "central"
    workers: List[int] = field(default_factory=list)
    #: object id -> hosting node (the recoverable authority).
    placement: Dict[int, int] = field(default_factory=dict)
    transfers: Dict[int, TransferLogEntry] = field(default_factory=dict)
    #: block id -> {"client_node", "object_id"} for open move-blocks.
    blocks: Dict[int, Dict[str, int]] = field(default_factory=dict)
    broken_blocks: List[int] = field(default_factory=list)
    incarnations: Dict[int, int] = field(default_factory=dict)
    #: slice index -> home node (home arbitration only).
    home: Dict[int, int] = field(default_factory=dict)
    num_slices: int = 0
    supervisor_starts: int = 0
    max_block_id: int = 0
    max_transfer_id: int = 0

    def apply(self, record: WalRecord) -> bool:
        """Fold one record in; False when skipped as already applied."""
        if record.seq <= self.last_seq:
            return False
        self.last_seq = record.seq
        kind, data = record.kind, record.data
        if kind == INIT:
            self.num_objects = data["num_objects"]
            self.arbitration = data.get("arbitration", "central")
            self.workers = [int(w) for w in data["workers"]]
            self.num_slices = data.get("num_slices", 0)
            self.placement = {
                int(oid): node for oid, node in data["placement"].items()
            }
            self.incarnations = {w: 0 for w in self.workers}
        elif kind == SUPER_START:
            self.supervisor_starts += 1
        elif kind == GRANT:
            block_id = data["block_id"]
            self.blocks[block_id] = {
                "client_node": data["mover"],
                "object_id": data["object_id"],
            }
            self.max_block_id = max(self.max_block_id, block_id)
            transfer_id = data.get("transfer_id")
            if transfer_id is not None:
                self.transfers[transfer_id] = TransferLogEntry(
                    transfer_id=transfer_id,
                    object_id=data["object_id"],
                    src=data["source"],
                    dst=data["mover"],
                    block_id=block_id,
                )
                self.max_transfer_id = max(
                    self.max_transfer_id, transfer_id
                )
        elif kind == END:
            self.blocks.pop(data["block_id"], None)
        elif kind == PLACE:
            transfer = self.transfers.get(data["transfer_id"])
            if transfer is not None:
                transfer.state = "placed"
                self.placement[transfer.object_id] = transfer.dst
        elif kind == ROLLBACK:
            transfer = self.transfers.get(data["transfer_id"])
            if transfer is not None:
                transfer.state = "rolled_back"
        elif kind == REVERT:
            transfer = self.transfers.get(data["transfer_id"])
            if transfer is not None:
                transfer.state = "rolled_back"
                self.placement[transfer.object_id] = transfer.src
        elif kind == FAILED:
            transfer = self.transfers.get(data["transfer_id"])
            if transfer is not None:
                transfer.state = "failed"
        elif kind == BREAK:
            for block_id in data["block_ids"]:
                if block_id not in self.broken_blocks:
                    self.broken_blocks.append(block_id)
                self.blocks.pop(block_id, None)
        elif kind == INCARNATION:
            self.incarnations[data["node"]] = data["incarnation"]
        elif kind == HOME_ASSIGN:
            for slice_id in data["slices"]:
                self.home[int(slice_id)] = data["node"]
        elif kind == PLACE_MIRROR:
            self.placement[data["object_id"]] = data["node"]
        # Unknown kinds are skipped (forward compatibility), but their
        # seq still advances last_seq above.
        return True

    def in_doubt(self) -> List[TransferLogEntry]:
        """Transfers the log left pending: the recovery worklist."""
        return [
            t for t in self.transfers.values() if t.state == "pending"
        ]

    def placed(self) -> List[TransferLogEntry]:
        """Transfers whose commit was logged (maybe never delivered)."""
        return [t for t in self.transfers.values() if t.state == "placed"]


def replay(
    path: str, telemetry: Telemetry = NULL_TELEMETRY
) -> Tuple[WalState, List[WalRecord]]:
    """Fold the whole log into a :class:`WalState`.

    Returns the state plus the verified records (callers wanting
    custom folds re-use them).  Torn tails are already discarded by
    :func:`read_records`.
    """
    records, truncated = read_records(path)
    state = WalState()
    for record in records:
        state.apply(record)
    if telemetry.enabled:
        metrics = telemetry.metrics
        metrics.counter("wal.records_replayed").inc(len(records))
        if truncated:
            metrics.counter("wal.truncated_records").inc(truncated)
    return state, records


__all__ = [
    "ArbitrationWal",
    "BREAK",
    "END",
    "FAILED",
    "GRANT",
    "HOME_ASSIGN",
    "INCARNATION",
    "INIT",
    "PLACE",
    "PLACE_MIRROR",
    "REVERT",
    "ROLLBACK",
    "SUPER_START",
    "TRANSFER_BAND",
    "TransferLogEntry",
    "WalRecord",
    "WalState",
    "decode_record",
    "read_records",
    "replay",
]
