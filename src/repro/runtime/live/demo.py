"""The ``repro-experiment live`` demo: sim-predicted vs. measured.

Runs the same concurrent-movers workload twice:

1. :func:`simulate_analog` — a discrete-event model of the deployment
   on the sim kernel: N mover processes contending for M objects under
   the same :class:`~repro.core.locking.LockManager`, with per-block
   hold times and think times matching the live configuration, and
   a transfer-loss probability matching the injected fault windows.
   Deterministic (seeded streams), instant, no sockets.
2. :class:`~repro.runtime.live.supervisor.NodeSupervisor` — the real
   thing: N OS processes, real sockets, one injected crash, one
   injected partition.

The report places the sim's predicted conflict/abort rates next to the
measured ones.  They will not match to the digit — the sim does not
model GIL scheduling or socket latency jitter — but they must land in
the same regime: that is the paper's claim that the simulated
place-policy contention predicts deployed behaviour.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.availability.livechaos import LiveChaosSchedule, demo_schedule
from repro.core.locking import LockManager
from repro.runtime.live.node import LiveObject
from repro.runtime.live.supervisor import NodeSupervisor, SupervisorConfig
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams


def simulate_analog(
    config: SupervisorConfig,
    transfer_loss: float = 0.0,
    sim_rounds: int = 2000,
) -> Dict[str, float]:
    """Predict conflict/abort rates for ``config`` on the sim kernel.

    ``transfer_loss`` is the probability a granted move's transfer
    phase fails (the live analog: a frame lost to drops or a partition
    window), aborting the block.  Rates are per move attempt, the same
    denominators the live report uses.
    """
    env = Environment()
    streams = RandomStreams(config.rng_seed)
    locks = LockManager(env=env, lease_duration=config.lease_duration)
    records = [LiveObject(oid) for oid in range(config.num_objects)]
    # One block's critical section ~ invocations + transfer round trips.
    hold_time = config.think_time * (1 + config.invocations_per_block)
    counters = {"attempts": 0, "denied": 0, "aborted": 0, "migrations": 0}
    rounds_per_node = max(1, sim_rounds // config.num_nodes)

    def mover(node_id: int):
        stream = streams.stream(f"live.mover.{node_id}")
        from repro.core.moveblock import MoveBlock

        for _ in range(rounds_per_node):
            record = records[int(stream.uniform() * config.num_objects)]
            counters["attempts"] += 1
            if locks.is_locked(record):
                counters["denied"] += 1
            else:
                block = MoveBlock(client_node=node_id, target=record)
                locks.lock(record, block)
                if transfer_loss > 0 and stream.uniform() < transfer_loss:
                    counters["aborted"] += 1
                else:
                    counters["migrations"] += 1
                yield env.sleep(hold_time)
                locks.release_block(block)
            yield env.sleep(stream.uniform() * 2 * config.think_time)

    for node in range(1, config.num_nodes + 1):
        env.process(mover(node), name=f"mover-{node}")
    env.run()
    attempts = max(1, counters["attempts"])
    return {
        "attempts": counters["attempts"],
        "migrations": counters["migrations"],
        "conflict_rate": counters["denied"] / attempts,
        "abort_rate": counters["aborted"] / attempts,
    }


def estimate_transfer_loss(
    config: SupervisorConfig, chaos: LiveChaosSchedule
) -> float:
    """Fraction of the run a granted transfer is expected to fail.

    Partitions cut roughly the cross-group share of transfers for
    their window; fault windows lose a transfer with their drop rate
    (a transfer needs its request *and* reply to survive).  Scaled by
    each window's share of the expected run duration.
    """
    horizon = max(config.max_duration, 1e-9)
    loss = 0.0
    for action in chaos.actions:
        duration = getattr(action, "duration", None)
        if duration is None:
            continue
        window_share = min(duration, horizon) / horizon
        if hasattr(action, "groups"):
            groups = action.groups
            total = sum(len(g) for g in groups) or 1
            cross = 1.0 - sum((len(g) / total) ** 2 for g in groups)
            loss += window_share * cross
        elif getattr(action, "drop_rate", 0.0) > 0:
            survive = (1.0 - action.drop_rate) ** 2
            loss += window_share * (1.0 - survive)
    return min(loss, 0.95)


def run_live_demo(
    config: Optional[SupervisorConfig] = None,
    chaos: Optional[LiveChaosSchedule] = None,
) -> Dict[str, Any]:
    """Run sim prediction + live deployment; return the joint report."""
    config = config or SupervisorConfig()
    if chaos is None:
        chaos = demo_schedule(config.num_nodes)
    predicted = simulate_analog(
        config, transfer_loss=estimate_transfer_loss(config, chaos)
    )
    supervisor = NodeSupervisor(config, chaos)
    measured = asyncio.run(supervisor.run())
    return {
        "config": {
            "num_nodes": config.num_nodes,
            "num_objects": config.num_objects,
            "target_migrations": config.target_migrations,
            "max_duration": config.max_duration,
            "lease_duration": config.lease_duration,
            "rng_seed": config.rng_seed,
        },
        "predicted": predicted,
        "measured": measured,
        "comparison": {
            "conflict_rate_predicted": predicted["conflict_rate"],
            "conflict_rate_measured": measured["conflict_rate"],
            "abort_rate_predicted": predicted["abort_rate"],
            "abort_rate_measured": measured["abort_rate"],
        },
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable sim-vs-measured table."""
    measured = report["measured"]
    comparison = report["comparison"]
    lines = [
        "live demo: sim-predicted vs. measured",
        "=" * 53,
        f"{'metric':<28}{'predicted':>12}{'measured':>12}",
        "-" * 53,
        (
            f"{'conflict rate':<28}"
            f"{comparison['conflict_rate_predicted']:>12.4f}"
            f"{comparison['conflict_rate_measured']:>12.4f}"
        ),
        (
            f"{'abort rate':<28}"
            f"{comparison['abort_rate_predicted']:>12.4f}"
            f"{comparison['abort_rate_measured']:>12.4f}"
        ),
        "-" * 53,
        f"workers (OS processes)      {measured['workers']:>12}",
        f"objects                     {measured['objects']:>12}",
        f"migrations                  {measured['migrations']:>12}",
        f"distinct objects moved      {measured['distinct_objects_moved']:>12}",
        f"crashes injected            {measured['crashes_injected']:>12}",
        f"partitions injected         {measured['partitions_injected']:>12}",
        f"restarts                    {measured['restarts']:>12}",
        f"leases broken               {measured['leases_broken']:>12}",
        f"invariant violations        "
        f"{len(measured['invariant_violations']):>12}",
    ]
    for violation in measured["invariant_violations"]:
        lines.append(f"  !! {violation}")
    return "\n".join(lines)


__all__ = [
    "estimate_transfer_loss",
    "format_report",
    "run_live_demo",
    "simulate_analog",
]
