"""The ``repro-experiment live`` demo: sim-predicted vs. measured.

Runs the same concurrent-movers workload twice:

1. :func:`simulate_analog` — a discrete-event model of the deployment
   on the sim kernel: N mover processes contending for M objects under
   the same :class:`~repro.core.locking.LockManager`, with per-block
   hold times and think times matching the live configuration, and
   a transfer-loss probability matching the injected fault windows.
   Deterministic (seeded streams), instant, no sockets.
2. :class:`~repro.runtime.live.supervisor.NodeSupervisor` — the real
   thing: N OS processes, real sockets, one injected crash, one
   injected partition.

The supervisor itself runs as a *child process* of this runner
(:func:`run_supervised`), which is what makes
:class:`~repro.availability.livechaos.KillSupervisor` survivable: when
the chaos schedule SIGKILLs the arbiter, the runner notices the child
died without reporting, respawns it in recovery mode (WAL replay +
in-doubt settlement against the orphaned workers' inventories) with
the already-consumed chaos prefix stripped, and the run continues.

The report places the sim's predicted conflict/abort rates next to the
measured ones.  They will not match to the digit — the sim does not
model GIL scheduling or socket latency jitter — but they must land in
the same regime: that is the paper's claim that the simulated
place-policy contention predicts deployed behaviour.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import queue as queue_module
import shutil
import tempfile
from typing import Any, Dict, Optional

from repro.availability.livechaos import LiveChaosSchedule, demo_schedule
from repro.core.locking import LockManager
from repro.errors import SupervisionError
from repro.runtime.live.node import LiveObject
from repro.runtime.live.supervisor import NodeSupervisor, SupervisorConfig
from repro.runtime.live.wire import SUPERVISOR
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.telemetry.core import Telemetry
from repro.telemetry.live import (
    TelemetryHub,
    clean_telemetry_dir,
    process_id_base,
)


def simulate_analog(
    config: SupervisorConfig,
    transfer_loss: float = 0.0,
    sim_rounds: int = 2000,
) -> Dict[str, float]:
    """Predict conflict/abort rates for ``config`` on the sim kernel.

    ``transfer_loss`` is the probability a granted move's transfer
    phase fails (the live analog: a frame lost to drops or a partition
    window), aborting the block.  Rates are per move attempt, the same
    denominators the live report uses.
    """
    env = Environment()
    streams = RandomStreams(config.rng_seed)
    locks = LockManager(env=env, lease_duration=config.lease_duration)
    records = [LiveObject(oid) for oid in range(config.num_objects)]
    # One block's critical section ~ invocations + transfer round trips.
    hold_time = config.think_time * (1 + config.invocations_per_block)
    counters = {"attempts": 0, "denied": 0, "aborted": 0, "migrations": 0}
    rounds_per_node = max(1, sim_rounds // config.num_nodes)

    def mover(node_id: int):
        stream = streams.stream(f"live.mover.{node_id}")
        from repro.core.moveblock import MoveBlock

        for _ in range(rounds_per_node):
            record = records[int(stream.uniform() * config.num_objects)]
            counters["attempts"] += 1
            if locks.is_locked(record):
                counters["denied"] += 1
            else:
                block = MoveBlock(client_node=node_id, target=record)
                locks.lock(record, block)
                if transfer_loss > 0 and stream.uniform() < transfer_loss:
                    counters["aborted"] += 1
                else:
                    counters["migrations"] += 1
                yield env.sleep(hold_time)
                locks.release_block(block)
            yield env.sleep(stream.uniform() * 2 * config.think_time)

    for node in range(1, config.num_nodes + 1):
        env.process(mover(node), name=f"mover-{node}")
    env.run()
    attempts = max(1, counters["attempts"])
    return {
        "attempts": counters["attempts"],
        "migrations": counters["migrations"],
        "conflict_rate": counters["denied"] / attempts,
        "abort_rate": counters["aborted"] / attempts,
    }


def estimate_transfer_loss(
    config: SupervisorConfig, chaos: LiveChaosSchedule
) -> float:
    """Fraction of the run a granted transfer is expected to fail.

    Partitions cut roughly the cross-group share of transfers for
    their window; fault windows lose a transfer with their drop rate
    (a transfer needs its request *and* reply to survive).  Scaled by
    each window's share of the expected run duration.
    """
    horizon = max(config.max_duration, 1e-9)
    loss = 0.0
    for action in chaos.actions:
        duration = getattr(action, "duration", None)
        if duration is None:
            continue
        window_share = min(duration, horizon) / horizon
        if hasattr(action, "groups"):
            groups = action.groups
            total = sum(len(g) for g in groups) or 1
            cross = 1.0 - sum((len(g) / total) ** 2 for g in groups)
            loss += window_share * cross
        elif getattr(action, "drop_rate", 0.0) > 0:
            survive = (1.0 - action.drop_rate) ** 2
            loss += window_share * (1.0 - survive)
    return min(loss, 0.95)


def _supervisor_child(
    config: SupervisorConfig,
    chaos: LiveChaosSchedule,
    recover: bool,
    out: multiprocessing.queues.Queue,
    incarnation: int = 0,
) -> None:
    """``multiprocessing`` spawn target: one supervisor incarnation.

    Reports ``("ok", report)`` or ``("error", repr)`` on the queue;
    reporting *nothing* is the KillSupervisor signature the runner
    keys recovery on.  A crashing incarnation SIGKILLs its fleet so a
    failed run never leaks workers.

    ``incarnation`` (the runner's recovery count) bands this process's
    span ids when cross-process telemetry is on: the supervisor mints
    spans during WAL replay in ``__init__``, before ``run()`` could
    learn its own start count, so the band must come from outside.
    """
    try:
        if config.telemetry_dir is not None:
            telemetry = Telemetry(
                id_base=process_id_base(SUPERVISOR, incarnation)
            )
        else:
            telemetry = Telemetry()
        supervisor = NodeSupervisor(
            config, chaos, recover=recover, telemetry=telemetry
        )
        try:
            report = asyncio.run(supervisor.run())
        except BaseException:
            supervisor.kill_workers()
            raise
        out.put(("ok", report))
    except BaseException as exc:  # noqa: BLE001 - relayed to the runner
        try:
            out.put(("error", repr(exc)))
        except Exception:
            pass


def run_supervised(
    config: SupervisorConfig,
    chaos: Optional[LiveChaosSchedule] = None,
    max_recoveries: int = 2,
) -> Dict[str, Any]:
    """Run the supervisor as a child, recovering it if chaos kills it.

    The runner loop: spawn a supervisor child; if it exits *without*
    posting a report (SIGKILLed by :class:`~repro.availability.
    livechaos.KillSupervisor`, or by anything else), respawn it with
    ``recover=True`` — same socket dir, same WAL — and the chaos
    schedule's already-consumed prefix stripped.  Gives up after
    ``max_recoveries`` silent deaths.

    The final report is patched with the *original* schedule's
    injection counts (the recovered incarnation only saw the suffix)
    plus ``supervisor_recoveries``.
    """
    config.validate()
    chaos = chaos if chaos is not None else LiveChaosSchedule()
    owns_dir = config.socket_dir is None
    if owns_dir:
        # Pin the dir on the config: every incarnation must compute the
        # same socket addresses and find the same WAL.
        config.socket_dir = tempfile.mkdtemp(prefix="repro-live-")
    if config.telemetry_dir is not None:
        # Stale artifacts from a previous run in a reused directory
        # would pollute the merged timeline.
        clean_telemetry_dir(config.telemetry_dir)
    context = multiprocessing.get_context("spawn")
    schedule = chaos
    recover = False
    recoveries = 0
    try:
        while True:
            out = context.Queue()
            child = context.Process(
                target=_supervisor_child,
                args=(config, schedule, recover, out, recoveries),
                daemon=False,
            )
            child.start()
            result = None
            while True:
                try:
                    result = out.get(timeout=0.25)
                    break
                except queue_module.Empty:
                    if not child.is_alive():
                        try:  # the report may have raced the exit
                            result = out.get(timeout=1.0)
                        except queue_module.Empty:
                            result = None
                        break
            child.join(5.0)
            if child.is_alive():
                child.kill()
            if result is not None:
                status, payload = result
                if status == "error":
                    raise SupervisionError(
                        f"supervisor incarnation failed: {payload}"
                    )
                report = payload
                report["supervisor_recoveries"] = recoveries
                report["crashes_injected"] = chaos.crashes
                report["partitions_injected"] = chaos.partitions
                report["supervisor_kills_injected"] = chaos.supervisor_kills
                if config.telemetry_dir is not None:
                    # Merge *here*, in the runner: it outlives every
                    # incarnation, so the hub sees killed supervisors'
                    # files too.
                    try:
                        merged = TelemetryHub(config.telemetry_dir).merge()
                    except (OSError, ValueError) as exc:
                        merged = {"error": repr(exc)}
                    report.setdefault("telemetry", {})["merged"] = merged
                return report
            # Child died with no goodbye: the KillSupervisor signature.
            recoveries += 1
            if recoveries > max_recoveries:
                raise SupervisionError(
                    f"supervisor died {recoveries} times without "
                    f"reporting; giving up"
                )
            recover = True
            schedule = schedule.without_supervisor_kills()
    finally:
        if owns_dir:
            shutil.rmtree(config.socket_dir, ignore_errors=True)
            config.socket_dir = None


def run_live_demo(
    config: Optional[SupervisorConfig] = None,
    chaos: Optional[LiveChaosSchedule] = None,
) -> Dict[str, Any]:
    """Run sim prediction + live deployment; return the joint report.

    The top-level ``violations`` key mirrors the measured run's
    ``invariant_violations`` so callers (the CLI, CI gates) can check
    one stable place without digging through the nesting.
    """
    config = config or SupervisorConfig()
    if chaos is None:
        chaos = demo_schedule(config.num_nodes)
    predicted = simulate_analog(
        config, transfer_loss=estimate_transfer_loss(config, chaos)
    )
    measured = run_supervised(config, chaos)
    return {
        "violations": list(measured["invariant_violations"]),
        "config": {
            "num_nodes": config.num_nodes,
            "num_objects": config.num_objects,
            "target_migrations": config.target_migrations,
            "max_duration": config.max_duration,
            "lease_duration": config.lease_duration,
            "rng_seed": config.rng_seed,
            "arbitration": config.arbitration,
        },
        "predicted": predicted,
        "measured": measured,
        "comparison": {
            "conflict_rate_predicted": predicted["conflict_rate"],
            "conflict_rate_measured": measured["conflict_rate"],
            "abort_rate_predicted": predicted["abort_rate"],
            "abort_rate_measured": measured["abort_rate"],
        },
    }


def format_report(report: Dict[str, Any]) -> str:
    """Human-readable sim-vs-measured table."""
    measured = report["measured"]
    comparison = report["comparison"]
    lines = [
        "live demo: sim-predicted vs. measured",
        "=" * 53,
        f"{'metric':<28}{'predicted':>12}{'measured':>12}",
        "-" * 53,
        (
            f"{'conflict rate':<28}"
            f"{comparison['conflict_rate_predicted']:>12.4f}"
            f"{comparison['conflict_rate_measured']:>12.4f}"
        ),
        (
            f"{'abort rate':<28}"
            f"{comparison['abort_rate_predicted']:>12.4f}"
            f"{comparison['abort_rate_measured']:>12.4f}"
        ),
        "-" * 53,
        f"workers (OS processes)      {measured['workers']:>12}",
        f"objects                     {measured['objects']:>12}",
        f"arbitration                 {measured.get('arbitration', '?'):>12}",
        f"migrations                  {measured['migrations']:>12}",
        f"distinct objects moved      {measured['distinct_objects_moved']:>12}",
        f"crashes injected            {measured['crashes_injected']:>12}",
        f"partitions injected         {measured['partitions_injected']:>12}",
        f"supervisor kills injected   "
        f"{measured.get('supervisor_kills_injected', 0):>12}",
        f"supervisor recoveries       "
        f"{measured.get('supervisor_recoveries', 0):>12}",
        f"restarts                    {measured['restarts']:>12}",
        f"leases broken               {measured['leases_broken']:>12}",
        f"home reassignments          "
        f"{measured.get('home_reassignments', 0):>12}",
        f"wal records appended        "
        f"{measured.get('wal', {}).get('records_appended', 0):>12}",
        f"invariant violations        "
        f"{len(measured['invariant_violations']):>12}",
    ]
    in_doubt = measured.get("in_doubt", {})
    if any(in_doubt.values()):
        lines.append(
            "in-doubt settled            "
            f"{in_doubt.get('committed', 0)} committed / "
            f"{in_doubt.get('rolled_back', 0)} rolled back / "
            f"{in_doubt.get('reverted', 0)} reverted"
        )
    for violation in measured["invariant_violations"]:
        lines.append(f"  !! {violation}")
    return "\n".join(lines)


__all__ = [
    "estimate_transfer_loss",
    "format_report",
    "run_live_demo",
    "run_supervised",
    "simulate_analog",
]
