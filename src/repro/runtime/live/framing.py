"""Length-prefixed message framing for the live transport.

A frame is ``4-byte big-endian payload length || payload``.  TCP and
Unix stream sockets are byte streams with no message boundaries, so the
receiver needs the length up front to know where one pickled envelope
ends and the next begins.  The prefix is bounded by
``max_payload`` on *both* sides: the sender refuses to emit an
oversized frame, and the receiver refuses to buffer one whose prefix
claims more than the limit — a corrupt length (or a hostile peer)
must never make us allocate unbounded memory.

:class:`FrameDecoder` is a pure incremental parser: feed it arbitrary
byte chunks as they arrive from the socket, take complete payloads out.
No I/O, no asyncio — unit-testable byte-for-byte, and reused verbatim
by any future transport (the framing is the protocol, the socket is a
detail).
"""

from __future__ import annotations

import struct
from typing import List

from repro.errors import FrameTooLargeError

#: Length-prefix format: unsigned 32-bit big-endian.
_PREFIX = struct.Struct(">I")

#: Size of the length prefix in bytes.
PREFIX_SIZE = _PREFIX.size

#: Default payload bound: 64 MiB — far above any pickled object the
#: demo ships, far below anything that could hurt a host.
DEFAULT_MAX_PAYLOAD = 64 * 1024 * 1024


def encode_frame(payload: bytes, max_payload: int = DEFAULT_MAX_PAYLOAD) -> bytes:
    """Wrap ``payload`` in a length-prefixed frame.

    Raises
    ------
    FrameTooLargeError
        When the payload exceeds ``max_payload`` — checked at the
        sender so the oversized frame never reaches the wire.
    """
    size = len(payload)
    if size > max_payload:
        raise FrameTooLargeError(
            "refusing to send oversized frame", size=size, limit=max_payload
        )
    return _PREFIX.pack(size) + payload


class FrameDecoder:
    """Incremental frame parser over an unbounded byte stream.

    Usage::

        decoder = FrameDecoder()
        for payload in decoder.feed(chunk):   # chunk: any byte slice
            handle(payload)

    The decoder keeps at most one partial frame of internal buffer;
    complete payloads are surfaced in arrival order.
    """

    __slots__ = ("max_payload", "_buffer", "frames_decoded", "bytes_fed")

    def __init__(self, max_payload: int = DEFAULT_MAX_PAYLOAD):
        if max_payload <= 0:
            raise ValueError(
                f"max_payload must be positive, got {max_payload}"
            )
        self.max_payload = max_payload
        self._buffer = bytearray()
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk``; return every payload completed by it.

        Raises
        ------
        FrameTooLargeError
            The moment a length prefix claims more than
            ``max_payload`` — before any of that payload is buffered.
            The connection is unrecoverable after this (the stream
            position is inside a frame we refuse to read); callers
            drop it.
        """
        self.bytes_fed += len(chunk)
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < PREFIX_SIZE:
                break
            (size,) = _PREFIX.unpack_from(self._buffer)
            if size > self.max_payload:
                raise FrameTooLargeError(
                    "peer announced oversized frame",
                    size=size,
                    limit=self.max_payload,
                )
            if len(self._buffer) < PREFIX_SIZE + size:
                break
            frames.append(bytes(self._buffer[PREFIX_SIZE:PREFIX_SIZE + size]))
            del self._buffer[:PREFIX_SIZE + size]
            self.frames_decoded += 1
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buffer)

    def __repr__(self) -> str:
        return (
            f"<FrameDecoder decoded={self.frames_decoded} "
            f"pending={self.pending_bytes}B>"
        )


__all__ = [
    "DEFAULT_MAX_PAYLOAD",
    "PREFIX_SIZE",
    "FrameDecoder",
    "encode_frame",
]
