"""NodeSupervisor: spawn, arbitrate, detect, restart, recover, drain.

The supervisor is the live deployment's control plane, running under
node id :data:`~repro.runtime.live.wire.SUPERVISOR`.  It plays five
roles:

**Arbiter (central mode).**  The paper's place-policy decision (§3.2)
runs here against the *real* :class:`~repro.core.locking.LockManager`
on a :class:`~repro.runtime.clock.WallClock`.  Every move-block is a
real :class:`~repro.core.moveblock.MoveBlock`.  The supervisor is also
the placement linearization point: a migration commits only when the
destination's ``PLACE`` passes the transfer fence, so a lost ack or a
partition can delay a migration but never duplicate an object.

**Journal.**  Every arbitration transition — grant, PLACE commit,
rollback, lease break, incarnation bump, home-slice assignment — is
appended to the :class:`~repro.runtime.live.wal.ArbitrationWal`
*before* the corresponding control message leaves the process.  The
WAL is what makes the arbiter itself killable.

**Failure detector.**  Workers heartbeat over the control plane; the
supervisor feeds :class:`~repro.runtime.failure.HeartbeatHistory`
(phi-accrual or fixed-timeout — PR 4's math, wall-clock intervals) and
cross-checks OS-level process liveness.  Heartbeats also carry the
worker's pid, so a supervisor that *recovered* from a SIGKILL (and
therefore owns no process handles) can still manage the orphans its
predecessor spawned.

**Restart with lease recovery.**  A dead worker's in-flight blocks are
reclaimed via ``LockManager.break_crashed`` — broken blocks are barred
forever, so a zombie's late ``PLACE`` or lease renewal cannot
resurrect exclusivity.  The node is respawned and re-seeded with the
objects the placement map assigns it.  Under *home* arbitration the
supervisor is demoted to exactly this role plus home-reassignment:
peer home nodes grant the leases, and when one dies its slice is
reassigned from the WAL-backed ownership records reconciled against
live inventories.

**Drain.**  Graceful shutdown asks each worker to finish its in-flight
block and report stats + inventory under a hard deadline
(:class:`~repro.errors.DrainTimeoutError` otherwise); the inventories
are then audited against the placement map — every object exactly
once, exactly where the map says.

Recovery (``recover=True``) replays the WAL, rebuilds lock/placement/
fence state, waits for the orphaned workers to reconnect, and settles
the in-doubt transfer tail: a transfer with no logged PLACE is rolled
back (the destination can never have installed it — the ok reply is
sent only after the append); a transfer *with* a logged PLACE is
confirmed against the destination's inventory — present means commit
(evict the source's held-back copy), absent means the commit never
reached the destination and is reverted to the source.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing
import os
import signal
import tempfile
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.availability.livechaos import (
    KillSupervisor,
    LiveChaosSchedule,
    LiveCrash,
    LiveFaultWindow,
    LivePartition,
)
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import ConnectionLostError, DrainTimeoutError, TimeoutError
from repro.runtime.clock import WallClock
from repro.runtime.failure import HeartbeatHistory
from repro.runtime.live import wal as wal_module
from repro.runtime.live.node import LiveObject, worker_main
from repro.runtime.live.transport import AsyncioTransport, unix_supported
from repro.runtime.live.wal import TRANSFER_BAND, ArbitrationWal
from repro.runtime.live.wire import (
    BREAK_HOMED,
    DRAIN,
    END_REQUEST,
    EVICT,
    HEARTBEAT,
    HOME_ASSIGN,
    HOME_MAP,
    HOME_STATE,
    INVENTORY,
    LOCATE,
    MOVE_REQUEST,
    PLACE,
    PLACE_NOTICE,
    RESTORE,
    ROLLBACK,
    SET_FAULTS,
    SETTLE,
    SETTLE_HOMED,
    SHUTDOWN,
    START,
    STATS,
    SUPERVISOR,
    Envelope,
)
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.live import (
    LATENCY_BUCKETS,  # noqa: F401 - canonical home moved; re-exported
    ClockSync,
    FlightRecorder,
    ProcessTelemetryWriter,
    load_flight_dump,
)

#: Arbitration modes the config accepts.
ARBITRATION_MODES = ("central", "home")


@dataclass
class SupervisorConfig:
    """Everything one live run needs, picklable and explicit."""

    num_nodes: int = 3
    num_objects: int = 120
    heartbeat_interval: float = 0.1
    #: Fixed-timeout fallback when ``phi_threshold`` is None.
    heartbeat_timeout: float = 1.0
    phi_threshold: Optional[float] = 8.0
    lease_duration: float = 5.0
    request_timeout: float = 3.0
    drain_timeout: float = 10.0
    #: Workload knobs forwarded to the workers' START message.
    think_time: float = 0.002
    invocations_per_block: int = 3
    #: Stop once this many migrations were measured (or at deadline).
    target_migrations: int = 250
    max_duration: float = 20.0
    rng_seed: int = 0
    socket_dir: Optional[str] = None
    #: Who grants move-block leases: the supervisor ("central") or the
    #: per-slice home nodes, peer-to-peer ("home").
    arbitration: str = "central"
    #: Arbitration WAL location; default ``<socket_dir>/arbitration.wal``.
    wal_path: Optional[str] = None
    #: fsync every append (the durability the recovery contract needs;
    #: tests on tmpfs may opt out for speed).
    wal_fsync: bool = True
    #: Workers self-exit after this long without a reachable
    #: supervisor — the backstop against leaking orphans when the
    #: arbiter is SIGKILLed and never recovered.  Must comfortably
    #: exceed the recovery window.
    orphan_grace: float = 30.0
    #: How long a recovering supervisor waits for orphaned workers to
    #: reconnect before treating them as dead.
    recovery_wait: float = 8.0
    #: Directory for cross-process telemetry artifacts (per-process
    #: span/metric JSONL, flight-recorder dumps, merged trace).  None
    #: (the default) keeps every process on the NullTelemetry fast
    #: path.  Picklable like the rest of the config, so workers learn
    #: it through their spawn args.
    telemetry_dir: Optional[str] = None

    def validate(self) -> None:
        """Reject non-positive sizes, intervals and budgets."""
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.num_objects < 1:
            raise ValueError(
                f"num_objects must be >= 1, got {self.num_objects}"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.max_duration <= 0:
            raise ValueError("max_duration must be positive")
        if self.arbitration not in ARBITRATION_MODES:
            raise ValueError(
                f"arbitration must be one of {ARBITRATION_MODES}, "
                f"got {self.arbitration!r}"
            )


@dataclass
class Transfer:
    """One in-flight object transfer, fenced by id."""

    transfer_id: int
    object_id: int
    src: int
    dst: int
    block_id: int
    state: str = "pending"  # pending | placed | rolled_back | failed
    #: Telemetry context of the mover's migration-root span, captured
    #: from the MOVE_REQUEST envelope so EVICT/RESTORE notices join the
    #: same cross-process trace.
    trace: Optional[Tuple[int, int]] = None


class _CrashedSet:
    """``health`` adapter for ``LockManager.break_crashed``."""

    def __init__(self):
        self.down: Set[int] = set()

    def is_down(self, node_id: int) -> bool:
        return node_id in self.down


class NodeSupervisor:
    """Control plane for one live multi-process deployment."""

    def __init__(
        self,
        config: SupervisorConfig,
        chaos: Optional[LiveChaosSchedule] = None,
        recover: bool = False,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        config.validate()
        if chaos is not None:
            chaos.validate()
        self.config = config
        self.chaos = chaos or LiveChaosSchedule()
        self.recover = recover
        self.clock = WallClock()
        self.telemetry = telemetry
        if telemetry.enabled:
            telemetry.bind_clock(self.clock)
        self.socket_dir = config.socket_dir or tempfile.mkdtemp(
            prefix="repro-live-"
        )
        self.wal_path = config.wal_path or os.path.join(
            self.socket_dir, "arbitration.wal"
        )
        self.worker_ids = list(range(1, config.num_nodes + 1))
        self.peers = self._address_map()
        # The paper's lock machinery, verbatim, on wall time.
        self.locks = LockManager(
            clock=self.clock, lease_duration=config.lease_duration
        )
        self.records: Dict[int, LiveObject] = {
            oid: LiveObject(oid) for oid in range(config.num_objects)
        }
        #: object id -> node currently hosting it.  In central mode
        #: this is the authority; in home mode it is the WAL-mirrored
        #: view the supervisor re-seeds and reassigns from.
        self.placement: Dict[int, int] = {
            oid: self.worker_ids[oid % len(self.worker_ids)]
            for oid in range(config.num_objects)
        }
        self.blocks: Dict[int, MoveBlock] = {}
        self.transfers: Dict[int, Transfer] = {}
        self._transfer_ids = itertools.count(1)
        #: slice -> home node (home arbitration; one slice per worker).
        self.num_slices = config.num_nodes
        self.home: Dict[int, int] = {}
        self.incarnations: Dict[int, int] = {w: 0 for w in self.worker_ids}
        self.supervisor_starts = 0
        #: Highest transfer id minted before the crash being recovered
        #: from — bounds the in-doubt settlement worklist.
        self._recovered_max_transfer = 0
        #: transfer id -> state as the WAL recorded it at replay time.
        self._wal_states: Dict[int, str] = {}
        if recover:
            self._replay_wal()
        self.transport = AsyncioTransport(
            SUPERVISOR,
            self.peers[SUPERVISOR],
            self.peers,
            clock=self.clock,
            jitter_seed=config.rng_seed,
            incarnation=self.supervisor_starts,
        )
        self.wal = ArbitrationWal(
            self.wal_path, fsync=config.wal_fsync, telemetry=telemetry
        )
        self.history = HeartbeatHistory(
            interval=config.heartbeat_interval,
            timeout=config.heartbeat_timeout,
            phi_threshold=config.phi_threshold,
        )
        self.health = _CrashedSet()
        self.processes: Dict[int, multiprocessing.process.BaseProcess] = {}
        #: node id -> OS pid, learned from heartbeats — how a recovered
        #: supervisor manages workers it never spawned.
        self.worker_pids: Dict[int, int] = {}
        self._mp = multiprocessing.get_context("spawn")
        self._restarting: Set[int] = set()
        # Run ledger.
        self.restarts = 0
        self.crashes_seen = 0
        self.crashes_delivered = 0
        self.leases_broken_total = 0
        self.conflicts = 0
        self.grants = 0
        self.home_reassignments = 0
        self.in_doubt_committed = 0
        self.in_doubt_rolled_back = 0
        self.in_doubt_reverted = 0
        self.faults_active: Dict[str, Any] = {}
        self._settlements: Set = set()
        self._stopping = False
        self._in_drain = False
        # -- cross-process telemetry (inert unless dir + enabled) --
        self._clock_sync = (
            ClockSync()
            if telemetry.enabled and config.telemetry_dir
            else None
        )
        self._writer: Optional[ProcessTelemetryWriter] = None
        self.flight: Optional[FlightRecorder] = None
        self._sup_incarnation = 0
        #: Post-mortem flight dumps attached to the report (summaries).
        self.flight_reports: List[Dict[str, Any]] = []
        #: (node, incarnation) -> full flight entries, for cross-checks.
        self._flight_entries: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
        #: In-doubt settlement verdicts cross-checked against flight
        #: evidence (filled by _recover when both exist).
        self._in_doubt_evidence: Dict[str, Any] = {}
        self._last_settlement_plan: List[Tuple[str, Transfer]] = []
        #: While True (a recovering supervisor, until the in-doubt
        #: settlement lands) every new MOVE_REQUEST is denied: granting
        #: would let live migrations race the settlement's inventory
        #: snapshot.  Movers degrade to remote invocation meanwhile.
        self._grants_frozen = recover

    # -- WAL ------------------------------------------------------------------

    def _replay_wal(self) -> None:
        """Rebuild arbitration state from the predecessor's journal."""
        span = (
            self.telemetry.start_span("wal.replay", node=SUPERVISOR)
            if self.telemetry.enabled
            else None
        )
        state, records = wal_module.replay(self.wal_path, self.telemetry)
        if state.num_objects:
            self.records = {
                oid: LiveObject(oid) for oid in range(state.num_objects)
            }
        if state.placement:
            self.placement = dict(state.placement)
        for transfer_id, entry in state.transfers.items():
            self.transfers[transfer_id] = Transfer(
                transfer_id=entry.transfer_id,
                object_id=entry.object_id,
                src=entry.src,
                dst=entry.dst,
                block_id=entry.block_id,
                state=entry.state,
            )
            # Settlement trusts only the state the log proves: a
            # transfer that advances *after* replay (a live PLACE
            # served by this incarnation) is no longer in doubt.
            self._wal_states[transfer_id] = entry.state
        # In central mode the supervisor mints small ids; in home mode
        # the homes mint banded ids and this counter is never consulted
        # (the supervisor answers MOVE_REQUEST with not_home).
        self._transfer_ids = itertools.count(state.max_transfer_id + 1)
        self._recovered_max_transfer = state.max_transfer_id
        # Revive open move-blocks with their *recorded* ids (the fence
        # is the id) and re-mark broken ones; the id counter advances
        # past everything imported.
        self.locks.import_lease_state(
            {
                "blocks": [
                    {
                        "block_id": block_id,
                        "client_node": desc["client_node"],
                        "object_ids": [desc["object_id"]],
                    }
                    for block_id, desc in state.blocks.items()
                ],
                "broken": state.broken_blocks,
            },
            self.records,
        )
        for block in self.locks.held_blocks():
            self.blocks[block.block_id] = block
        for node_id, incarnation in state.incarnations.items():
            if node_id in self.incarnations:
                self.incarnations[node_id] = incarnation
        if state.home:
            self.home = dict(state.home)
        if state.num_slices:
            self.num_slices = state.num_slices
        self.supervisor_starts = state.supervisor_starts
        if span is not None:
            self.telemetry.end_span(
                span,
                records=len(records),
                in_doubt=len(state.in_doubt()),
                mode=state.arbitration,
            )

    def _log(self, kind: str, data: Optional[Dict[str, Any]] = None) -> int:
        """Durably journal one transition (auto-opens in unit tests)."""
        if self.wal._fh is None:
            self.wal.open()
        return self.wal.append(kind, data)

    # -- wiring ---------------------------------------------------------------

    def _address_map(self) -> Dict[int, Tuple]:
        if unix_supported():
            return {
                node: ("unix", os.path.join(self.socket_dir, f"n{node}.sock"))
                for node in [SUPERVISOR] + self.worker_ids
            }
        # Derive the port base from the (stable, per-run-unique) socket
        # dir, NOT the pid: a recovered supervisor is a different
        # process but must compute the same addresses its predecessor
        # handed the workers.
        base = 43500 + (zlib.crc32(self.socket_dir.encode()) % 1000)
        return {
            node: ("tcp", "127.0.0.1", base + node + 1)
            for node in [SUPERVISOR] + self.worker_ids
        }

    def _seed_states(self, node_id: int) -> List[Dict[str, Any]]:
        return [
            LiveObject(oid).state()
            for oid, where in sorted(self.placement.items())
            if where == node_id
        ]

    def _spawn(self, node_id: int) -> None:
        address = self.peers[node_id]
        if address[0] == "unix" and os.path.exists(address[1]):
            os.unlink(address[1])  # stale socket from a crashed worker
        process = self._mp.Process(
            target=worker_main,
            args=(
                node_id,
                address,
                self.peers,
                self._seed_states(node_id),
                self.config.heartbeat_interval,
                self.config.request_timeout,
                self.config.rng_seed * 1000 + node_id,
                self.incarnations[node_id],
                self.config.arbitration,
                self.num_slices if self.config.arbitration == "home" else 0,
                self.config.lease_duration,
                self.config.orphan_grace,
                self.config.telemetry_dir,
            ),
            # Non-daemon: workers must survive a supervisor SIGKILL so
            # the recovered incarnation has a fleet to re-adopt.
            daemon=False,
        )
        process.start()
        self.processes[node_id] = process
        if process.pid is not None:
            self.worker_pids[node_id] = process.pid
        self.history.ensure(node_id, self.clock.now())

    def _kill_worker(self, node_id: int, sig: int = signal.SIGKILL) -> bool:
        """Signal a worker (SIGKILL default), via handle or learned pid.

        ``sig=SIGTERM`` gives the worker's flight recorder a chance to
        dump before dying — the chaos schedule uses it to exercise the
        graceful post-mortem path.  Returns whether a kill was actually
        delivered — False when the supervisor knows neither a handle
        nor a pid for the node (it recovered before the worker's first
        heartbeat arrived).
        """
        process = self.processes.get(node_id)
        if process is not None:
            if sig == signal.SIGKILL:
                process.kill()
            elif process.pid is not None:
                try:
                    os.kill(process.pid, sig)
                except OSError:
                    return False
            else:
                process.terminate()
            return True
        pid = self.worker_pids.get(node_id)
        if pid:
            try:
                os.kill(pid, sig)
                return True
            except OSError:
                return False  # already gone
        return False

    def kill_workers(self) -> None:
        """Last-resort cleanup: SIGKILL the whole fleet (sync, safe)."""
        for node_id in self.worker_ids:
            self._kill_worker(node_id)

    # -- inbound control plane ------------------------------------------------

    async def handle(self, envelope: Envelope) -> None:
        """Dispatch one inbound worker message to its protocol serve."""
        kind = envelope.kind
        if kind == HEARTBEAT:
            local_recv = self.clock.now()
            self.history.record(envelope.src, local_recv)
            pid = envelope.payload.get("pid")
            if pid:
                self.worker_pids[envelope.src] = pid
            if self._clock_sync is not None:
                sample = envelope.payload.get("clock")
                if sample is not None:
                    self._clock_sync.observe(
                        envelope.src,
                        envelope.payload.get("incarnation", 0),
                        sample,
                        local_recv,
                    )
        elif kind == MOVE_REQUEST:
            await self._serve_move_request(envelope)
        elif kind == PLACE:
            await self._serve_place(envelope)
        elif kind == ROLLBACK:
            await self._serve_rollback(envelope)
        elif kind == END_REQUEST:
            block = self.blocks.pop(envelope.payload["block_id"], None)
            released = 0
            if block is not None:
                self._log(wal_module.END, {"block_id": block.block_id})
                released = self.locks.release_block(block)
            await self.transport.reply(envelope, {"released": released})
        elif kind == PLACE_NOTICE:
            # A peer home committed a transfer: mirror the ownership
            # move into the WAL so slice reassignment survives us.
            self._log(
                wal_module.PLACE_MIRROR,
                {
                    "object_id": envelope.payload["object_id"],
                    "node": envelope.payload["node"],
                    "transfer_id": envelope.payload.get("transfer_id"),
                },
            )
            self.placement[envelope.payload["object_id"]] = envelope.payload[
                "node"
            ]
            await self.transport.reply(envelope, {"ok": True})
        elif kind == LOCATE:
            oid = envelope.payload["object_id"]
            await self.transport.reply(
                envelope, {"location": self.placement.get(oid)}
            )

    async def _serve_move_request(self, envelope: Envelope) -> None:
        """§3.2 at the arbiter: grant the lock or answer "locked".

        The arbitration decision itself is :meth:`_move_decision`; this
        wrapper joins the mover's migration trace (the MOVE_REQUEST
        envelope carries the mover's ``live.move`` span context) so one
        migration renders as a single cross-process span tree.
        """
        span = (
            self.telemetry.start_span(
                "live.grant",
                node=SUPERVISOR,
                remote=envelope.trace,
                detached=True,
                object=envelope.payload["object_id"],
            )
            if self.telemetry.enabled
            else None
        )
        reply = self._move_decision(envelope)
        if span is not None:
            self.telemetry.end_span(span, granted=reply["granted"])
        await self.transport.reply(envelope, reply)

    def _move_decision(self, envelope: Envelope) -> Dict[str, Any]:
        mover = envelope.src
        object_id = envelope.payload["object_id"]
        if self.config.arbitration == "home":
            # Demoted supervisor: movers should ask the home node; a
            # request landing here means their map is still warming up.
            self.conflicts += 1
            return {
                "granted": False,
                "location": self.placement.get(object_id),
                "not_home": True,
            }
        record = self.records[object_id]
        if self._grants_frozen or self.locks.is_locked(record):
            self.conflicts += 1
            return {"granted": False, "location": self.placement[object_id]}
        block = MoveBlock(client_node=mover, target=record)
        try:
            self.locks.lock(record, block)
        except Exception:
            # e.g. a broken (crash-suspected) mover retrying: deny.
            self.conflicts += 1
            return {"granted": False, "location": self.placement[object_id]}
        self.grants += 1
        self.blocks[block.block_id] = block
        source = self.placement[object_id]
        transfer_id = None
        if source != mover:
            transfer_id = next(self._transfer_ids)
            self.transfers[transfer_id] = Transfer(
                transfer_id,
                object_id,
                source,
                mover,
                block.block_id,
                trace=envelope.trace,
            )
        # Log, *then* send: if we die between the two, recovery revives
        # the grant and the mover's timeout aborts it cleanly.
        self._log(
            wal_module.GRANT,
            {
                "block_id": block.block_id,
                "object_id": object_id,
                "mover": mover,
                "source": source,
                "transfer_id": transfer_id,
            },
        )
        return {
            "granted": True,
            "source": source,
            "block_id": block.block_id,
            "transfer_id": transfer_id,
        }

    async def _serve_place(self, envelope: Envelope) -> None:
        """The linearization point: commit or fence out a transfer."""
        transfer = self.transfers.get(envelope.payload["transfer_id"])
        ok = (
            transfer is not None
            and transfer.state == "pending"
            and transfer.dst == envelope.src
            and transfer.block_id in self.blocks
            and not self.locks.was_broken(self.blocks[transfer.block_id])
        )
        span = (
            self.telemetry.start_span(
                "live.place",
                node=SUPERVISOR,
                remote=envelope.trace,
                detached=True,
                transfer=envelope.payload["transfer_id"],
            )
            if self.telemetry.enabled
            else None
        )
        if ok:
            # The WAL append *is* the commit: recovery treats a logged
            # PLACE as "the destination may hold the object" and
            # settles it against the destination's inventory.
            self._log(
                wal_module.PLACE, {"transfer_id": transfer.transfer_id}
            )
            transfer.state = "placed"
            self.placement[transfer.object_id] = transfer.dst
            self._notify(transfer.src, EVICT, transfer)
        if span is not None:
            self.telemetry.end_span(span, ok=ok)
        await self.transport.reply(envelope, {"ok": ok})

    async def _serve_rollback(self, envelope: Envelope) -> None:
        """Abort a transfer: the source's held-back copy is restored."""
        transfer = self.transfers.get(envelope.payload["transfer_id"])
        ok = transfer is not None and transfer.state == "pending"
        span = (
            self.telemetry.start_span(
                "live.rollback",
                node=SUPERVISOR,
                remote=envelope.trace,
                detached=True,
                transfer=envelope.payload["transfer_id"],
            )
            if self.telemetry.enabled
            else None
        )
        if ok:
            self._log(
                wal_module.ROLLBACK, {"transfer_id": transfer.transfer_id}
            )
            transfer.state = "rolled_back"
            self._notify(transfer.src, RESTORE, transfer)
        if span is not None:
            self.telemetry.end_span(span, ok=ok)
        await self.transport.reply(envelope, {"ok": ok})

    def _notify(self, node: int, kind: str, transfer: Transfer) -> None:
        """Fire-and-forget settlement notice to a transfer's source.

        EVICT/RESTORE are idempotent (a pop keyed by transfer id), so
        the notice retries until delivered or the drain budget runs
        out: a single timeout under load must not leak the source's
        held-back copy.  A crashed source is the one acceptable drop —
        its respawn is re-seeded from the placement map anyway.
        """

        async def deliver():
            deadline = self.clock.deadline(self.config.drain_timeout)
            while True:
                try:
                    await self.transport.request(
                        node,
                        kind,
                        {
                            "transfer_id": transfer.transfer_id,
                            "object_id": transfer.object_id,
                        },
                        timeout=self.config.request_timeout,
                        trace=transfer.trace,
                    )
                    return
                except (TimeoutError, ConnectionLostError):
                    if self.clock.expired(deadline):
                        return
                    await asyncio.sleep(0.1)
                except Exception:
                    return

        task = asyncio.ensure_future(deliver())
        self._settlements.add(task)
        task.add_done_callback(self._settlements.discard)

    # -- failure detection & restart ------------------------------------------

    def _worker_process_dead(self, node_id: int) -> bool:
        """OS-level liveness: handle when we spawned it, pid otherwise.

        A recovered supervisor owns no handles for the orphans it
        adopted, but heartbeats taught it their pids — without the pid
        probe, an adopted orphan's death would only surface through
        slow heartbeat suspicion, long after the run moved on.
        """
        process = self.processes.get(node_id)
        if process is not None:
            return not process.is_alive()
        pid = self.worker_pids.get(node_id)
        if not pid:
            return False
        try:
            os.kill(pid, 0)
            return False
        except OSError:
            return True

    async def _monitor_loop(self) -> None:
        tick = self.config.heartbeat_interval / 2
        last_flush = self.clock.now()
        while not self._stopping:
            now = self.clock.now()
            for node_id in self.worker_ids:
                if node_id in self._restarting:
                    continue
                if self._worker_process_dead(node_id) or self.history.is_down(
                    node_id, now
                ):
                    self._restarting.add(node_id)
                    asyncio.ensure_future(self._restart(node_id))
            if self._writer is not None and now - last_flush >= 0.5:
                # Incremental flush + flight snapshot: a SIGKILLed
                # supervisor still leaves spans and a recent ring on
                # disk for the successor's hub/recovery to pick up.
                last_flush = now
                try:
                    self._writer.flush()
                    if self.flight is not None:
                        self.flight.dump(reason="snapshot")
                except OSError:
                    pass
            await asyncio.sleep(tick)

    async def _restart(self, node_id: int) -> None:
        """Crash recovery: break leases, settle transfers, respawn.

        Never leaves the node stuck in the restarting set: if the
        respawn itself fails (no heartbeat in time), the monitor sees
        the dead process and tries again.
        """
        try:
            if self.config.arbitration == "home":
                await self._restart_home(node_id)
            else:
                await self._restart_inner(node_id)
        except (TimeoutError, ConnectionLostError):
            pass
        finally:
            self._restarting.discard(node_id)

    async def _restart_inner(self, node_id: int) -> None:
        self.crashes_seen += 1
        self.health.down.add(node_id)
        self._attach_flight(node_id, self.incarnations[node_id], "restart")
        # PR 4 -> PR 2 seam: reclaim every lock the dead mover held.
        # Its blocks are barred forever; a zombie's late PLACE is
        # rejected by the fence in _serve_place.
        before_broken = set(self.locks._broken)
        self.leases_broken_total += self.locks.break_crashed(self.health)
        newly_broken = sorted(self.locks._broken - before_broken)
        if newly_broken:
            self._log(
                wal_module.BREAK,
                {"node": node_id, "block_ids": newly_broken},
            )
        for transfer in self.transfers.values():
            if transfer.state != "pending":
                continue
            if transfer.dst == node_id:
                # Destination died mid-pull: restore the source's copy.
                self._log(
                    wal_module.ROLLBACK,
                    {"transfer_id": transfer.transfer_id},
                )
                transfer.state = "rolled_back"
                self._notify(transfer.src, RESTORE, transfer)
            elif transfer.src == node_id:
                # Source died holding the held-back copy: the state is
                # lost; fence the destination out and re-seed on
                # restart.  Placement never moved, so no duplicate.
                self._log(
                    wal_module.FAILED,
                    {"transfer_id": transfer.transfer_id},
                )
                transfer.state = "failed"
        await self._respawn(node_id)

    async def _respawn(self, node_id: int) -> None:
        """Kill remnants, bump the incarnation, spawn, restart workload."""
        stale = self.transport._writers.pop(node_id, None)
        if stale is not None:
            stale.close()
        self._kill_worker(node_id)
        process = self.processes.get(node_id)
        if process is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, process.join, 5.0
            )
        self.history.forget(node_id)
        self.health.down.discard(node_id)
        self.incarnations[node_id] += 1
        self._log(
            wal_module.INCARNATION,
            {"node": node_id, "incarnation": self.incarnations[node_id]},
        )
        self._spawn(node_id)
        await self._wait_for_heartbeat(node_id)
        if self.faults_active:
            await self._send_faults(node_id, self.faults_active)
        if self.config.arbitration == "home":
            await self._send_home_map(node_id)
        if not self._in_drain:
            # A node respawned mid-drain must come up parked: starting
            # its workload would race the other nodes' quiesced
            # inventories.  It drains trivially (no START, no mover).
            await self._start_workload(node_id)
        self.restarts += 1

    async def _restart_home(self, node_id: int) -> None:
        """Home-mode worker death: break at peers, reassign, respawn."""
        self.crashes_seen += 1
        self.health.down.add(node_id)
        self._attach_flight(node_id, self.incarnations[node_id], "restart")
        live = [
            w
            for w in self.worker_ids
            if w != node_id and w not in self.health.down
        ]
        # 1. Every surviving home breaks the dead mover's leases and
        #    settles its own transfers that involved the dead node.
        broken = 0
        for peer in live:
            try:
                reply = await self.transport.request(
                    peer,
                    BREAK_HOMED,
                    {"node": node_id},
                    timeout=self.config.request_timeout,
                )
                broken += reply.payload.get("broken", 0)
            except (TimeoutError, ConnectionLostError):
                pass  # peer mid-crash: its own restart will re-settle
        self.leases_broken_total += broken
        # 2. If the dead node was home for slices, reassign them from
        #    WAL-mirrored ownership reconciled against live inventories.
        dead_slices = sorted(
            s for s, h in self.home.items() if h == node_id
        )
        if dead_slices and live:
            await self._reassign_slices(node_id, dead_slices, live)
        # 3. Sync the placement mirror from the surviving homes so the
        #    respawn re-seeds exactly what the fleet says is the dead
        #    node's (placement-wise) and nothing else.
        await self._sync_placement_mirror(live)
        await self._respawn(node_id)

    async def _reassign_slices(
        self, dead: int, dead_slices: List[int], live: List[int]
    ) -> None:
        """Move a dead home's slices to the least-loaded survivor.

        The dead home's transfer table died with it; transfers it
        granted (ids in its band) are settled from the in-transit
        tables of the live workers: an in-transit copy whose object is
        hosted somewhere is evicted, one hosted nowhere is restored.
        """
        inventories: Dict[int, Dict[str, Any]] = {}
        for peer in live:
            try:
                reply = await self.transport.request(
                    peer, INVENTORY, timeout=self.config.request_timeout
                )
                inventories[peer] = reply.payload
            except (TimeoutError, ConnectionLostError):
                pass
        hosted: Dict[int, int] = {}
        for peer, payload in inventories.items():
            for oid in payload["inventory"]:
                hosted[int(oid)] = peer
        # Settle transfers the dead home granted (its id band).
        instructions: Dict[int, Dict[str, List[int]]] = {}
        for peer, payload in inventories.items():
            for tid, oid in payload.get("in_transit_objects", {}).items():
                if tid // TRANSFER_BAND != dead:
                    continue  # homed at a live peer: it settles its own
                plan = instructions.setdefault(
                    peer, {"evict": [], "restore": []}
                )
                if oid in hosted:
                    plan["evict"].append(tid)
                else:
                    plan["restore"].append(tid)
                    hosted[oid] = peer
        for peer, plan in instructions.items():
            try:
                await self.transport.request(
                    peer,
                    SETTLE_HOMED,
                    plan,
                    timeout=self.config.request_timeout,
                )
            except (TimeoutError, ConnectionLostError):
                pass
        # Reconciled ownership for the orphaned slices: found copies
        # win; unseen objects stay placed at the dead node and are
        # re-seeded when it respawns.
        slice_placement: Dict[int, int] = {}
        for oid in range(self.config.num_objects):
            if oid % self.num_slices not in dead_slices:
                continue
            where = hosted.get(oid, self.placement.get(oid, dead))
            if where not in inventories and where != dead:
                where = self.placement.get(oid, dead)
            slice_placement[oid] = where if where in live else dead
        changed = {
            oid: where
            for oid, where in slice_placement.items()
            if self.placement.get(oid) != where
        }
        new_home = min(
            live,
            key=lambda w: sum(1 for h in self.home.values() if h == w),
        )
        # Log, then assign: a supervisor crash mid-reassignment replays
        # into the same (idempotent) assignment.
        self._log(
            wal_module.HOME_ASSIGN,
            {"slices": dead_slices, "node": new_home},
        )
        for oid, where in sorted(changed.items()):
            self._log(
                wal_module.PLACE_MIRROR, {"object_id": oid, "node": where}
            )
        self.placement.update(slice_placement)
        for slice_id in dead_slices:
            self.home[slice_id] = new_home
        self.home_reassignments += 1
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("home.reassignments").inc()
        try:
            await self.transport.request(
                new_home,
                HOME_ASSIGN,
                {"slices": dead_slices, "placement": slice_placement},
                timeout=self.config.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # new home mid-crash: its restart path reassigns again
        await self._broadcast_home_map(live)

    async def _sync_placement_mirror(self, live: List[int]) -> None:
        """Refresh the mirror from the surviving homes' authority."""
        for peer in live:
            try:
                reply = await self.transport.request(
                    peer, HOME_STATE, timeout=self.config.request_timeout
                )
            except (TimeoutError, ConnectionLostError):
                continue
            for oid, where in reply.payload["placement"].items():
                self.placement[int(oid)] = where

    def _home_map_payload(self) -> Dict[str, Any]:
        return {"map": dict(self.home), "num_slices": self.num_slices}

    async def _send_home_map(self, node_id: int) -> None:
        try:
            await self.transport.request(
                node_id,
                HOME_MAP,
                self._home_map_payload(),
                timeout=self.config.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            pass

    async def _broadcast_home_map(
        self, targets: Optional[List[int]] = None
    ) -> None:
        await asyncio.gather(
            *(
                self._send_home_map(w)
                for w in (targets or self.worker_ids)
            )
        )

    async def _assign_homes(self) -> None:
        """Initial partition: slice ``i`` is homed at worker ``i+1``."""
        for slice_id in range(self.num_slices):
            node = self.worker_ids[slice_id % len(self.worker_ids)]
            self.home[slice_id] = node
        for node in self.worker_ids:
            slices = sorted(
                s for s, h in self.home.items() if h == node
            )
            placement = {
                oid: where
                for oid, where in self.placement.items()
                if oid % self.num_slices in set(slices)
            }
            self._log(
                wal_module.HOME_ASSIGN, {"slices": slices, "node": node}
            )
            await self.transport.request(
                node,
                HOME_ASSIGN,
                {"slices": slices, "placement": placement},
                timeout=self.config.request_timeout,
            )
        await self._broadcast_home_map()

    async def _wait_for_heartbeat(
        self, node_id: int, timeout: float = 10.0
    ) -> None:
        # ensure() at spawn stamps the node with the spawn time; only a
        # heartbeat actually received moves ``last`` past that baseline.
        baseline = self.history.last(node_id)
        deadline = self.clock.deadline(timeout)
        while not self.clock.expired(deadline):
            last = self.history.last(node_id)
            if last is not None and (baseline is None or last > baseline):
                return
            await asyncio.sleep(self.config.heartbeat_interval / 2)
        raise TimeoutError(
            f"worker {node_id} sent no heartbeat within {timeout}s of spawn"
        )

    # -- chaos ----------------------------------------------------------------

    async def _chaos_loop(self, started_at: float) -> None:
        for action in self.chaos.ordered():
            delay = (started_at + action.at) - self.clock.now()
            if delay > 0:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            if isinstance(action, KillSupervisor):
                # The arbiter dies with no goodbye: everything past
                # this line exists only because the WAL already has it.
                os.kill(os.getpid(), signal.SIGKILL)
            elif isinstance(action, LiveCrash):
                victim = action.node
                if victim is None or victim in self._restarting:
                    up = [
                        w
                        for w in self.worker_ids
                        if w not in self._restarting
                    ]
                    victim = up[0] if up else None
                sig = getattr(action, "sig", None) or signal.SIGKILL
                if victim is not None and self._kill_worker(victim, sig=sig):
                    self.crashes_delivered += 1
            elif isinstance(action, LivePartition):
                await self._broadcast_faults(
                    {"partitions": [list(g) for g in action.groups]}
                )
                await asyncio.sleep(action.duration)
                await self._broadcast_faults({"partitions": []})
            elif isinstance(action, LiveFaultWindow):
                await self._broadcast_faults(
                    {
                        "drop_rate": action.drop_rate,
                        "duplicate_rate": action.duplicate_rate,
                        "delay_range": action.delay_range,
                    }
                )
                await asyncio.sleep(action.duration)
                await self._broadcast_faults(
                    {
                        "drop_rate": 0.0,
                        "duplicate_rate": 0.0,
                        "delay_range": (0.0, 0.0),
                    }
                )

    async def _send_faults(self, node_id: int, config: Dict) -> None:
        try:
            await self.transport.request(
                node_id,
                SET_FAULTS,
                {"config": config},
                timeout=self.config.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # a worker mid-crash misses the memo; restart re-sends

    async def _broadcast_faults(self, config: Dict) -> None:
        self.faults_active = {**self.faults_active, **config}
        await asyncio.gather(
            *(self._send_faults(w, config) for w in self.worker_ids)
        )

    # -- run ------------------------------------------------------------------

    async def _start_workload(self, node_id: int) -> None:
        try:
            await self.transport.request(
                node_id,
                START,
                {
                    "num_objects": self.config.num_objects,
                    "think_time": self.config.think_time,
                    "invocations_per_block": self.config.invocations_per_block,
                },
                timeout=self.config.request_timeout,
            )
        except (TimeoutError, ConnectionLostError):
            pass  # monitor will flag the silent worker

    async def _poll_migrations(self) -> int:
        total = 0
        for node_id in self.worker_ids:
            if node_id in self._restarting:
                continue
            try:
                reply = await self.transport.request(
                    node_id, STATS, timeout=self.config.request_timeout
                )
                total += reply.payload["migrations"]
            except (TimeoutError, ConnectionLostError):
                pass
        return total

    # -- cross-process telemetry ----------------------------------------------

    def _setup_process_telemetry(self, incarnation: int) -> None:
        """Stand up this process's span writer and flight recorder.

        Called at the top of :meth:`run` *before* the transport starts,
        so the flight recorder observes every envelope this incarnation
        ever sees.  ``incarnation`` is the 0-based supervisor start
        count (pre-increment): 0 for a fresh supervisor, the
        predecessor count for a recovered one — the same number the
        demo runner used to band this process's span ids.
        """
        directory = self.config.telemetry_dir
        if directory is None or not self.telemetry.enabled:
            return
        self._sup_incarnation = incarnation
        self._writer = ProcessTelemetryWriter(
            self.telemetry,
            directory,
            SUPERVISOR,
            incarnation=incarnation,
            role="supervisor",
            mono_origin=self.clock.origin,
        )
        self.flight = FlightRecorder(
            SUPERVISOR,
            clock=self.clock,
            incarnation=incarnation,
            path=FlightRecorder.path_for(directory, SUPERVISOR, incarnation),
        )
        self.transport.observer = self.flight
        self.flight.record("state.up", recover=self.recover)

    def _attach_flight(self, node: int, incarnation: int, context: str) -> None:
        """Attach a dead process's flight-recorder dump to the report.

        Loads the post-mortem JSONL (written by the victim's SIGTERM
        handler, crash hook, or last periodic snapshot before a
        SIGKILL), keeps the full entry list for settlement
        cross-checks, and records a summary + ``flight.dump`` span so
        the merged trace marks where a post-mortem was consumed.
        """
        directory = self.config.telemetry_dir
        if directory is None or not self.telemetry.enabled:
            return
        key = (node, incarnation)
        if key in self._flight_entries:
            return
        path = FlightRecorder.path_for(directory, node, incarnation)
        try:
            header, entries = load_flight_dump(path)
        except (OSError, ValueError):
            return  # no dump on disk (e.g. killed before first snapshot)
        self._flight_entries[key] = entries
        self.flight_reports.append(
            {
                "node": node,
                "incarnation": incarnation,
                "context": context,
                "reason": header.get("reason"),
                "pid": header.get("pid"),
                "entries": len(entries),
                "path": path,
            }
        )
        span = self.telemetry.start_span(
            "flight.dump",
            node=SUPERVISOR,
            detached=True,
            reason=str(header.get("reason")),
            entries=len(entries),
        )
        self.telemetry.end_span(span, source_node=node, context=context)

    def _cross_check_settlement(self) -> None:
        """Corroborate in-doubt verdicts against flight evidence.

        For every settled in-doubt transfer, scan the attached dumps
        for envelopes/transitions naming that transfer id — what the
        dead process last saw either corroborates the WAL-replay
        verdict or flags it for the report reader.
        """
        if not self._flight_entries or not self._last_settlement_plan:
            return
        for verdict, transfer in self._last_settlement_plan:
            witnessed = []
            for (node, inc), entries in sorted(self._flight_entries.items()):
                for entry in entries:
                    if entry.get("transfer_id") == transfer.transfer_id:
                        witnessed.append(
                            {
                                "node": node,
                                "incarnation": inc,
                                "event": entry.get("event"),
                            }
                        )
            self._in_doubt_evidence[str(transfer.transfer_id)] = {
                "verdict": verdict,
                "object_id": transfer.object_id,
                "witnessed": witnessed,
                "corroborated": bool(witnessed),
            }

    def _finalize_telemetry(self) -> None:
        """Flush artifacts + write the run manifest (hub input)."""
        if self._writer is None:
            return
        directory = self.config.telemetry_dir
        try:
            if self.flight is not None:
                self.flight.dump(reason="exit")
            manifest = {
                "supervisor_origin": self.clock.origin,
                "supervisor_incarnation": self._sup_incarnation,
                "clock_offsets": (
                    self._clock_sync.export() if self._clock_sync else []
                ),
                "worker_pids": {
                    str(node): pid
                    for node, pid in sorted(self.worker_pids.items())
                },
            }
            path = os.path.join(directory, "manifest.json")
            tmp = path + ".tmp"
            with open(tmp, "w") as fh:
                json.dump(manifest, fh, sort_keys=True, indent=2)
            os.replace(tmp, path)
            self._writer.close()
        except OSError:
            pass  # telemetry must never take the control plane down

    # -- recovery -------------------------------------------------------------

    async def _recover(self) -> None:
        """Re-adopt the fleet after a supervisor crash.

        The workers are orphans of a dead process: still running,
        still heartbeating into the (until now) closed control socket.
        Wait for them to reconnect, settle the in-doubt transfer tail
        the WAL left us, and restart whoever never came back.
        """
        span = (
            self.telemetry.start_span("live.recover", node=SUPERVISOR)
            if self.telemetry.enabled
            else None
        )
        now = self.clock.now()
        for node_id in self.worker_ids:
            self.history.ensure(node_id, now)
        # Chaos state died with the predecessor: heal the data plane
        # so the recovered run is observable (dead workers ignored).
        await self._broadcast_faults(
            {
                "drop_rate": 0.0,
                "duplicate_rate": 0.0,
                "delay_range": (0.0, 0.0),
                "partitions": [],
            }
        )
        waits = await asyncio.gather(
            *(
                self._wait_for_heartbeat(
                    w, timeout=self.config.recovery_wait
                )
                for w in self.worker_ids
            ),
            return_exceptions=True,
        )
        dead = [
            w
            for w, outcome in zip(self.worker_ids, waits)
            if isinstance(outcome, BaseException)
        ]
        live = [w for w in self.worker_ids if w not in dead]
        # Give in-flight PLACE/ROLLBACK retries a beat to land — a
        # migration may legitimately commit *across* our crash — then
        # settle what is still in doubt.
        await asyncio.sleep(
            min(1.0, self.config.request_timeout)
        )
        inventories: Dict[int, Dict[str, Any]] = {}
        for peer in live:
            try:
                reply = await self.transport.request(
                    peer, INVENTORY, timeout=self.config.request_timeout
                )
                inventories[peer] = reply.payload
            except (TimeoutError, ConnectionLostError):
                dead.append(peer)
        # Post-mortems first: the predecessor supervisor's flight dump
        # and any dead worker's, so the in-doubt verdicts below can be
        # cross-checked against what those processes last witnessed.
        if self._sup_incarnation > 0:
            self._attach_flight(
                SUPERVISOR, self._sup_incarnation - 1, "supervisor-recovery"
            )
        for node_id in dead:
            self._attach_flight(
                node_id, self.incarnations[node_id], "recovery"
            )
        await self._settle_in_doubt(inventories)
        self._cross_check_settlement()
        self._grants_frozen = False
        if self.config.arbitration == "home":
            await self._broadcast_home_map(
                [w for w in live if w not in dead]
            )
        # Workloads survive with the workers; (re)start only the idle
        # (a supervisor killed before START leaves movers parked).
        for peer in [w for w in live if w not in dead]:
            try:
                reply = await self.transport.request(
                    peer, STATS, timeout=self.config.request_timeout
                )
                if reply.payload["attempts"] == 0:
                    await self._start_workload(peer)
            except (TimeoutError, ConnectionLostError):
                if peer not in dead:
                    dead.append(peer)
        for node_id in dead:
            if node_id not in self._restarting:
                self._restarting.add(node_id)
                asyncio.ensure_future(self._restart(node_id))
        if span is not None:
            self.telemetry.end_span(
                span,
                mode=self.config.arbitration,
                live=len(live),
                dead=len(dead),
            )

    def _plan_settlement(
        self, inventories: Dict[int, Dict[str, Any]]
    ) -> List[Tuple[str, Transfer]]:
        """Decide commit/revert/rollback for the in-doubt tail (pure).

        Only transfers minted by the *previous* incarnation are in
        doubt — anything newer was granted by us, post-replay, and its
        protocol is running normally.

        * ``pending`` in the WAL and still pending — no PLACE was
          logged, so the ok reply was never sent, so the destination
          can not have installed the object: roll back, restore the
          source's held-back copy.
        * ``pending`` in the WAL but placed *since* — the in-flight
          mover's PLACE landed during the recovery grace window and
          was served live against rebuilt state: not in doubt, skip.
        * ``placed`` in the WAL — the commit is logged but the ok
          reply may have died with us.  The destination's inventory is
          the tiebreak: object present → the commit went through,
          evict the source's copy; absent → the destination aborted,
          revert placement to the source and restore its copy.
        """
        plan: List[Tuple[str, Transfer]] = []
        for transfer in self.transfers.values():
            if transfer.transfer_id > self._recovered_max_transfer:
                continue
            wal_state = self._wal_states.get(transfer.transfer_id)
            if wal_state == "pending" and transfer.state == "pending":
                plan.append(("rollback", transfer))
            elif wal_state == "placed" and transfer.state == "placed":
                if self.placement.get(transfer.object_id) != transfer.dst:
                    continue  # superseded by a later settled move
                inventory = inventories.get(transfer.dst)
                if inventory is None:
                    # Destination dead or unreachable: placement stays
                    # authoritative; its restart re-seeds the object.
                    plan.append(("commit", transfer))
                elif transfer.object_id in {
                    int(oid) for oid in inventory["inventory"]
                }:
                    plan.append(("commit", transfer))
                else:
                    plan.append(("revert", transfer))
        return plan

    async def _settle_in_doubt(
        self, inventories: Dict[int, Dict[str, Any]]
    ) -> None:
        """Execute the settlement plan, journaling every decision."""
        plan = self._plan_settlement(inventories)
        self._last_settlement_plan = plan
        for verdict, transfer in plan:
            if verdict == "rollback":
                self._log(
                    wal_module.ROLLBACK,
                    {"transfer_id": transfer.transfer_id},
                )
                transfer.state = "rolled_back"
                self._notify(transfer.src, RESTORE, transfer)
                self._release_transfer_block(transfer)
                self.in_doubt_rolled_back += 1
            elif verdict == "revert":
                self._log(
                    wal_module.REVERT,
                    {"transfer_id": transfer.transfer_id},
                )
                transfer.state = "rolled_back"
                self.placement[transfer.object_id] = transfer.src
                self._notify(transfer.src, RESTORE, transfer)
                self._release_transfer_block(transfer)
                self.in_doubt_reverted += 1
            else:  # commit: make sure the source's copy is gone
                self._notify(transfer.src, EVICT, transfer)
                self.in_doubt_committed += 1

    def _release_transfer_block(self, transfer: Transfer) -> None:
        block = self.blocks.pop(transfer.block_id, None)
        if block is not None:
            self._log(wal_module.END, {"block_id": block.block_id})
            self.locks.release_block(block)

    # -- drain & audit --------------------------------------------------------

    async def _settle_transfers(self) -> None:
        """Resolve every transfer so no held-back copy survives drain.

        Called only after all workloads are quiesced: rolls back every
        still-pending transfer, then waits for the outstanding
        settlement notices (the transport's spawned deliver tasks) to
        land before the inventory snapshot.
        """
        for transfer in self.transfers.values():
            if transfer.state == "pending":
                self._log(
                    wal_module.ROLLBACK,
                    {"transfer_id": transfer.transfer_id},
                )
                transfer.state = "rolled_back"
                self._notify(transfer.src, RESTORE, transfer)
        deadline = self.clock.deadline(self.config.drain_timeout)
        while self._settlements and not self.clock.expired(deadline):
            await asyncio.sleep(0.05)

    async def _settle_homes(self) -> Tuple[int, List[str]]:
        """Drain-time settlement under home arbitration.

        Each home rolls back its pending transfers, releases leftover
        blocks and reports its authoritative placements; the union
        becomes the audit's expected placement.
        """
        leaked = 0
        violations: List[str] = []
        for node_id in self.worker_ids:
            try:
                reply = await self.transport.request(
                    node_id, SETTLE, timeout=self.config.drain_timeout
                )
            except (TimeoutError, ConnectionLostError):
                violations.append(
                    f"home {node_id} failed to settle before drain"
                )
                continue
            leaked += reply.payload["leaked_blocks"]
            violations.extend(reply.payload.get("lock_violations", ()))
            for oid, where in reply.payload["placement"].items():
                self.placement[int(oid)] = where
        return leaked, violations

    async def _drain(self) -> Dict[int, Dict[str, Any]]:
        """Phase 1 of shutdown: quiesce every workload *concurrently*.

        Draining sequentially would snapshot one node while the others
        keep pulling objects out of it; quiesce-all-first is what makes
        the later inventory audit race-free.

        A node that is unreachable (it crashed moments before the
        drain and its restart is still in flight) is retried within
        the drain deadline — the monitor keeps running during drain
        precisely so the respawn can complete, and ``_in_drain`` makes
        the respawned node come up parked so it drains trivially.
        """
        self._in_drain = True
        deadline = self.clock.deadline(self.config.drain_timeout)

        async def quiesce(node_id: int):
            while True:
                try:
                    reply = await self.transport.request(
                        node_id, DRAIN, timeout=self.config.drain_timeout
                    )
                    return node_id, reply.payload
                except (TimeoutError, ConnectionLostError):
                    if self.clock.expired(deadline):
                        raise
                    await asyncio.sleep(0.2)

        results = await asyncio.gather(
            *(quiesce(w) for w in self.worker_ids), return_exceptions=True
        )
        drained: Dict[int, Dict[str, Any]] = {}
        stuck: List[int] = []
        for node_id, outcome in zip(self.worker_ids, results):
            if isinstance(outcome, BaseException):
                stuck.append(node_id)
            else:
                drained[outcome[0]] = outcome[1]
        if stuck:
            raise DrainTimeoutError(
                "workers failed to drain",
                timeout=self.config.drain_timeout,
                pending=tuple(stuck),
            )
        return drained

    async def _inventories(self) -> Dict[int, Dict[str, Any]]:
        """Phase 3: race-free inventory snapshot of the quiesced fleet."""

        async def snapshot(node_id: int):
            reply = await self.transport.request(
                node_id, INVENTORY, timeout=self.config.drain_timeout
            )
            return node_id, reply.payload

        results = await asyncio.gather(
            *(snapshot(w) for w in self.worker_ids)
        )
        return dict(results)

    async def _reconcile_in_transit(
        self, inventories: Dict[int, Dict[str, Any]]
    ) -> bool:
        """Re-issue verdict notices for copies still held in transit.

        Settlement notices are fire-and-forget and individually
        retried, but the audit must not depend on every one having
        landed: the supervisor holds the authoritative verdict for
        every transfer it granted, so any copy a quiesced worker still
        reports in transit is re-told its outcome *synchronously* —
        EVICT if the transfer committed, RESTORE otherwise.  Returns
        whether any notice was sent (the caller re-snapshots then).
        """
        sent = False
        for node_id, payload in inventories.items():
            for tid_key in payload.get("in_transit", ()):
                transfer = self.transfers.get(int(tid_key))
                if transfer is None:
                    continue  # home-granted: its home settles it
                kind = EVICT if transfer.state == "placed" else RESTORE
                try:
                    await self.transport.request(
                        node_id,
                        kind,
                        {
                            "transfer_id": transfer.transfer_id,
                            "object_id": transfer.object_id,
                        },
                        timeout=self.config.request_timeout,
                    )
                    sent = True
                except (TimeoutError, ConnectionLostError):
                    pass
        return sent

    def _audit(self, inventories: Dict[int, Dict[str, Any]]) -> List[str]:
        """Placement + lock invariants; returns violation descriptions."""
        violations: List[str] = []
        seen: Dict[int, int] = {}
        for node_id, payload in inventories.items():
            for oid_key in payload["inventory"]:
                oid = int(oid_key)
                if oid in seen:
                    violations.append(
                        f"obj {oid} duplicated at nodes "
                        f"{seen[oid]} and {node_id}"
                    )
                seen[oid] = node_id
                if self.placement.get(oid) != node_id:
                    violations.append(
                        f"obj {oid} at node {node_id} but placement map "
                        f"says {self.placement.get(oid)}"
                    )
            if payload["in_transit"]:
                violations.append(
                    f"node {node_id} still holds in-transit copies "
                    f"{payload['in_transit']} after settlement"
                )
        missing = set(range(self.config.num_objects)) - set(seen)
        for oid in sorted(missing):
            violations.append(
                f"obj {oid} hosted nowhere (placement map says "
                f"{self.placement.get(oid)})"
            )
        try:
            self.locks.check_invariant()
        except AssertionError as exc:
            violations.append(f"lock invariant: {exc}")
        return violations

    async def run(self) -> Dict[str, Any]:
        """Drive one full supervised run; returns the measured report."""
        self.transport.handler = self.handle
        # Telemetry first so the flight recorder is observing before
        # the first envelope arrives.  supervisor_starts is still the
        # pre-increment value here: the 0-based incarnation number.
        self._setup_process_telemetry(self.supervisor_starts)
        own = self.peers[SUPERVISOR]
        if self.recover and own[0] == "unix" and os.path.exists(own[1]):
            os.unlink(own[1])  # the predecessor died holding the bind
        await self.transport.start()
        self.wal.open()
        if not self.recover:
            self._log(
                wal_module.INIT,
                {
                    "num_objects": self.config.num_objects,
                    "workers": self.worker_ids,
                    "arbitration": self.config.arbitration,
                    "num_slices": (
                        self.num_slices
                        if self.config.arbitration == "home"
                        else 0
                    ),
                    "placement": {
                        str(oid): node
                        for oid, node in self.placement.items()
                    },
                },
            )
        self._log(wal_module.SUPER_START, {})
        self.supervisor_starts += 1
        if self.recover:
            await self._recover()
        else:
            for node_id in self.worker_ids:
                self._spawn(node_id)
            await asyncio.gather(
                *(self._wait_for_heartbeat(w) for w in self.worker_ids)
            )
            if self.config.arbitration == "home":
                await self._assign_homes()
        monitor = asyncio.ensure_future(self._monitor_loop())
        started_at = self.clock.now()
        if not self.recover:
            await asyncio.gather(
                *(self._start_workload(w) for w in self.worker_ids)
            )
        chaos = asyncio.ensure_future(self._chaos_loop(started_at))
        deadline = started_at + self.config.max_duration
        try:
            while self.clock.now() < deadline:
                await asyncio.sleep(0.25)
                if (
                    chaos.done()
                    and not self._restarting
                    and await self._poll_migrations()
                    >= self.config.target_migrations
                ):
                    break
            try:
                await asyncio.wait_for(
                    chaos, max(0.1, deadline - self.clock.now())
                )
            except asyncio.TimeoutError:
                pass  # overrunning chaos is cut off; faults heal below
        finally:
            chaos.cancel()
        # Quiesce: stop chaos, heal the data plane, settle, drain.
        await self._broadcast_faults(
            {
                "drop_rate": 0.0,
                "duplicate_rate": 0.0,
                "delay_range": (0.0, 0.0),
                "partitions": [],
            }
        )
        drained = await self._drain()
        self._stopping = True
        monitor.cancel()
        leaked_blocks = 0
        home_violations: List[str] = []
        if self.config.arbitration == "home":
            leaked_blocks, home_violations = await self._settle_homes()
        await self._settle_transfers()
        # Workload is parked: release whatever blocks never saw END
        # (their END_REQUEST was lost to chaos) and audit.
        for block in list(self.blocks.values()):
            leaked_blocks += 1 if self.locks.release_block(block) else 0
        self.blocks.clear()
        inventories = await self._inventories()
        for _ in range(3):
            if not await self._reconcile_in_transit(inventories):
                break
            inventories = await self._inventories()
        violations = home_violations + self._audit(inventories)
        report = self._report(drained, violations, leaked_blocks)
        await self._shutdown_workers()
        await self.transport.close()
        self.wal.close()
        self._finalize_telemetry()
        return report

    async def _shutdown_workers(self) -> None:
        for node_id in self.worker_ids:
            try:
                await self.transport.request(
                    node_id, SHUTDOWN, timeout=self.config.request_timeout
                )
            except Exception:
                pass
        loop = asyncio.get_running_loop()
        for process in self.processes.values():
            await loop.run_in_executor(None, process.join, 5.0)
            if process.is_alive():
                process.kill()
        # Orphans adopted after a recovery have no handles — wait on
        # their pids briefly, then make sure they are gone.
        orphan_pids = [
            pid
            for node_id, pid in self.worker_pids.items()
            if node_id not in self.processes and pid
        ]
        deadline = self.clock.deadline(5.0)
        while orphan_pids and not self.clock.expired(deadline):
            still = []
            for pid in orphan_pids:
                try:
                    os.kill(pid, 0)
                    still.append(pid)
                except OSError:
                    pass
            orphan_pids = still
            if orphan_pids:
                await asyncio.sleep(0.1)
        for pid in orphan_pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass

    def _report(
        self,
        drained: Dict[int, Dict[str, Any]],
        violations: List[str],
        leaked_blocks: int,
    ) -> Dict[str, Any]:
        totals = {
            "attempts": 0,
            "granted": 0,
            "migrations": 0,
            "denied": 0,
            "aborted": 0,
            "invocations": 0,
            "remote_invocations": 0,
            "home_grants": 0,
            "home_denials": 0,
        }
        moved: Set[int] = set()
        latencies: List[float] = []
        frames_sent = self.transport.stats().get("frames_sent", 0)
        frames_received = self.transport.stats().get("frames_received", 0)
        for payload in drained.values():
            stats = payload["stats"]
            for key in totals:
                totals[key] += stats.get(key, 0)
            moved.update(stats["moved_object_ids"])
            latencies.extend(stats.get("transfer_latencies", ()))
            transport = payload.get("transport", {})
            frames_sent += transport.get("frames_sent", 0)
            frames_received += transport.get("frames_received", 0)
        if self.telemetry.enabled:
            metrics = self.telemetry.metrics
            metrics.counter("live.transport.frames_sent").inc(frames_sent)
            metrics.counter("live.transport.frames_received").inc(
                frames_received
            )
            histogram = metrics.histogram(
                "live.transfer.latency_s", buckets=LATENCY_BUCKETS
            )
            for latency in latencies:
                histogram.observe(latency)
            if self.config.arbitration == "home":
                metrics.counter("home.grants").inc(totals["home_grants"])
                metrics.counter("home.denials").inc(
                    totals["home_denials"]
                )
        attempts = max(1, totals["attempts"])
        report = {
            "workers": len(self.worker_ids),
            "objects": self.config.num_objects,
            "arbitration": self.config.arbitration,
            **totals,
            "distinct_objects_moved": len(moved),
            "conflict_rate": totals["denied"] / attempts,
            "abort_rate": totals["aborted"] / attempts,
            "crashes_injected": self.chaos.crashes,
            "crashes_delivered": self.crashes_delivered,
            "partitions_injected": self.chaos.partitions,
            "supervisor_kills_injected": self.chaos.supervisor_kills,
            "restarts": self.restarts,
            "leases_broken": self.leases_broken_total,
            "leaked_blocks_released": leaked_blocks,
            "home_reassignments": self.home_reassignments,
            "supervisor_incarnation": self.supervisor_starts,
            "in_doubt": {
                "committed": self.in_doubt_committed,
                "rolled_back": self.in_doubt_rolled_back,
                "reverted": self.in_doubt_reverted,
            },
            "wal": {
                "path": self.wal_path,
                "records_appended": self.wal.appended,
            },
            "transfer_latency_samples": len(latencies),
            "transfer_latency_mean_s": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "invariant_violations": violations,
            "transport": self.transport.stats(),
        }
        if self._in_doubt_evidence:
            report["in_doubt"]["flight_evidence"] = dict(
                self._in_doubt_evidence
            )
        if self.config.telemetry_dir is not None and self.telemetry.enabled:
            report["telemetry"] = {
                "dir": self.config.telemetry_dir,
                "supervisor_incarnation": self._sup_incarnation,
                "worker_pids": dict(sorted(self.worker_pids.items())),
                "clock_offsets": (
                    self._clock_sync.export() if self._clock_sync else []
                ),
                "flight_dumps": list(self.flight_reports),
            }
        if self.telemetry.enabled:
            report["metrics"] = self.telemetry.metrics.snapshot()
        return report


__all__ = [
    "ARBITRATION_MODES",
    "LATENCY_BUCKETS",
    "NodeSupervisor",
    "SupervisorConfig",
    "Transfer",
]
