"""NodeSupervisor: spawn, arbitrate, detect, restart, drain.

The supervisor is the live deployment's control plane, running in the
parent OS process under node id
:data:`~repro.runtime.live.wire.SUPERVISOR`.  It plays four roles:

**Arbiter.**  The paper's place-policy decision (§3.2) runs here
against the *real* :class:`~repro.core.locking.LockManager` on a
:class:`~repro.runtime.clock.WallClock` — the same lock/lease/break
code the sim exercises, now over wall time.  Every move-block is a
real :class:`~repro.core.moveblock.MoveBlock`.  The supervisor is also
the placement linearization point: a migration commits only when the
destination's ``PLACE`` passes the transfer fence, so a lost ack or a
partition can delay a migration but never duplicate an object.

**Failure detector.**  Workers heartbeat over the control plane; the
supervisor feeds :class:`~repro.runtime.failure.HeartbeatHistory`
(phi-accrual or fixed-timeout — PR 4's math, wall-clock intervals) and
cross-checks OS-level process liveness.

**Restart with lease recovery.**  A dead worker's in-flight blocks are
reclaimed via ``LockManager.break_crashed`` — broken blocks are barred
forever, so a zombie's late ``PLACE`` or lease renewal cannot
resurrect exclusivity.  The node is respawned and re-seeded with the
objects the placement map assigns it.

**Drain.**  Graceful shutdown asks each worker to finish its in-flight
block and report stats + inventory under a hard deadline
(:class:`~repro.errors.DrainTimeoutError` otherwise); the inventories
are then audited against the placement map — every object exactly
once, exactly where the map says.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.availability.livechaos import (
    LiveChaosSchedule,
    LiveCrash,
    LiveFaultWindow,
    LivePartition,
)
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import DrainTimeoutError, TimeoutError
from repro.runtime.clock import WallClock
from repro.runtime.failure import HeartbeatHistory
from repro.runtime.live.node import LiveObject, worker_main
from repro.runtime.live.transport import AsyncioTransport, unix_supported
from repro.runtime.live.wire import (
    DRAIN,
    END_REQUEST,
    EVICT,
    HEARTBEAT,
    INVENTORY,
    LOCATE,
    MOVE_REQUEST,
    PLACE,
    ROLLBACK,
    SEED,
    SET_FAULTS,
    SHUTDOWN,
    START,
    STATS,
    SUPERVISOR,
    Envelope,
)


@dataclass
class SupervisorConfig:
    """Everything one live run needs, picklable and explicit."""

    num_nodes: int = 3
    num_objects: int = 120
    heartbeat_interval: float = 0.1
    #: Fixed-timeout fallback when ``phi_threshold`` is None.
    heartbeat_timeout: float = 1.0
    phi_threshold: Optional[float] = 8.0
    lease_duration: float = 5.0
    request_timeout: float = 3.0
    drain_timeout: float = 10.0
    #: Workload knobs forwarded to the workers' START message.
    think_time: float = 0.002
    invocations_per_block: int = 3
    #: Stop once this many migrations were measured (or at deadline).
    target_migrations: int = 250
    max_duration: float = 20.0
    rng_seed: int = 0
    socket_dir: Optional[str] = None

    def validate(self) -> None:
        """Reject non-positive sizes, intervals and budgets."""
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.num_objects < 1:
            raise ValueError(
                f"num_objects must be >= 1, got {self.num_objects}"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.max_duration <= 0:
            raise ValueError("max_duration must be positive")


@dataclass
class Transfer:
    """One in-flight object transfer, fenced by id."""

    transfer_id: int
    object_id: int
    src: int
    dst: int
    block_id: int
    state: str = "pending"  # pending | placed | rolled_back | failed


class _CrashedSet:
    """``health`` adapter for ``LockManager.break_crashed``."""

    def __init__(self):
        self.down: Set[int] = set()

    def is_down(self, node_id: int) -> bool:
        return node_id in self.down


class NodeSupervisor:
    """Control plane for one live multi-process deployment."""

    def __init__(
        self,
        config: SupervisorConfig,
        chaos: Optional[LiveChaosSchedule] = None,
    ):
        config.validate()
        if chaos is not None:
            chaos.validate()
        self.config = config
        self.chaos = chaos or LiveChaosSchedule()
        self.clock = WallClock()
        self.socket_dir = config.socket_dir or tempfile.mkdtemp(
            prefix="repro-live-"
        )
        self.worker_ids = list(range(1, config.num_nodes + 1))
        self.peers = self._address_map()
        self.transport = AsyncioTransport(
            SUPERVISOR,
            self.peers[SUPERVISOR],
            self.peers,
            clock=self.clock,
            jitter_seed=config.rng_seed,
        )
        # The paper's lock machinery, verbatim, on wall time.
        self.locks = LockManager(
            clock=self.clock, lease_duration=config.lease_duration
        )
        self.records: Dict[int, LiveObject] = {
            oid: LiveObject(oid) for oid in range(config.num_objects)
        }
        #: object id -> node currently hosting it (the authority).
        self.placement: Dict[int, int] = {
            oid: self.worker_ids[oid % len(self.worker_ids)]
            for oid in range(config.num_objects)
        }
        self.blocks: Dict[int, MoveBlock] = {}
        self.transfers: Dict[int, Transfer] = {}
        self._transfer_ids = itertools.count(1)
        self.history = HeartbeatHistory(
            interval=config.heartbeat_interval,
            timeout=config.heartbeat_timeout,
            phi_threshold=config.phi_threshold,
        )
        self.health = _CrashedSet()
        self.processes: Dict[int, multiprocessing.process.BaseProcess] = {}
        self._mp = multiprocessing.get_context("spawn")
        self._restarting: Set[int] = set()
        #: node id -> how many times it has been (re)spawned.
        self.incarnations: Dict[int, int] = {w: 0 for w in self.worker_ids}
        # Run ledger.
        self.restarts = 0
        self.crashes_seen = 0
        self.leases_broken_total = 0
        self.conflicts = 0
        self.grants = 0
        self.faults_active: Dict[str, Any] = {}
        self._settlements: Set = set()
        self._stopping = False

    # -- wiring ---------------------------------------------------------------

    def _address_map(self) -> Dict[int, Tuple]:
        if unix_supported():
            return {
                node: ("unix", os.path.join(self.socket_dir, f"n{node}.sock"))
                for node in [SUPERVISOR] + self.worker_ids
            }
        base = 43500 + (os.getpid() % 1000)
        return {
            node: ("tcp", "127.0.0.1", base + node + 1)
            for node in [SUPERVISOR] + self.worker_ids
        }

    def _seed_states(self, node_id: int) -> List[Dict[str, Any]]:
        return [
            LiveObject(oid).state()
            for oid, where in sorted(self.placement.items())
            if where == node_id
        ]

    def _spawn(self, node_id: int) -> None:
        address = self.peers[node_id]
        if address[0] == "unix" and os.path.exists(address[1]):
            os.unlink(address[1])  # stale socket from a crashed worker
        process = self._mp.Process(
            target=worker_main,
            args=(
                node_id,
                address,
                self.peers,
                self._seed_states(node_id),
                self.config.heartbeat_interval,
                self.config.request_timeout,
                self.config.rng_seed * 1000 + node_id,
                self.incarnations[node_id],
            ),
            daemon=True,
        )
        process.start()
        self.processes[node_id] = process
        self.history.ensure(node_id, self.clock.now())

    # -- inbound control plane ------------------------------------------------

    async def handle(self, envelope: Envelope) -> None:
        """Dispatch one inbound worker message to its protocol serve."""
        kind = envelope.kind
        if kind == HEARTBEAT:
            self.history.record(envelope.src, self.clock.now())
        elif kind == MOVE_REQUEST:
            await self._serve_move_request(envelope)
        elif kind == PLACE:
            await self._serve_place(envelope)
        elif kind == ROLLBACK:
            await self._serve_rollback(envelope)
        elif kind == END_REQUEST:
            block = self.blocks.pop(envelope.payload["block_id"], None)
            released = self.locks.release_block(block) if block else 0
            await self.transport.reply(envelope, {"released": released})
        elif kind == LOCATE:
            oid = envelope.payload["object_id"]
            await self.transport.reply(
                envelope, {"location": self.placement.get(oid)}
            )

    async def _serve_move_request(self, envelope: Envelope) -> None:
        """§3.2 at the arbiter: grant the lock or answer "locked"."""
        mover = envelope.src
        object_id = envelope.payload["object_id"]
        record = self.records[object_id]
        if self.locks.is_locked(record):
            self.conflicts += 1
            await self.transport.reply(
                envelope,
                {"granted": False, "location": self.placement[object_id]},
            )
            return
        block = MoveBlock(client_node=mover, target=record)
        try:
            self.locks.lock(record, block)
        except Exception:
            # e.g. a broken (crash-suspected) mover retrying: deny.
            self.conflicts += 1
            await self.transport.reply(
                envelope,
                {"granted": False, "location": self.placement[object_id]},
            )
            return
        self.grants += 1
        self.blocks[block.block_id] = block
        source = self.placement[object_id]
        transfer_id = None
        if source != mover:
            transfer_id = next(self._transfer_ids)
            self.transfers[transfer_id] = Transfer(
                transfer_id, object_id, source, mover, block.block_id
            )
        await self.transport.reply(
            envelope,
            {
                "granted": True,
                "source": source,
                "block_id": block.block_id,
                "transfer_id": transfer_id,
            },
        )

    async def _serve_place(self, envelope: Envelope) -> None:
        """The linearization point: commit or fence out a transfer."""
        transfer = self.transfers.get(envelope.payload["transfer_id"])
        ok = (
            transfer is not None
            and transfer.state == "pending"
            and transfer.dst == envelope.src
            and transfer.block_id in self.blocks
            and not self.locks.was_broken(self.blocks[transfer.block_id])
        )
        if ok:
            transfer.state = "placed"
            self.placement[transfer.object_id] = transfer.dst
            self._notify(transfer.src, EVICT, transfer)
        await self.transport.reply(envelope, {"ok": ok})

    async def _serve_rollback(self, envelope: Envelope) -> None:
        """Abort a transfer: the source's held-back copy is restored."""
        transfer = self.transfers.get(envelope.payload["transfer_id"])
        ok = transfer is not None and transfer.state == "pending"
        if ok:
            transfer.state = "rolled_back"
            self._notify(transfer.src, ROLLBACK, transfer)
        await self.transport.reply(envelope, {"ok": ok})

    def _notify(self, node: int, kind: str, transfer: Transfer) -> None:
        """Fire-and-forget settlement notice to a transfer's source."""

        async def deliver():
            try:
                await self.transport.request(
                    node,
                    kind,
                    {
                        "transfer_id": transfer.transfer_id,
                        "object_id": transfer.object_id,
                    },
                    timeout=self.config.request_timeout,
                )
            except Exception:
                pass  # crashed source: its state is re-seeded anyway

        task = asyncio.ensure_future(deliver())
        self._settlements.add(task)
        task.add_done_callback(self._settlements.discard)

    # -- failure detection & restart ------------------------------------------

    async def _monitor_loop(self) -> None:
        tick = self.config.heartbeat_interval / 2
        while not self._stopping:
            now = self.clock.now()
            for node_id in self.worker_ids:
                if node_id in self._restarting:
                    continue
                process = self.processes.get(node_id)
                dead_process = process is not None and not process.is_alive()
                suspected = self.history.is_down(node_id, now)
                if dead_process or suspected:
                    self._restarting.add(node_id)
                    asyncio.ensure_future(self._restart(node_id))
            await asyncio.sleep(tick)

    async def _restart(self, node_id: int) -> None:
        """Crash recovery: break leases, settle transfers, respawn.

        Never leaves the node stuck in the restarting set: if the
        respawn itself fails (no heartbeat in time), the monitor sees
        the dead process and tries again.
        """
        try:
            await self._restart_inner(node_id)
        except TimeoutError:
            pass
        finally:
            self._restarting.discard(node_id)

    async def _restart_inner(self, node_id: int) -> None:
        self.crashes_seen += 1
        self.health.down.add(node_id)
        # PR 4 -> PR 2 seam: reclaim every lock the dead mover held.
        # Its blocks are barred forever; a zombie's late PLACE is
        # rejected by the fence in _serve_place.
        self.leases_broken_total += self.locks.break_crashed(self.health)
        for transfer in self.transfers.values():
            if transfer.state != "pending":
                continue
            if transfer.dst == node_id:
                # Destination died mid-pull: restore the source's copy.
                transfer.state = "rolled_back"
                self._notify(transfer.src, ROLLBACK, transfer)
            elif transfer.src == node_id:
                # Source died holding the held-back copy: the state is
                # lost; fence the destination out and re-seed on
                # restart.  Placement never moved, so no duplicate.
                transfer.state = "failed"
        stale = self.transport._writers.pop(node_id, None)
        if stale is not None:
            stale.close()
        process = self.processes.get(node_id)
        if process is not None:
            process.kill()
            await asyncio.get_running_loop().run_in_executor(
                None, process.join, 5.0
            )
        self.history.forget(node_id)
        self.health.down.discard(node_id)
        self.incarnations[node_id] += 1
        self._spawn(node_id)
        await self._wait_for_heartbeat(node_id)
        if self.faults_active:
            await self._send_faults(node_id, self.faults_active)
        await self._start_workload(node_id)
        self.restarts += 1

    async def _wait_for_heartbeat(
        self, node_id: int, timeout: float = 10.0
    ) -> None:
        # ensure() at spawn stamps the node with the spawn time; only a
        # heartbeat actually received moves ``last`` past that baseline.
        baseline = self.history.last(node_id)
        deadline = self.clock.deadline(timeout)
        while not self.clock.expired(deadline):
            last = self.history.last(node_id)
            if last is not None and (baseline is None or last > baseline):
                return
            await asyncio.sleep(self.config.heartbeat_interval / 2)
        raise TimeoutError(
            f"worker {node_id} sent no heartbeat within {timeout}s of spawn"
        )

    # -- chaos ----------------------------------------------------------------

    async def _chaos_loop(self, started_at: float) -> None:
        for action in self.chaos.ordered():
            delay = (started_at + action.at) - self.clock.now()
            if delay > 0:
                await asyncio.sleep(delay)
            if self._stopping:
                return
            if isinstance(action, LiveCrash):
                victim = action.node
                if victim is None or victim in self._restarting:
                    up = [
                        w
                        for w in self.worker_ids
                        if w not in self._restarting
                    ]
                    victim = up[0] if up else None
                if victim is not None:
                    self.processes[victim].kill()
            elif isinstance(action, LivePartition):
                await self._broadcast_faults(
                    {"partitions": [list(g) for g in action.groups]}
                )
                await asyncio.sleep(action.duration)
                await self._broadcast_faults({"partitions": []})
            elif isinstance(action, LiveFaultWindow):
                await self._broadcast_faults(
                    {
                        "drop_rate": action.drop_rate,
                        "duplicate_rate": action.duplicate_rate,
                        "delay_range": action.delay_range,
                    }
                )
                await asyncio.sleep(action.duration)
                await self._broadcast_faults(
                    {
                        "drop_rate": 0.0,
                        "duplicate_rate": 0.0,
                        "delay_range": (0.0, 0.0),
                    }
                )

    async def _send_faults(self, node_id: int, config: Dict) -> None:
        try:
            await self.transport.request(
                node_id,
                SET_FAULTS,
                {"config": config},
                timeout=self.config.request_timeout,
            )
        except TimeoutError:
            pass  # a worker mid-crash misses the memo; restart re-sends

    async def _broadcast_faults(self, config: Dict) -> None:
        self.faults_active = {**self.faults_active, **config}
        await asyncio.gather(
            *(self._send_faults(w, config) for w in self.worker_ids)
        )

    # -- run ------------------------------------------------------------------

    async def _start_workload(self, node_id: int) -> None:
        try:
            await self.transport.request(
                node_id,
                START,
                {
                    "num_objects": self.config.num_objects,
                    "think_time": self.config.think_time,
                    "invocations_per_block": self.config.invocations_per_block,
                },
                timeout=self.config.request_timeout,
            )
        except TimeoutError:
            pass  # monitor will flag the silent worker

    async def _poll_migrations(self) -> int:
        total = 0
        for node_id in self.worker_ids:
            if node_id in self._restarting:
                continue
            try:
                reply = await self.transport.request(
                    node_id, STATS, timeout=self.config.request_timeout
                )
                total += reply.payload["migrations"]
            except TimeoutError:
                pass
        return total

    async def _settle_transfers(self) -> None:
        """Resolve every transfer so no held-back copy survives drain.

        Called only after all workloads are quiesced: rolls back every
        still-pending transfer, then waits for the outstanding
        settlement notices (the transport's spawned deliver tasks) to
        land before the inventory snapshot.
        """
        for transfer in self.transfers.values():
            if transfer.state == "pending":
                transfer.state = "rolled_back"
                self._notify(transfer.src, ROLLBACK, transfer)
        deadline = self.clock.deadline(self.config.drain_timeout)
        while self._settlements and not self.clock.expired(deadline):
            await asyncio.sleep(0.05)

    async def _drain(self) -> Dict[int, Dict[str, Any]]:
        """Phase 1 of shutdown: quiesce every workload *concurrently*.

        Draining sequentially would snapshot one node while the others
        keep pulling objects out of it; quiesce-all-first is what makes
        the later inventory audit race-free.
        """

        async def quiesce(node_id: int):
            reply = await self.transport.request(
                node_id, DRAIN, timeout=self.config.drain_timeout
            )
            return node_id, reply.payload

        results = await asyncio.gather(
            *(quiesce(w) for w in self.worker_ids), return_exceptions=True
        )
        drained: Dict[int, Dict[str, Any]] = {}
        stuck: List[int] = []
        for node_id, outcome in zip(self.worker_ids, results):
            if isinstance(outcome, BaseException):
                stuck.append(node_id)
            else:
                drained[outcome[0]] = outcome[1]
        if stuck:
            raise DrainTimeoutError(
                "workers failed to drain",
                timeout=self.config.drain_timeout,
                pending=tuple(stuck),
            )
        return drained

    async def _inventories(self) -> Dict[int, Dict[str, Any]]:
        """Phase 3: race-free inventory snapshot of the quiesced fleet."""

        async def snapshot(node_id: int):
            reply = await self.transport.request(
                node_id, INVENTORY, timeout=self.config.drain_timeout
            )
            return node_id, reply.payload

        results = await asyncio.gather(
            *(snapshot(w) for w in self.worker_ids)
        )
        return dict(results)

    def _audit(self, inventories: Dict[int, Dict[str, Any]]) -> List[str]:
        """Placement + lock invariants; returns violation descriptions."""
        violations: List[str] = []
        seen: Dict[int, int] = {}
        for node_id, payload in inventories.items():
            for oid_key in payload["inventory"]:
                oid = int(oid_key)
                if oid in seen:
                    violations.append(
                        f"obj {oid} duplicated at nodes "
                        f"{seen[oid]} and {node_id}"
                    )
                seen[oid] = node_id
                if self.placement.get(oid) != node_id:
                    violations.append(
                        f"obj {oid} at node {node_id} but placement map "
                        f"says {self.placement.get(oid)}"
                    )
            if payload["in_transit"]:
                violations.append(
                    f"node {node_id} still holds in-transit copies "
                    f"{payload['in_transit']} after settlement"
                )
        missing = set(range(self.config.num_objects)) - set(seen)
        for oid in sorted(missing):
            violations.append(
                f"obj {oid} hosted nowhere (placement map says "
                f"{self.placement.get(oid)})"
            )
        try:
            self.locks.check_invariant()
        except AssertionError as exc:
            violations.append(f"lock invariant: {exc}")
        return violations

    async def run(self) -> Dict[str, Any]:
        """Drive one full supervised run; returns the measured report."""
        self.transport.handler = self.handle
        await self.transport.start()
        for node_id in self.worker_ids:
            self._spawn(node_id)
        await asyncio.gather(
            *(self._wait_for_heartbeat(w) for w in self.worker_ids)
        )
        monitor = asyncio.ensure_future(self._monitor_loop())
        started_at = self.clock.now()
        await asyncio.gather(
            *(self._start_workload(w) for w in self.worker_ids)
        )
        chaos = asyncio.ensure_future(self._chaos_loop(started_at))
        deadline = started_at + self.config.max_duration
        try:
            while self.clock.now() < deadline:
                await asyncio.sleep(0.25)
                if (
                    chaos.done()
                    and not self._restarting
                    and await self._poll_migrations()
                    >= self.config.target_migrations
                ):
                    break
            try:
                await asyncio.wait_for(
                    chaos, max(0.1, deadline - self.clock.now())
                )
            except asyncio.TimeoutError:
                pass  # overrunning chaos is cut off; faults heal below
        finally:
            chaos.cancel()
        # Quiesce: stop chaos, heal the data plane, settle, drain.
        await self._broadcast_faults(
            {
                "drop_rate": 0.0,
                "duplicate_rate": 0.0,
                "delay_range": (0.0, 0.0),
                "partitions": [],
            }
        )
        drained = await self._drain()
        self._stopping = True
        monitor.cancel()
        await self._settle_transfers()
        # Workload is parked: release whatever blocks never saw END
        # (their END_REQUEST was lost to chaos) and audit.
        leaked_blocks = 0
        for block in list(self.blocks.values()):
            leaked_blocks += 1 if self.locks.release_block(block) else 0
        self.blocks.clear()
        violations = self._audit(await self._inventories())
        report = self._report(drained, violations, leaked_blocks)
        await self._shutdown_workers()
        await self.transport.close()
        return report

    async def _shutdown_workers(self) -> None:
        for node_id in self.worker_ids:
            try:
                await self.transport.request(
                    node_id, SHUTDOWN, timeout=self.config.request_timeout
                )
            except Exception:
                pass
        for process in self.processes.values():
            await asyncio.get_running_loop().run_in_executor(
                None, process.join, 5.0
            )
            if process.is_alive():
                process.kill()

    def _report(
        self,
        drained: Dict[int, Dict[str, Any]],
        violations: List[str],
        leaked_blocks: int,
    ) -> Dict[str, Any]:
        totals = {
            "attempts": 0,
            "granted": 0,
            "migrations": 0,
            "denied": 0,
            "aborted": 0,
            "invocations": 0,
            "remote_invocations": 0,
        }
        moved: Set[int] = set()
        for payload in drained.values():
            stats = payload["stats"]
            for key in totals:
                totals[key] += stats[key]
            moved.update(stats["moved_object_ids"])
        attempts = max(1, totals["attempts"])
        return {
            "workers": len(self.worker_ids),
            "objects": self.config.num_objects,
            **totals,
            "distinct_objects_moved": len(moved),
            "conflict_rate": totals["denied"] / attempts,
            "abort_rate": totals["aborted"] / attempts,
            "crashes_injected": self.chaos.crashes,
            "partitions_injected": self.chaos.partitions,
            "restarts": self.restarts,
            "leases_broken": self.leases_broken_total,
            "leaked_blocks_released": leaked_blocks,
            "invariant_violations": violations,
            "transport": self.transport.stats(),
        }


__all__ = ["NodeSupervisor", "SupervisorConfig", "Transfer"]
