"""The :class:`Clock` seam: one time authority per backend.

The migration protocol (place-policy locks and leases, retry backoff,
heartbeat suspicion) is pure logic over *timestamps* — it never cares
whether time advances because a discrete-event kernel popped the next
event or because the operating system's clock ticked.  This module
makes that seam explicit:

* :class:`SimClock` wraps a simulation
  :class:`~repro.sim.kernel.Environment`; ``now()`` is simulated time
  and ``sleep()`` hands out the kernel's pooled timeout event (to be
  ``yield``-ed inside a simulation process).  It adds nothing on top of
  the environment, so running the sim backend "through the seam" is
  bit-identical to touching the environment directly.
* :class:`WallClock` reads the operating system's monotonic clock;
  ``sleep()`` returns an ``asyncio`` coroutine.  This is the live
  backend's time authority (:mod:`repro.runtime.live`).

Protocol code written against the seam only ever calls ``now()`` /
``deadline()`` — the backend-native *waiting* primitive returned by
``sleep()`` is consumed by the backend's own driver (a simulation
process or an asyncio task), never by shared code.  That keeps the
generator/coroutine divide out of the protocol logic entirely: the same
:class:`~repro.core.locking.LockManager` lease arithmetic runs under
either clock unchanged.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Environment


class Clock(ABC):
    """Minimal time authority the shared protocol code depends on."""

    @abstractmethod
    def now(self) -> float:
        """Current time in this backend's unit (seconds or sim units)."""

    @abstractmethod
    def sleep(self, duration: float):
        """Backend-native waiting primitive for ``duration``.

        Sim backend: an :class:`~repro.sim.events.Event` to ``yield``
        inside a simulation process.  Live backend: an awaitable.
        Shared protocol code never consumes the result — only the
        backend's driver does.
        """

    def deadline(self, timeout: float) -> float:
        """Absolute expiry time for a relative ``timeout`` from now."""
        return self.now() + timeout

    def expired(self, deadline: float) -> bool:
        """Whether the absolute ``deadline`` has passed."""
        return self.now() >= deadline


class SimClock(Clock):
    """Simulated time: a thin view over an :class:`Environment`.

    ``sleep`` delegates to the kernel's pooled :meth:`Environment.sleep`
    fast path, so protocol code driven through a ``SimClock`` schedules
    exactly the events it scheduled before the seam existed — the
    golden determinism tests hold bit-identically.
    """

    __slots__ = ("env",)

    def __init__(self, env: "Environment"):
        self.env = env

    def now(self) -> float:
        return self.env.now

    def sleep(self, duration: float):
        return self.env.sleep(duration)

    def __repr__(self) -> str:
        return f"<SimClock t={self.env.now:.3f}>"


class WallClock(Clock):
    """Wall-clock time for the live backend.

    Reads ``time.monotonic()`` so suspicion timeouts and lease expiry
    are immune to system-time jumps, and rebases to 0 at construction
    so live timestamps read like simulation timestamps (small floats
    from run start).  ``sleep`` returns an ``asyncio.sleep`` coroutine.
    """

    __slots__ = ("_origin",)

    def __init__(self):
        import time

        self._origin = time.monotonic()

    def now(self) -> float:
        import time

        return time.monotonic() - self._origin

    @property
    def origin(self) -> float:
        """This clock's zero point on the machine-wide monotonic axis.

        ``CLOCK_MONOTONIC`` is shared by every process on the machine,
        so ``origin_a - origin_b`` is the exact shift between two live
        processes' rebased timelines — the telemetry hub uses it to
        align per-process trace files when merging.
        """
        return self._origin

    def sleep(self, duration: float):
        import asyncio

        return asyncio.sleep(max(0.0, duration))

    def __repr__(self) -> str:
        return f"<WallClock t={self.now():.3f}>"


__all__ = ["Clock", "SimClock", "WallClock"]
