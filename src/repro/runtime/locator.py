"""Object-location strategies.

§4.1 lists the classic alternatives — name-server lookup [ChC91],
forward addressing [JLH+88], broadcast [DLA+91] and immediate update
[Dec86] — and then *neglects* them: the paper folds location cost into
the normalized Exp(1) invocation latency.  We implement all four so the
normalization can be checked (``benchmarks/bench_ablation_locator.py``):
each locator yields the *extra* latency a caller spends learning the
current location before sending the actual request.

The registry itself is always authoritative; locators only model the
protocol cost of querying it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, List, Tuple

from repro.errors import NodeCrashedError
from repro.network.network import Network
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment


class Locator(ABC):
    """Strategy for a caller to learn an object's current node."""

    #: Registry name used by experiment configs.
    name = "abstract"

    def __init__(self, env: Environment, network: Network):
        self.env = env
        self.network = network
        #: Extra messages spent on location traffic.
        self.lookup_messages = 0

    @abstractmethod
    def locate(
        self, caller_node: int, obj: DistributedObject
    ) -> Generator:
        """Process fragment spending the lookup cost; returns node id."""

    def note_migration(self, obj: DistributedObject, target_node: int) -> None:
        """Hook invoked by the migration service after each move."""


class ImmediateUpdateLocator(Locator):
    """Every node learns every move immediately — zero lookup cost.

    This is the paper's effective model: location knowledge is free and
    current, so the only costs are invocation and migration latencies.
    """

    name = "immediate"

    def locate(self, caller_node: int, obj: DistributedObject) -> Generator:
        return obj.node_id
        yield  # pragma: no cover - makes this a generator function


class NameServerLocator(Locator):
    """A central name server resolves locations.

    Each lookup from a node other than the server's costs a round trip
    to the name-server node.  A co-located caller pays nothing.
    """

    name = "nameserver"

    def __init__(self, env: Environment, network: Network, server_node: int = 0):
        super().__init__(env, network)
        self.server_node = server_node

    def locate(self, caller_node: int, obj: DistributedObject) -> Generator:
        if caller_node != self.server_node:
            self.lookup_messages += 2
            yield from self.network.round_trip(caller_node, self.server_node)
        return obj.node_id


class ForwardingLocator(Locator):
    """Stale stubs with forwarding addresses (Emerald style).

    Each node remembers where it last found each object; a lookup
    follows one forwarding hop per migration that happened since,
    capped to the object's true location.  The caller's knowledge is
    refreshed by the lookup.

    Chain compaction and crash repair
    --------------------------------
    The locator tracks the *actual* chain of homes per object (one
    entry per migration) and, per chain position, a forwarding pointer.
    A successful lookup **compacts** the portion of the chain it
    traversed: every forwarder on the path is updated to point directly
    at the object's current home, so the next stale caller entering the
    chain anywhere on that stretch pays a single hop instead of
    re-walking it.

    Traversal is bounded by ``max_hops``; and when a ``health``
    provider is installed (the ground-truth
    :class:`~repro.availability.faults.FaultInjector` or a heartbeat
    :class:`~repro.runtime.failure.FailureDetector`), a chain whose
    next forwarder is hosted on a crashed/suspected node raises
    :class:`~repro.errors.NodeCrashedError` instead of hanging on a
    dead participant — the caller falls back to a fresh (authoritative)
    lookup path or retries later.
    """

    name = "forwarding"

    def __init__(
        self,
        env: Environment,
        network: Network,
        max_hops: int = 16,
        health=None,
    ):
        super().__init__(env, network)
        self.max_hops = max_hops
        #: Optional node-health provider (``is_down(node_id)``); chain
        #: traversal refuses to hop through a node it reports down.
        self.health = health
        #: (caller_node, object_id) -> (move_seq seen, node seen)
        self._known: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: object_id -> monotonically increasing move sequence number
        self._move_seq: Dict[int, int] = {}
        #: object_id -> home after the i-th migration (chain[i-1]).
        self._chain: Dict[int, List[int]] = {}
        #: object_id -> forwarding pointer per chain position: the
        #: position ``jump[p]`` that position ``p`` forwards to
        #: (initially ``p + 1``; compaction moves it forward).
        self._jump: Dict[int, List[int]] = {}
        #: Number of chain stretches collapsed after successful locates.
        self.chains_compacted = 0
        #: Forwarding hops followed by the most recent :meth:`locate`
        #: (telemetry tags its ``locate`` spans with this).
        self.last_hops = 0

    def note_migration(self, obj: DistributedObject, target_node: int) -> None:
        oid = obj.object_id
        seq = self._move_seq.get(oid, 0) + 1
        self._move_seq[oid] = seq
        self._chain.setdefault(oid, []).append(target_node)
        # The previous home (position seq-1) forwards to the new one.
        self._jump.setdefault(oid, []).append(seq)

    def chain_of(self, obj: DistributedObject) -> List[int]:
        """The object's home after each migration (diagnostics/tests)."""
        return list(self._chain.get(obj.object_id, []))

    def locate(self, caller_node: int, obj: DistributedObject) -> Generator:
        oid = obj.object_id
        seq = self._move_seq.get(oid, 0)
        seen_seq, seen_node = self._known.get(
            (caller_node, oid), (0, obj.node_id)
        )
        hops = 0
        self.last_hops = 0
        if seq > seen_seq:
            chain = self._chain[oid]
            jump = self._jump[oid]
            path: List[int] = []  # chain positions whose pointer we follow
            pos = seen_seq
            while pos < seq and hops < self.max_hops:
                nxt = jump[pos]
                if nxt < seq:
                    # The hop lands on an intermediate forwarder, not
                    # the live object: refuse to chase a dead node.
                    hop_node = chain[nxt - 1]
                    if self.health is not None and self.health.is_down(
                        hop_node
                    ):
                        raise NodeCrashedError(
                            f"forwarding chain for {obj.name} passes "
                            f"through crashed node {hop_node} "
                            f"(position {nxt}/{seq})"
                        )
                path.append(pos)
                pos = nxt
                hops += 1
                self.last_hops = hops
            # Following a forwarding chain: one extra message per stale
            # hop.  The final hop lands at the object, so the
            # subsequent request does not need to be re-charged; we
            # charge hops-1 extra legs and let the normal request
            # message cover the last one.
            for _ in range(max(0, hops - 1)):
                self.lookup_messages += 1
                yield from self.network.transmit(caller_node, obj.node_id)
            if len(path) > 1:
                # Compaction: every forwarder on the traversed stretch
                # now points directly at the current home.
                for p in path:
                    jump[p] = seq
                self.chains_compacted += 1
        self._known[(caller_node, oid)] = (seq, obj.node_id)
        return obj.node_id


class BroadcastLocator(Locator):
    """Location by broadcast query (Clouds style).

    A remote lookup costs one broadcast (modelled as a single message
    latency — all replicas are queried in parallel) plus the reply from
    the owning node.
    """

    name = "broadcast"

    def locate(self, caller_node: int, obj: DistributedObject) -> Generator:
        if obj.node_id != caller_node:
            self.lookup_messages += 2
            yield from self.network.round_trip(caller_node, obj.node_id)
        return obj.node_id


#: Registry of locator factories by name.
LOCATORS = {
    ImmediateUpdateLocator.name: ImmediateUpdateLocator,
    NameServerLocator.name: NameServerLocator,
    ForwardingLocator.name: ForwardingLocator,
    BroadcastLocator.name: BroadcastLocator,
}


def make_locator(name: str, env: Environment, network: Network) -> Locator:
    """Instantiate a locator by registry name."""
    try:
        cls = LOCATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown locator {name!r}; choose from {sorted(LOCATORS)}"
        ) from None
    return cls(env, network)
