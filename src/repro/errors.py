"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Simulation-kernel errors and
distributed-runtime errors form their own sub-hierarchies because they
tend to be handled at different layers: kernel errors are programming
errors in simulation scripts, while runtime errors model conditions a
distributed application would observe (e.g. an object being fixed).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


# ---------------------------------------------------------------------------
# Simulation kernel errors
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class EmptySchedule(SimulationError):
    """``run()`` was asked to advance but no events remain."""


class StopSimulation(Exception):
    """Internal control-flow signal used by :meth:`Environment.run`.

    Deliberately *not* a :class:`ReproError`: user code should never
    catch it.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed more than once."""


class ProcessError(SimulationError):
    """A simulation process raised an unhandled exception.

    The original exception is available as ``__cause__``.
    """


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    Like ``simpy.Interrupt`` this is not an error in itself; processes
    may catch it to implement cancellation.  The interrupting party can
    attach a ``cause`` describing why.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """Whatever the interrupting process passed as the cause."""
        return self.args[0]


# ---------------------------------------------------------------------------
# Distributed runtime errors
# ---------------------------------------------------------------------------


class RuntimeModelError(ReproError):
    """Base class for errors raised by the distributed object runtime."""


class UnknownObjectError(RuntimeModelError):
    """An object id was not found in the registry."""


class UnknownNodeError(RuntimeModelError):
    """A node id was not found in the system."""


class ObjectFixedError(RuntimeModelError):
    """A migration was requested for an object that is fixed."""


class MigrationInProgressError(RuntimeModelError):
    """An operation conflicts with an in-flight migration."""


class AttachmentError(RuntimeModelError):
    """An illegal attachment operation (e.g. attaching an object to itself)."""


class AllianceError(RuntimeModelError):
    """An illegal alliance operation (e.g. duplicate membership)."""


class PolicyError(RuntimeModelError):
    """A migration policy was misused or misconfigured."""


# ---------------------------------------------------------------------------
# Fault-model errors (injected failures a distributed application observes)
# ---------------------------------------------------------------------------


class FaultError(RuntimeModelError):
    """Base class for conditions produced by the fault-tolerance layer.

    These model failures a real distributed application would observe —
    lost messages, dead nodes, timed-out calls — as opposed to
    programming errors.  Code that wants to degrade gracefully catches
    this base class.
    """


class MessageLostError(FaultError):
    """A message was dropped by a lossy or partitioned link.

    Raised by :meth:`repro.network.Network.transmit` after the message
    has spent its latency on the wire, i.e. at the moment the receiver
    *would* have gotten it.  The sender only learns about the loss via
    a timeout (see :class:`repro.runtime.retry.RetryPolicy`).
    """


class TimeoutError(FaultError):  # noqa: A001 - deliberate shadow, scoped
    """An invocation exhausted its retry budget without a reply.

    Shadows the builtin of the same name *within this module only*; it
    additionally derives from :class:`RuntimeModelError` so existing
    ``except ReproError`` handlers keep working.
    """


class NodeDownError(FaultError):
    """An operation targeted a node that is currently crashed."""


class NodeCrashedError(NodeDownError):
    """A protocol step ran into a crashed (or suspected-crashed) node.

    Raised where continuing would mean waiting on a dead participant —
    e.g. a forwarding chain whose intermediate hop is hosted on a node
    the failure detector suspects (:class:`repro.runtime.locator.
    ForwardingLocator`), or an invocation failed over away from a
    suspected callee.  Derives from :class:`NodeDownError` so existing
    crash handlers keep working.
    """


class MigrationAbortedError(FaultError):
    """A migration was aborted and the object rolled back to its origin.

    Only raised by :meth:`MigrationService.migrate` in ``strict`` mode;
    by default aborted members are surfaced in
    :attr:`MigrationOutcome.aborted` instead.
    """


# ---------------------------------------------------------------------------
# Versioned-deployment errors (repro.versioning)
# ---------------------------------------------------------------------------


class DeploymentError(FaultError):
    """Base class for staged version-deployment failures.

    Derives from :class:`FaultError`: a failing deploy is a condition a
    running system observes and recovers from (rollback to the last
    checkpoint), not a programming error.
    """


class StageAbortedError(DeploymentError):
    """A deploy stage was aborted and rolled back to its checkpoint.

    Raised by :class:`repro.versioning.deployer.MigrationDeployer` in
    strict mode when a stage cannot complete — coordinator crash,
    place-policy lock starvation, or a broken lease block.  Message,
    stage index and reason all live in ``args`` so the exception
    round-trips through :mod:`pickle` unchanged.
    """

    def __init__(self, message: str = "", stage: int = -1, reason: str = ""):
        super().__init__(message, int(stage), reason)

    @property
    def message(self) -> str:
        """Human-readable description of the abort."""
        return self.args[0] if self.args else ""

    @property
    def stage(self) -> int:
        """Index of the aborted stage (-1 when unknown)."""
        return self.args[1] if len(self.args) > 1 else -1

    @property
    def reason(self) -> str:
        """Machine-readable abort reason (e.g. ``coordinator-crash``)."""
        return self.args[2] if len(self.args) > 2 else ""

    def __str__(self) -> str:
        suffix = []
        if self.stage >= 0:
            suffix.append(f"stage={self.stage}")
        if self.reason:
            suffix.append(f"reason={self.reason}")
        return self.message + (f" [{', '.join(suffix)}]" if suffix else "")


class ChecksumMismatchError(DeploymentError):
    """A content hash did not match the plan's expectation.

    Raised when a node/object hash computed after (or before) a stage
    differs from what the :class:`~repro.versioning.planner.
    MigrationPlan` predicted — the graph changed under the deployer's
    feet or a version flip did not land.  Carries the object id and the
    expected/actual hashes in ``args`` for pickle-safe transport.
    """

    def __init__(
        self,
        message: str = "",
        object_id: int = -1,
        expected: str = "",
        actual: str = "",
    ):
        super().__init__(message, int(object_id), expected, actual)

    @property
    def message(self) -> str:
        """Human-readable description of the mismatch."""
        return self.args[0] if self.args else ""

    @property
    def object_id(self) -> int:
        """Object whose hash mismatched (-1 for a graph-level digest)."""
        return self.args[1] if len(self.args) > 1 else -1

    @property
    def expected(self) -> str:
        """The hash the plan predicted."""
        return self.args[2] if len(self.args) > 2 else ""

    @property
    def actual(self) -> str:
        """The hash actually computed."""
        return self.args[3] if len(self.args) > 3 else ""

    def __str__(self) -> str:
        if not self.expected and not self.actual:
            return self.message
        return (
            f"{self.message} (expected {self.expected[:12]}…, "
            f"got {self.actual[:12]}…)"
        )


# ---------------------------------------------------------------------------
# Live transport & supervision errors (repro.runtime.live)
# ---------------------------------------------------------------------------


class TransportError(FaultError):
    """Base class for live-transport failures (real sockets, real OS).

    The sim backend models loss as :class:`MessageLostError` *after*
    the latency elapsed; the live backend additionally fails in ways a
    simulated wire cannot — a peer's connection dies mid-frame, the
    transport is already shut down, a frame exceeds the protocol
    limit.  All of them derive from :class:`FaultError` so existing
    graceful-degradation handlers (retry, abort-and-rollback) treat
    live failures exactly like simulated ones.
    """


class TransportClosedError(TransportError):
    """A send/request was issued on a transport that already shut down."""


class ConnectionLostError(TransportError):
    """The connection to a peer died and reconnect attempts ran out.

    Carries the peer node id in ``args`` so the exception round-trips
    through :mod:`pickle` across process boundaries unchanged.
    """

    def __init__(self, message: str = "", peer: int = -1):
        super().__init__(message, int(peer))

    @property
    def message(self) -> str:
        """Human-readable description of the loss."""
        return self.args[0] if self.args else ""

    @property
    def peer(self) -> int:
        """Node id of the unreachable peer (-1 when unknown)."""
        return self.args[1] if len(self.args) > 1 else -1

    def __str__(self) -> str:
        if self.peer < 0:
            return self.message
        return f"{self.message} [peer={self.peer}]"


class FrameTooLargeError(TransportError):
    """An encoded frame exceeded the transport's size limit.

    Raised on both sides of the wire: the sender refuses to emit the
    frame, the receiver refuses to buffer one whose length prefix is
    oversized (a corrupt or hostile peer must not make us allocate
    unbounded memory).  Size and limit live in ``args`` for pickle.
    """

    def __init__(self, message: str = "", size: int = -1, limit: int = -1):
        super().__init__(message, int(size), int(limit))

    @property
    def message(self) -> str:
        """Human-readable description."""
        return self.args[0] if self.args else ""

    @property
    def size(self) -> int:
        """The offending frame's payload size in bytes."""
        return self.args[1] if len(self.args) > 1 else -1

    @property
    def limit(self) -> int:
        """The transport's configured maximum payload size."""
        return self.args[2] if len(self.args) > 2 else -1

    def __str__(self) -> str:
        if self.size < 0:
            return self.message
        return f"{self.message} ({self.size} > limit {self.limit} bytes)"


class SupervisionError(FaultError):
    """Base class for node-supervision failures (process lifecycle)."""


class WorkerCrashedError(SupervisionError):
    """A supervised worker process died (crash or kill).

    Carries node id and exit code in ``args`` for pickle-safe
    propagation out of the supervisor.
    """

    def __init__(self, message: str = "", node: int = -1, exitcode=None):
        super().__init__(message, int(node), exitcode)

    @property
    def message(self) -> str:
        """Human-readable description of the crash."""
        return self.args[0] if self.args else ""

    @property
    def node(self) -> int:
        """Node id of the dead worker (-1 when unknown)."""
        return self.args[1] if len(self.args) > 1 else -1

    @property
    def exitcode(self):
        """OS exit code (negative = killed by that signal number)."""
        return self.args[2] if len(self.args) > 2 else None

    def __str__(self) -> str:
        parts = []
        if self.node >= 0:
            parts.append(f"node={self.node}")
        if self.exitcode is not None:
            parts.append(f"exitcode={self.exitcode}")
        return self.message + (f" [{', '.join(parts)}]" if parts else "")


class DrainTimeoutError(SupervisionError):
    """Graceful drain did not finish within its deadline.

    A drain asks every worker to stop accepting work and to finish
    in-flight invocations; workers that cannot comply in time are
    force-killed and reported through this error, which carries the
    timeout and the ids of the stragglers in ``args``.
    """

    def __init__(self, message: str = "", timeout: float = -1.0, pending=()):
        super().__init__(message, float(timeout), tuple(pending))

    @property
    def message(self) -> str:
        """Human-readable description."""
        return self.args[0] if self.args else ""

    @property
    def timeout(self) -> float:
        """The drain deadline that was exceeded, in seconds."""
        return self.args[1] if len(self.args) > 1 else -1.0

    @property
    def pending(self) -> tuple:
        """Node ids that had not finished draining at the deadline."""
        return self.args[2] if len(self.args) > 2 else ()

    def __str__(self) -> str:
        if not self.pending:
            return self.message
        nodes = ", ".join(str(n) for n in self.pending)
        return f"{self.message} [timeout={self.timeout}s, pending: {nodes}]"


class WalCorruptionError(SupervisionError):
    """The arbitration write-ahead log cannot be trusted.

    Raised on mid-log damage (bad JSON, checksum mismatch,
    non-monotonic sequence) — anything *other* than a torn final
    append, which replay silently discards.  Carries the log path and
    the 1-based offending line in ``args`` for pickle-safe propagation
    out of the supervisor child process.
    """

    def __init__(self, message: str = "", path: str = "", line: int = -1):
        super().__init__(message, str(path), int(line))

    @property
    def message(self) -> str:
        """Human-readable description of the corruption."""
        return self.args[0] if self.args else ""

    @property
    def path(self) -> str:
        """Path of the damaged log file ('' when unknown)."""
        return self.args[1] if len(self.args) > 1 else ""

    @property
    def line(self) -> int:
        """1-based line number of the bad record (-1 when unknown)."""
        return self.args[2] if len(self.args) > 2 else -1

    def __str__(self) -> str:
        if not self.path:
            return self.message
        where = f"{self.path}:{self.line}" if self.line > 0 else self.path
        return f"{self.message} [{where}]"


# ---------------------------------------------------------------------------
# Runtime invariant monitoring
# ---------------------------------------------------------------------------


class InvariantViolationError(SimulationError):
    """A runtime safety invariant failed during a simulation run.

    Raised by :class:`repro.sim.monitor.InvariantMonitor` when a
    registered invariant evaluates false.  Carries a bounded excerpt of
    the most recent trace records so the violation is diagnosable
    without re-running the simulation.

    Both the message and the trace excerpt live in ``args`` so the
    exception round-trips through :mod:`pickle` unchanged (worker
    processes under the parallel executor propagate failures by
    pickling them).
    """

    def __init__(self, message: str = "", trace=()):
        super().__init__(message, tuple(trace))

    @property
    def message(self) -> str:
        """The human-readable description of the violated invariant."""
        return self.args[0] if self.args else ""

    @property
    def trace(self):
        """Bounded tuple of recent trace lines captured at failure."""
        return self.args[1] if len(self.args) > 1 else ()

    def __str__(self) -> str:
        if not self.trace:
            return self.message
        lines = "\n".join(f"    {line}" for line in self.trace)
        return (
            f"{self.message}\n  last {len(self.trace)} trace records:\n{lines}"
        )


# ---------------------------------------------------------------------------
# Experiment/configuration errors
# ---------------------------------------------------------------------------


class ConfigurationError(ReproError):
    """An experiment or workload configuration is invalid."""


class StoppingRuleError(ReproError):
    """A statistics stopping rule could not be satisfied or was misused."""
