"""repro — Object Migration in Non-Monolithic Distributed Applications.

A complete, from-scratch Python reproduction of Ciupke, Kottmann &
Walter (Universität Karlsruhe, ICDCS 1996): a discrete-event simulation
of distributed object systems in which *independently developed*
components apply migration policies concurrently, plus the paper's two
remedies — transient placement and alliance-scoped (A-transitive)
attachment.

Layering (bottom-up):

``repro.sim``
    Generator-based discrete-event kernel, RNG streams, statistics and
    the §4.1 stopping rule.
``repro.network``
    Topologies and the normalized Exp(1) latency model.
``repro.runtime``
    Nodes, mobile objects, invocation forwarding, migration mechanics.
``repro.core``
    The contribution: primitives, move-blocks, the five policies,
    attachments, alliances, the §3.2 cost model.
``repro.workload`` / ``repro.experiments`` / ``repro.analysis``
    The paper's scenarios, figure harness, and metrics.

Quickstart::

    from repro import SimulationParameters, run_cell

    params = SimulationParameters(nodes=3, clients=3, servers_layer1=3,
                                  policy="placement")
    result = run_cell(params)
    print(result.mean_communication_time_per_call)
"""

from repro._version import __version__
from repro.core import LockManager, LeaseSweeper
from repro.core import (
    Alliance,
    AllianceManager,
    AttachmentManager,
    AttachmentMode,
    ComparingNodes,
    ComparingReinstantiation,
    ConventionalMigration,
    CostParameters,
    MigrationPolicy,
    MigrationPrimitives,
    MoveBlock,
    MoveScope,
    POLICIES,
    SedentaryPolicy,
    TransientPlacement,
    VisitScope,
    make_policy,
)
from repro.errors import FaultError, ReproError
from repro.network import LinkFaultModel
from repro.experiments import (
    ExperimentDef,
    ExperimentResult,
    FIGURES,
    make_figure,
    run_figure,
)
from repro.runtime import (
    DistributedObject,
    DistributedSystem,
    Node,
    ObjectKind,
    RetryPolicy,
)
from repro.sim import Environment, RandomStreams, StoppingConfig
from repro.workload import (
    ClientServerWorkload,
    LayeredWorkload,
    SimulationParameters,
    WorkloadResult,
    run_cell,
)

__all__ = [
    "Alliance",
    "AllianceManager",
    "AttachmentManager",
    "AttachmentMode",
    "ClientServerWorkload",
    "ComparingNodes",
    "ComparingReinstantiation",
    "ConventionalMigration",
    "CostParameters",
    "DistributedObject",
    "DistributedSystem",
    "Environment",
    "ExperimentDef",
    "ExperimentResult",
    "FIGURES",
    "FaultError",
    "LayeredWorkload",
    "LeaseSweeper",
    "LinkFaultModel",
    "LockManager",
    "MigrationPolicy",
    "MigrationPrimitives",
    "MoveBlock",
    "MoveScope",
    "Node",
    "ObjectKind",
    "POLICIES",
    "RandomStreams",
    "ReproError",
    "RetryPolicy",
    "SedentaryPolicy",
    "SimulationParameters",
    "StoppingConfig",
    "TransientPlacement",
    "VisitScope",
    "WorkloadResult",
    "__version__",
    "make_figure",
    "make_policy",
    "run_cell",
    "run_figure",
]
