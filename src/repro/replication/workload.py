"""Read/write workload over a shared replicated object population.

Mirrors the migration study's structure: C autonomous clients on D
nodes share S objects; each client loops issuing operations with a
configurable read ratio.  The metric is the mean operation time —
reads, writes, and the amortized replica-copy time all included, so
replication thrash is visible exactly the way migration thrash is in
the main study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.replication.policies import make_replication_policy
from repro.replication.service import ReplicationService
from repro.runtime.system import DistributedSystem
from repro.sim.stats import RunningStats
from repro.sim.stopping import PrecisionStopping, StoppingConfig


@dataclass(frozen=True)
class ReplicationParameters:
    """Configuration of one replication-study cell."""

    nodes: int = 12
    clients: int = 8
    objects: int = 3
    #: Probability an operation is a read.
    read_ratio: float = 0.9
    #: Mean gap between a client's operations (exponential).
    mean_interop_time: float = 3.0
    #: Copy (replication) duration for a size-1 object.
    copy_duration: float = 6.0
    policy: str = "threshold"
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.objects < 1:
            raise ConfigurationError("need at least one object")
        if not 0.0 <= self.read_ratio <= 1.0:
            raise ConfigurationError("read_ratio must be in [0, 1]")
        if self.mean_interop_time < 0:
            raise ConfigurationError("mean_interop_time must be >= 0")
        if self.copy_duration < 0:
            raise ConfigurationError("copy_duration must be >= 0")


@dataclass
class ReplicationResult:
    """Outcome of one replication cell."""

    params: ReplicationParameters
    mean_op_time: float
    mean_read_time: float
    mean_write_time: float
    copy_time_per_op: float
    raw: Dict = field(default_factory=dict)


class ReplicationWorkload:
    """Builds and runs one replication-study cell."""

    CHUNK = 2_000.0
    MAX_TIME = 2_000_000.0

    def __init__(
        self,
        params: ReplicationParameters,
        stopping: Optional[StoppingConfig] = None,
    ):
        params.validate()
        self.params = params
        self.system = DistributedSystem(nodes=params.nodes, seed=params.seed)
        self.service = ReplicationService(
            self.system.env,
            self.system.network,
            copy_duration=params.copy_duration,
        )
        self.policy = make_replication_policy(params.policy, self.service)
        self.objects = [
            self.system.create_server(node=i % params.nodes, name=f"obj-{i}")
            for i in range(params.objects)
        ]
        self.op_times = RunningStats()
        self.stopping = PrecisionStopping(stopping or StoppingConfig())
        self._started = False

    def client_process(self, index: int):
        """One autonomous component's endless read/write loop."""
        node = index % self.params.nodes
        stream = self.system.streams.stream(f"repl.client.{index}")
        while True:
            gap = stream.exponential(self.params.mean_interop_time)
            if gap > 0:
                yield self.system.env.timeout(gap)
            obj = stream.choice(self.objects)
            start = self.system.env.now
            if stream.uniform() < self.params.read_ratio:
                yield from self.policy.read(node, obj)
            else:
                yield from self.policy.write(node, obj)
            elapsed = self.system.env.now - start
            self.op_times.add(elapsed)
            self.stopping.add(elapsed)

    def start(self) -> None:
        """Launch every client process (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(self.params.clients):
            self.system.env.process(
                self.client_process(i), name=f"repl-client-{i}"
            )

    def run(self) -> ReplicationResult:
        """Simulate until the stopping rule fires; return the metrics."""
        self.start()
        env = self.system.env
        while True:
            env.run(until=env.now + self.CHUNK)
            if self.stopping.should_stop() or env.now >= self.MAX_TIME:
                break
        stats = self.service.stats()
        ops = max(1, self.op_times.count)
        # Copy time is work the clients caused but did not individually
        # wait for in op_times (replication happens inside reads here,
        # so it IS included — this figure reports it separately too).
        return ReplicationResult(
            params=self.params,
            mean_op_time=self.op_times.mean if self.op_times.count else 0.0,
            mean_read_time=stats["mean_read"],
            mean_write_time=stats["mean_write"],
            copy_time_per_op=self.service.total_copy_time / ops,
            raw={
                "service": stats,
                "operations": self.op_times.count,
                "stopping": self.stopping.summary(),
            },
        )


def run_replication_cell(
    params: ReplicationParameters,
    stopping: Optional[StoppingConfig] = None,
) -> ReplicationResult:
    """Convenience one-shot wrapper."""
    return ReplicationWorkload(params, stopping=stopping).run()
