"""Replication mechanics (the §5 outlook, made concrete).

The paper closes by asking "whether similar negative effects as we have
shown for object migration arise for other mechanisms like replication
... if they are applied in non-monolithic systems".  This subpackage
implements the minimal machinery needed to study that question:

* each object has a *primary* copy (its normal location) and a set of
  read-only *replicas*;
* ``read`` is served locally if the caller holds the primary or a
  replica, else it is a remote round trip (to any copy — under the
  normalized latency model all remote nodes are equidistant);
* ``write`` goes to the primary and synchronously *invalidates* every
  replica: one message per replica, paid by the writer (the classic
  write-invalidate protocol); the replicas are dropped;
* ``replicate`` copies the object to a node, taking the same transfer
  time as a migration of it (it ships the same state).

The *conflict* mirrors the migration story: autonomous read-heavy
components eagerly replicate a shared object; one write-heavy component
then pays an invalidation per replica per write — and immediately
afterwards the readers re-replicate, so everybody loses.  The
policies in :mod:`repro.replication.policies` span the same
aggressive-to-conservative continuum the migration policies do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Set

from repro.network.network import Network
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment
from repro.sim.stats import RunningStats


@dataclass(frozen=True)
class OpResult:
    """Caller-observed outcome of one read or write."""

    duration: float
    was_local: bool
    #: For writes: replicas invalidated; for reads: unused (0).
    invalidations: int = 0


class ReplicationService:
    """Executes reads, writes, replication and invalidation."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        copy_duration: float = 6.0,
    ):
        if copy_duration < 0:
            raise ValueError(f"copy_duration must be >= 0, got {copy_duration}")
        self.env = env
        self.network = network
        self.copy_duration = copy_duration
        #: object id -> set of replica node ids (primary not included).
        self._replicas: Dict[int, Set[int]] = {}
        # Aggregate accounting.
        self.reads = 0
        self.local_reads = 0
        self.writes = 0
        self.invalidations_sent = 0
        self.replications = 0
        self.total_copy_time = 0.0
        self.read_durations = RunningStats()
        self.write_durations = RunningStats()

    # -- replica-set queries -----------------------------------------------------

    def replicas_of(self, obj: DistributedObject) -> Set[int]:
        """Current replica node set (primary excluded)."""
        return set(self._replicas.get(obj.object_id, ()))

    def has_copy(self, obj: DistributedObject, node: int) -> bool:
        """Whether ``node`` holds the primary or a replica."""
        return obj.node_id == node or node in self._replicas.get(
            obj.object_id, ()
        )

    def replica_count(self, obj: DistributedObject) -> int:
        """Number of replicas (primary excluded)."""
        return len(self._replicas.get(obj.object_id, ()))

    # -- operations ---------------------------------------------------------------

    def replicate(self, obj: DistributedObject, node: int) -> Generator:
        """Copy the object to ``node``; no-op if a copy is already there.

        Takes the object's transfer time (same state as a migration),
        but the primary stays available throughout — replication ships
        a snapshot, it does not linearize the object.
        """
        if self.has_copy(obj, node):
            return False
        duration = self.copy_duration * obj.size
        if duration > 0:
            yield self.env.timeout(duration)
        # Re-check: a concurrent write may have raced us; last one wins
        # in this idealized model (the snapshot is current at install).
        self._replicas.setdefault(obj.object_id, set()).add(node)
        self.replications += 1
        self.total_copy_time += duration
        return True

    def drop_replica(self, obj: DistributedObject, node: int) -> bool:
        """Remove the replica at ``node`` (local bookkeeping, free)."""
        replicas = self._replicas.get(obj.object_id)
        if replicas and node in replicas:
            replicas.discard(node)
            return True
        return False

    def read(self, caller_node: int, obj: DistributedObject) -> Generator:
        """Read the object: free with a local copy, else a round trip."""
        start = self.env.now
        self.reads += 1
        if self.has_copy(obj, caller_node):
            self.local_reads += 1
            self.read_durations.add(0.0)
            return OpResult(duration=0.0, was_local=True)
        yield from self.network.round_trip(caller_node, obj.node_id)
        duration = self.env.now - start
        self.read_durations.add(duration)
        return OpResult(duration=duration, was_local=False)

    def write(self, caller_node: int, obj: DistributedObject) -> Generator:
        """Write through the primary and invalidate every replica.

        The writer pays the round trip to the primary plus the parallel
        invalidation fan-out (elapsed = the slowest invalidation; the
        message *work* is one per replica and is what saturates a
        non-monolithic system).
        """
        start = self.env.now
        self.writes += 1
        if caller_node != obj.node_id:
            yield from self.network.round_trip(caller_node, obj.node_id)

        victims = sorted(self._replicas.get(obj.object_id, ()))
        if victims:
            self.invalidations_sent += len(victims)
            procs = [
                self.env.process(
                    self._invalidate_one(obj, node),
                    name=f"invalidate-{obj.name}@{node}",
                )
                for node in victims
            ]
            yield self.env.all_of(procs)
            self._replicas[obj.object_id] = set()

        duration = self.env.now - start
        self.write_durations.add(duration)
        return OpResult(
            duration=duration,
            was_local=caller_node == obj.node_id and not victims,
            invalidations=len(victims),
        )

    def _invalidate_one(self, obj: DistributedObject, node: int) -> Generator:
        yield from self.network.transmit(obj.node_id, node)

    def stats(self) -> dict:
        """Aggregate counters for reports."""
        return {
            "reads": self.reads,
            "local_reads": self.local_reads,
            "writes": self.writes,
            "invalidations": self.invalidations_sent,
            "replications": self.replications,
            "mean_read": self.read_durations.mean if self.reads else 0.0,
            "mean_write": self.write_durations.mean if self.writes else 0.0,
        }
