"""Replication in non-monolithic systems — the §5 outlook, implemented.

The paper ends by asking whether replication suffers the same
non-monolithic conflicts as migration.  This subpackage answers it with
the same methodology: a write-invalidate replication mechanism, a
continuum of policies (none / eager / threshold), and a read-write
workload whose read ratio is swept in
``benchmarks/bench_outlook_replication.py``.
"""

from repro.replication.policies import (
    REPLICATION_POLICIES,
    EagerReplication,
    NoReplication,
    ReplicationPolicy,
    ThresholdReplication,
    make_replication_policy,
)
from repro.replication.service import OpResult, ReplicationService
from repro.replication.workload import (
    ReplicationParameters,
    ReplicationResult,
    ReplicationWorkload,
    run_replication_cell,
)

__all__ = [
    "EagerReplication",
    "NoReplication",
    "OpResult",
    "REPLICATION_POLICIES",
    "ReplicationParameters",
    "ReplicationPolicy",
    "ReplicationResult",
    "ReplicationService",
    "ReplicationWorkload",
    "ThresholdReplication",
    "make_replication_policy",
    "run_replication_cell",
]
