"""Replication policies: the migration story transposed (§5 outlook).

The continuum mirrors the migration policies:

``NoReplication``
    The sedentary baseline: every remote read pays the round trip.
``EagerReplication``
    The conventional-migration analogue: every component replicates the
    object to its node on the first remote read, no questions asked.
    In a non-monolithic system with writers this is the hazard — each
    write invalidates the whole replica set and the readers immediately
    re-replicate (thrashing: copy traffic + invalidation fan-out).
``ThresholdReplication``
    The place-policy analogue: a node earns a replica only after ``k``
    remote reads since the last invalidation, and the total replica set
    is capped.  Bounded aggressiveness; resists invalidation thrash.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Dict, Generator, Tuple

from repro.replication.service import ReplicationService
from repro.runtime.objects import DistributedObject


class ReplicationPolicy(ABC):
    """Decides when a reading node acquires a replica."""

    name = "abstract"

    def __init__(self, service: ReplicationService):
        self.service = service

    def read(self, caller_node: int, obj: DistributedObject) -> Generator:
        """Perform a read, possibly replicating first (policy call)."""
        if self.should_replicate(caller_node, obj):
            yield from self.service.replicate(obj, caller_node)
        result = yield from self.service.read(caller_node, obj)
        self.note_read(caller_node, obj, result.was_local)
        return result

    def write(self, caller_node: int, obj: DistributedObject) -> Generator:
        """Perform a write (invalidation handled by the service)."""
        result = yield from self.service.write(caller_node, obj)
        self.note_write(obj)
        return result

    @abstractmethod
    def should_replicate(
        self, caller_node: int, obj: DistributedObject
    ) -> bool:
        """Whether this read should first install a local replica."""

    def note_read(
        self, caller_node: int, obj: DistributedObject, was_local: bool
    ) -> None:
        """Post-read bookkeeping hook."""

    def note_write(self, obj: DistributedObject) -> None:
        """Post-write bookkeeping hook."""


class NoReplication(ReplicationPolicy):
    """Never replicate: remote reads stay remote."""

    name = "none"

    def should_replicate(self, caller_node, obj) -> bool:
        return False


class EagerReplication(ReplicationPolicy):
    """Replicate on every remote read (the aggressive hazard)."""

    name = "eager"

    def should_replicate(self, caller_node, obj) -> bool:
        return not self.service.has_copy(obj, caller_node)


class ThresholdReplication(ReplicationPolicy):
    """Replicate after ``threshold`` remote reads, capped replica set.

    Parameters
    ----------
    threshold:
        Remote reads a node must accumulate (since the last
        invalidation of that object) before it earns a replica.
    max_replicas:
        Hard cap on the object's replica-set size; further nodes keep
        reading remotely.  This bounds the per-write invalidation cost
        exactly like the place-policy bounds per-conflict migrations.
    """

    name = "threshold"

    def __init__(
        self,
        service: ReplicationService,
        threshold: int = 3,
        max_replicas: int = 4,
    ):
        super().__init__(service)
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if max_replicas < 0:
            raise ValueError(f"max_replicas must be >= 0, got {max_replicas}")
        self.threshold = threshold
        self.max_replicas = max_replicas
        self._remote_reads: Dict[Tuple[int, int], int] = defaultdict(int)

    def should_replicate(self, caller_node, obj) -> bool:
        if self.service.has_copy(obj, caller_node):
            return False
        if self.service.replica_count(obj) >= self.max_replicas:
            return False
        return (
            self._remote_reads[(obj.object_id, caller_node)] >= self.threshold
        )

    def note_read(self, caller_node, obj, was_local) -> None:
        if not was_local:
            self._remote_reads[(obj.object_id, caller_node)] += 1

    def note_write(self, obj) -> None:
        # Invalidation resets everybody's claim on this object.
        for key in list(self._remote_reads):
            if key[0] == obj.object_id:
                self._remote_reads[key] = 0


#: Registry of replication policies by name.
REPLICATION_POLICIES = {
    NoReplication.name: NoReplication,
    EagerReplication.name: EagerReplication,
    ThresholdReplication.name: ThresholdReplication,
}


def make_replication_policy(
    name: str, service: ReplicationService
) -> ReplicationPolicy:
    """Instantiate a replication policy by registry name."""
    try:
        cls = REPLICATION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replication policy {name!r}; choose from "
            f"{sorted(REPLICATION_POLICIES)}"
        ) from None
    return cls(service)
