"""The two-layer attachment workload (Fig 7).

First-layer servers are "directly used by the clients.  Those servers
use exactly the servers of the second layer belonging to the working
set of this server.  All server objects in one working set are attached
together" (§4.1).  Working sets of *different* first-layer servers
partially overlap — the trigger for §2.4's underestimation effect:
under unrestricted attachment the overlaps chain the working sets into
one connected component, so any client's move drags everything.

Structure built here, for S1 first-layer and S2 second-layer servers
with working-set size w (default 2):

* working set of first-layer server j = second-layer servers
  ``{j·S2/S1 + k (mod S2) : k < w}`` — consecutive with wrap-around, so
  adjacent working sets overlap and the unrestricted attachment graph
  is one ring-shaped component;
* one alliance per first-layer server containing it and its working
  set; every attachment is issued inside that alliance, so A-transitive
  closure = the single working set (§3.4);
* a client's move-block targets a first-layer server; each of its N
  invocations makes the server perform one nested invocation on a
  uniformly chosen working-set member.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.alliance import Alliance, AllianceManager
from repro.core.attachment import AttachmentManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.core.policies.registry import make_policy
from repro.runtime.objects import DistributedObject
from repro.sim.stopping import StoppingConfig
from repro.sim.trace import NULL_TRACER, Tracer
from repro.workload.clientserver import ClientServerWorkload
from repro.workload.params import SimulationParameters


class LayeredWorkload(ClientServerWorkload):
    """Fig 7: two server layers, overlapping attached working sets."""

    def __init__(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if not params.is_layered:
            raise ValueError(
                "LayeredWorkload needs servers_layer2 > 0; use "
                "ClientServerWorkload for the basic structure"
            )
        # Parent constructor builds system, servers (layer 1), clients,
        # and calls _build_policy — which we override to need the
        # attachment structures, so create them first via __dict__ state
        # populated in _build_policy.
        self.layer2: List[DistributedObject] = []
        self.working_sets: Dict[int, List[DistributedObject]] = {}
        self.alliances: Dict[int, Alliance] = {}
        self.attachments: Optional[AttachmentManager] = None
        super().__init__(params, stopping=stopping, tracer=tracer)

    # -- construction -----------------------------------------------------------

    def _build_policy(self) -> MigrationPolicy:
        params = self.params
        # Second-layer servers.
        self.layer2 = [
            self.system.create_server(
                node=params.layer2_node(k), name=f"server2-{k}"
            )
            for k in range(params.servers_layer2)
        ]
        # Attachment graph in the configured closure mode, shared with
        # the alliance manager so alliance edges land in the same graph.
        self.attachments = AttachmentManager(params.attachment_mode)
        alliance_manager = AllianceManager(self.attachments)

        s1, s2, width = (
            params.servers_layer1,
            params.servers_layer2,
            params.working_set_size,
        )
        for j, server in enumerate(self.servers):
            start = (j * s2) // s1
            members = [self.layer2[(start + k) % s2] for k in range(width)]
            self.working_sets[server.object_id] = members

            alliance = alliance_manager.create(name=f"ws-{j}")
            alliance.admit(server)
            for member in members:
                alliance.admit(member)
                # "All server objects in one working set are attached
                # together": member attached to its server, inside the
                # working set's alliance context.
                alliance.attach(member, server)
            self.alliances[server.object_id] = alliance

        return make_policy(params.policy, self.system, self.attachments)

    # -- behaviour ---------------------------------------------------------------

    def _make_block(
        self, client: DistributedObject, target: DistributedObject
    ) -> MoveBlock:
        alliance = (
            self.alliances[target.object_id]
            if self.params.use_alliances
            else None
        )
        return MoveBlock(client.node_id, target, alliance=alliance)

    def _block_body(self, client: DistributedObject, block: MoveBlock, plan):
        """N invocations, each with one nested working-set sub-call."""
        members = self.working_sets[block.target.object_id]
        subpick = self.system.streams.stream(f"client.{client.name}.subpick")

        for gap in plan.intercall_times:
            if gap > 0:
                yield self.system.env.sleep(gap)
            member = subpick.choice(members)

            def nested(callee_node: int, member=member):
                yield from self.system.invocations.invoke(callee_node, member)

            result = yield from self.system.invocations.invoke(
                client.node_id, block.target, body=nested
            )
            block.record_call(result.duration)
