"""Simulation parameters — Table 1 of the paper.

=========  =============================================  ============
Parameter  Description                                    Distribution
=========  =============================================  ============
D          Number of nodes                                fixed
C          Number of clients                              fixed
S1         Number of 1st-layer servers                    fixed
S2         Number of 2nd-layer servers                    fixed
M          Migration duration for servers                 fixed
N          Number of calls in a move-block                exponential
t_i        Time between two calls in a block              exponential
t_m        Time between two move-blocks                   exponential
—          Duration of a remote call                      exp(1)
=========  =============================================  ============

All times are multiples of one remote-message latency (normalized to
mean 1).  A move-block is *sensible* when its expected number of calls
exceeds the migration duration (N > M, §4.1); the paper's parameter
sets respect this (N̄=8 or 6 against M=6) and :meth:`validate`
enforces it unless explicitly waived.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.attachment import AttachmentMode
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SimulationParameters:
    """One experiment cell's full parameterization.

    Attributes mirror Table 1, plus the policy under test and the
    attachment semantics for layered (Fig 16) workloads.
    """

    #: D — number of nodes.
    nodes: int = 3
    #: C — number of clients (sedentary, one move-block loop each).
    clients: int = 3
    #: S1 — first-layer servers (directly used by clients).
    servers_layer1: int = 3
    #: S2 — second-layer servers (used by first-layer servers; 0 for
    #: the basic client–server structure of Fig 6).
    servers_layer2: int = 0
    #: M — migration duration for a size-1 server.
    migration_duration: float = 6.0
    #: Mean of N — calls per move-block (exponential).
    mean_calls_per_block: float = 8.0
    #: Mean of t_i — time between two calls in a block (exponential).
    mean_intercall_time: float = 1.0
    #: Mean of t_m — time between two move-blocks (exponential).
    mean_interblock_time: float = 30.0
    #: Mean duration of one remote message (normalized to 1).
    mean_message_latency: float = 1.0
    #: Policy under test (registry name).
    policy: str = "placement"
    #: Block style: "move" (object stays after end, §2.3's move) or
    #: "visit" (object migrates back to where it came from at end —
    #: call-by-visit).  Visit adds a return transfer per granted block.
    block_style: str = "move"
    #: Attachment semantics for layered workloads.
    attachment_mode: AttachmentMode = AttachmentMode.UNRESTRICTED
    #: Whether move-blocks are issued within their alliance context
    #: (A-transitive experiments set this together with the mode).
    use_alliances: bool = False
    #: Working-set size of each first-layer server (layered workloads).
    working_set_size: int = 2
    #: Root random seed.
    seed: int = 0
    #: Physical topology (registry name; "full" is the paper's model).
    topology: str = "full"
    #: Location strategy (registry name; "immediate" is the paper's).
    locator: str = "immediate"

    # -- validation -----------------------------------------------------------------

    def validate(self, require_sensible: bool = True) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.nodes < 1:
            raise ConfigurationError("need at least one node")
        if self.clients < 1:
            raise ConfigurationError("need at least one client")
        if self.servers_layer1 < 1:
            raise ConfigurationError("need at least one first-layer server")
        if self.servers_layer2 < 0:
            raise ConfigurationError("servers_layer2 must be >= 0")
        if self.migration_duration < 0:
            raise ConfigurationError("migration_duration must be >= 0")
        if self.mean_calls_per_block <= 0:
            raise ConfigurationError("mean_calls_per_block must be > 0")
        if self.mean_intercall_time < 0:
            raise ConfigurationError("mean_intercall_time must be >= 0")
        if self.mean_interblock_time < 0:
            raise ConfigurationError("mean_interblock_time must be >= 0")
        if self.mean_message_latency < 0:
            raise ConfigurationError("mean_message_latency must be >= 0")
        if self.working_set_size < 1:
            raise ConfigurationError("working_set_size must be >= 1")
        if self.block_style not in ("move", "visit"):
            raise ConfigurationError(
                f"block_style must be 'move' or 'visit', got "
                f"{self.block_style!r}"
            )
        if (
            self.servers_layer2 > 0
            and self.working_set_size > self.servers_layer2
        ):
            raise ConfigurationError(
                "working_set_size cannot exceed servers_layer2"
            )
        if require_sensible and not self.is_sensible:
            raise ConfigurationError(
                "move-blocks are not sensible: mean N "
                f"({self.mean_calls_per_block}) must exceed M "
                f"({self.migration_duration}) — §4.1; pass "
                "require_sensible=False to study insensible setups"
            )

    @property
    def is_sensible(self) -> bool:
        """The §4.1 sensibility condition N > M (non-strict).

        Non-strict because the paper's own Fig 17 parameter set uses
        N̄ = M = 6.
        """
        return self.mean_calls_per_block >= self.migration_duration

    @property
    def is_layered(self) -> bool:
        """Whether the Fig 7 two-layer structure applies."""
        return self.servers_layer2 > 0

    # -- derived deterministic placement ------------------------------------------------

    def client_node(self, client_index: int) -> int:
        """Home node of client i (round-robin over nodes)."""
        return client_index % self.nodes

    def server_node(self, server_index: int) -> int:
        """Initial node of first-layer server j (round-robin).

        Symmetric with the clients, which yields the paper's sedentary
        baseline anchors (e.g. P(local) = 1/3 for D = C = S1 = 3).
        """
        return server_index % self.nodes

    def layer2_node(self, server_index: int) -> int:
        """Initial node of second-layer server k (offset round-robin)."""
        return (self.servers_layer1 + server_index) % self.nodes

    def with_overrides(self, **changes) -> "SimulationParameters":
        """Functional update (sweeps build cells this way)."""
        return replace(self, **changes)

    def label(self) -> str:
        """Short human-readable cell label for reports."""
        bits = [
            f"policy={self.policy}",
            f"D={self.nodes}",
            f"C={self.clients}",
            f"S1={self.servers_layer1}",
        ]
        if self.servers_layer2:
            bits.append(f"S2={self.servers_layer2}")
            bits.append(f"attach={self.attachment_mode.value}")
        bits.append(f"M={self.migration_duration:g}")
        bits.append(f"N~exp({self.mean_calls_per_block:g})")
        bits.append(f"tm~exp({self.mean_interblock_time:g})")
        return " ".join(bits)
