"""The basic client–server workload (Fig 6) and its simulation driver.

C sedentary clients share S1 movable servers.  Each client loops
forever: wait t_m, pick a server uniformly, open a move-block (move →
N invocations spaced t_i → end).  "Concurrency and the rate of
conflicting move-policies between different clients is incremented
through two parameters: in incrementing the number of clients [C] or in
decrementing the time between the move-blocks inside each client t_m"
(§4.1) — exactly the two sweeps of Figs 8 and 12.

:class:`WorkloadRunner` is the shared chunked-execution driver: it runs
the simulation in time slices, polling the §4.1 stopping rule between
slices, and produces a :class:`WorkloadResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.metrics import MetricsCollector
from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.core.policies.registry import make_policy
from repro.network.latency import NormalizedExponentialLatency
from repro.network.topology import make_topology
from repro.runtime.locator import make_locator
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.sim.stopping import StoppingConfig
from repro.sim.trace import NULL_TRACER, Tracer
from repro.workload.generator import BlockTimingGenerator
from repro.workload.params import SimulationParameters


@dataclass
class WorkloadResult:
    """Outcome of one simulated cell.

    ``series`` values are what the figure harness plots; ``raw`` keeps
    the full metric summary for EXPERIMENTS.md.
    """

    params: SimulationParameters
    mean_communication_time_per_call: float
    mean_call_duration: float
    mean_migration_time_per_call: float
    simulated_time: float
    raw: Dict = field(default_factory=dict)


class WorkloadRunner:
    """Chunked simulation driver with the paper's stopping rule."""

    #: Simulated time per chunk between stopping-rule polls.
    CHUNK = 2_000.0
    #: Absolute ceiling on simulated time (secondary safety net; the
    #: primary bound is the stopping config's max_observations).
    MAX_TIME = 5_000_000.0

    def __init__(self, workload: "ClientServerWorkload"):
        self.workload = workload

    def run(self) -> WorkloadResult:
        """Drive the workload in chunks until the stopping rule fires."""
        w = self.workload
        env = w.system.env
        w.start()
        while True:
            env.run(until=env.now + self.CHUNK)
            if w.metrics.should_stop():
                break
            if env.now >= self.MAX_TIME:
                break
        w.metrics.finalize(w.policy)
        m = w.metrics
        return WorkloadResult(
            params=w.params,
            mean_communication_time_per_call=m.mean_communication_time_per_call,
            mean_call_duration=m.mean_call_duration,
            mean_migration_time_per_call=m.mean_migration_time_per_call,
            simulated_time=env.now,
            raw={
                "metrics": m.summary(),
                "policy": w.policy.stats(),
                "network": {
                    "remote_messages": w.system.network.remote_messages,
                    "local_messages": w.system.network.local_messages,
                },
                "migrations": w.system.migrations.migration_count,
            },
        )


class ClientServerWorkload:
    """Builds and runs the Fig 6 structure for one parameter cell."""

    def __init__(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig] = None,
        tracer: Tracer = NULL_TRACER,
    ):
        params.validate()
        self.params = params
        self.metrics = MetricsCollector(stopping)
        self.system = self._build_system(params, tracer)
        self.servers = self._place_servers()
        self.clients = self._place_clients()
        self.policy = self._build_policy()
        self._started = False

    # -- construction -----------------------------------------------------------

    def _build_system(
        self, params: SimulationParameters, tracer: Tracer
    ) -> DistributedSystem:
        topology = make_topology(params.topology, params.nodes)
        system = DistributedSystem(
            nodes=params.nodes,
            seed=params.seed,
            migration_duration=params.migration_duration,
            topology=topology,
            latency=NormalizedExponentialLatency(params.mean_message_latency),
            tracer=tracer,
        )
        if params.locator != "immediate":
            locator = make_locator(params.locator, system.env, system.network)
            system.locator = locator
            system.invocations.locator = locator
            system.migrations.locator = locator
        return system

    def _place_servers(self) -> List[DistributedObject]:
        return [
            self.system.create_server(
                node=self.params.server_node(j), name=f"server-{j}"
            )
            for j in range(self.params.servers_layer1)
        ]

    def _place_clients(self) -> List[DistributedObject]:
        return [
            self.system.create_client(
                node=self.params.client_node(i), name=f"client-{i}"
            )
            for i in range(self.params.clients)
        ]

    def _build_policy(self) -> MigrationPolicy:
        return make_policy(self.params.policy, self.system)

    # -- the client behaviour --------------------------------------------------------

    def _pick_server(self, picker) -> DistributedObject:
        """Uniform server choice; override point for subclasses."""
        return picker.choice(self.servers)

    def _block_body(self, client: DistributedObject, block: MoveBlock, plan):
        """Process fragment: the N invocations of one block."""
        for gap in plan.intercall_times:
            if gap > 0:
                yield self.system.env.sleep(gap)
            result = yield from self.system.invocations.invoke(
                client.node_id, block.target
            )
            block.record_call(result.duration)

    def _make_block(
        self, client: DistributedObject, target: DistributedObject
    ) -> MoveBlock:
        """Create the block; layered subclass attaches the alliance."""
        return MoveBlock(client.node_id, target)

    def client_process(self, index: int):
        """The endless move-block loop of client ``index`` (§4.1)."""
        client = self.clients[index]
        timing = BlockTimingGenerator(
            self.params, self.system.streams.stream(f"client.{index}.timing")
        )
        picker = self.system.streams.stream(f"client.{index}.pick")
        visit = self.params.block_style == "visit"
        while True:
            plan = timing.next_plan()
            if plan.lead_time > 0:
                yield self.system.env.sleep(plan.lead_time)
            target = self._pick_server(picker)
            origin = target.node_id
            block = self._make_block(client, target)
            yield from self.policy.move(block)
            yield from self._block_body(client, block, plan)
            yield from self.policy.end(block)
            if (
                visit
                and block.granted
                and target.node_id != origin
                and not target.is_locked
            ):
                # Call-by-visit (§2.3): "a move and a migrate back".
                # The return transfer is part of the block's migration
                # cost, amortized over its calls like the outbound one.
                t0 = self.system.env.now
                yield from self.system.migrations.migrate([target], origin)
                block.migration_cost += self.system.env.now - t0
            self.metrics.record_block(block)

    # -- execution --------------------------------------------------------------------

    def start(self) -> None:
        """Launch every client's process (idempotent)."""
        if self._started:
            return
        self._started = True
        for i in range(len(self.clients)):
            self.system.env.process(
                self.client_process(i), name=f"client-{i}"
            )

    def run(self) -> WorkloadResult:
        """Simulate until the stopping rule fires; return the metrics."""
        return WorkloadRunner(self).run()


def run_cell(
    params: SimulationParameters,
    stopping: Optional[StoppingConfig] = None,
    tracer: Tracer = NULL_TRACER,
) -> WorkloadResult:
    """Convenience: build and run the right workload for ``params``.

    Dispatches to the layered (Fig 7) workload when S2 > 0.
    """
    if params.is_layered:
        from repro.workload.layered import LayeredWorkload

        return LayeredWorkload(params, stopping=stopping, tracer=tracer).run()
    return ClientServerWorkload(params, stopping=stopping, tracer=tracer).run()
