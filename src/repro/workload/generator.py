"""Move-block timing generator.

Draws the per-block random quantities of Table 1 from a client's
private stream: the inter-block gap t_m, the number of calls N, and the
inter-call gaps t_i.  Kept separate from the client processes so the
draws can be unit-tested against their target distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.rng import Stream
from repro.workload.params import SimulationParameters


@dataclass(frozen=True)
class BlockPlan:
    """The realized random plan of one move-block."""

    #: Gap before the block starts (t_m draw).
    lead_time: float
    #: Number of invocations (N draw, integerized, >= 1).
    calls: int
    #: Gap before each invocation (t_i draws; length == calls).
    intercall_times: List[float]


class BlockTimingGenerator:
    """Per-client source of :class:`BlockPlan` draws."""

    def __init__(self, params: SimulationParameters, stream: Stream):
        self.params = params
        self.stream = stream

    def next_plan(self) -> BlockPlan:
        """Draw the plan of the client's next move-block."""
        lead = self.stream.exponential(self.params.mean_interblock_time)
        calls = self.stream.geometric_at_least_one(
            self.params.mean_calls_per_block
        )
        gaps = [
            self.stream.exponential(self.params.mean_intercall_time)
            for _ in range(calls)
        ]
        return BlockPlan(lead_time=lead, calls=calls, intercall_times=gaps)
