"""Workload generators: the paper's simulation scenarios (Figs 6/7)."""

from repro.workload.clientserver import (
    ClientServerWorkload,
    WorkloadResult,
    WorkloadRunner,
    run_cell,
)
from repro.workload.generator import BlockPlan, BlockTimingGenerator
from repro.workload.layered import LayeredWorkload
from repro.workload.params import SimulationParameters

__all__ = [
    "BlockPlan",
    "BlockTimingGenerator",
    "ClientServerWorkload",
    "LayeredWorkload",
    "SimulationParameters",
    "WorkloadResult",
    "WorkloadRunner",
    "run_cell",
]
