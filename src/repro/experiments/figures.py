"""Per-figure experiment definitions (§4's evaluation).

Each function returns the :class:`~repro.experiments.config.
ExperimentDef` that regenerates one figure of the paper, with the exact
parameter tables printed next to the figures (Figs 9, 13, 15, 17).

``fast=True`` thins the sweep for smoke tests and CI; the full grids
are what EXPERIMENTS.md reports.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.attachment import AttachmentMode
from repro.experiments.config import ExperimentDef, SeriesDef
from repro.workload.params import SimulationParameters

# ---------------------------------------------------------------------------
# Figure 8 / 10 / 11 — increasing the usage frequency (t_m sweep)
# ---------------------------------------------------------------------------

#: Parameters of Fig 9: D=3, C=3, S1=3, S2=0, M=6, N~exp(8), t_i~exp(1).
FIG8_BASE = SimulationParameters(
    nodes=3,
    clients=3,
    servers_layer1=3,
    servers_layer2=0,
    migration_duration=6.0,
    mean_calls_per_block=8.0,
    mean_intercall_time=1.0,
)

#: The three policies of Fig 8's legend.
FIG8_POLICIES = (
    ("without Migration", "sedentary"),
    ("Migration", "migration"),
    ("Transient Placement", "placement"),
)


def _tm_sweep(fast: bool) -> Tuple[float, ...]:
    if fast:
        return (4.0, 30.0, 100.0)
    return (2.0, 4.0, 7.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0, 80.0, 100.0)


def figure8(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 8: mean communication time per call vs t_m (usage distance)."""
    series = tuple(
        SeriesDef(
            label=label,
            cell=lambda tm, policy=policy: FIG8_BASE.with_overrides(
                mean_interblock_time=tm, policy=policy, seed=seed
            ),
        )
        for label, policy in FIG8_POLICIES
    )
    return ExperimentDef(
        exp_id="fig8",
        title="Increasing the Usage Frequency",
        x_label="Mean Distance between two Usages (t_m)",
        x_values=_tm_sweep(fast),
        series=series,
        metric="mean_communication_time_per_call",
        notes=(
            "Sedentary baseline anchors at 4/3 (remote round trip 2 x "
            "P(remote)=2/3). Placement <= Migration everywhere; both beat "
            "the baseline at low concurrency (large t_m)."
        ),
    )


def figure10(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 10: the call-duration component of Fig 8."""
    base = figure8(seed=seed, fast=fast)
    return ExperimentDef(
        exp_id="fig10",
        title="Duration of Invocations",
        x_label=base.x_label,
        x_values=base.x_values,
        series=base.series,
        metric="mean_call_duration",
        notes="Call duration rises as concurrency rises (t_m falls).",
    )


def figure11(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 11: the migration-load component of Fig 8."""
    base = figure8(seed=seed, fast=fast)
    return ExperimentDef(
        exp_id="fig11",
        title="Migration-Load",
        x_label=base.x_label,
        x_values=base.x_values,
        series=base.series,
        metric="mean_migration_time_per_call",
        notes=(
            "Migration time per call falls at maximum concurrency: the "
            "callee is increasingly often already collocated."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 12 — increasing the number of callers (hot-spot objects)
# ---------------------------------------------------------------------------

#: Parameters of Fig 13: D=27, S1=3, M=6, N~exp(8), t_i~exp(1), t_m~exp(30).
FIG12_BASE = SimulationParameters(
    nodes=27,
    clients=1,
    servers_layer1=3,
    servers_layer2=0,
    migration_duration=6.0,
    mean_calls_per_block=8.0,
    mean_intercall_time=1.0,
    mean_interblock_time=30.0,
)


def _client_sweep(fast: bool, maximum: int) -> Tuple[float, ...]:
    if fast:
        return tuple(float(c) for c in (1, max(2, maximum // 2), maximum))
    step_points = [1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 18, 21, 25]
    return tuple(float(c) for c in step_points if c <= maximum)


def figure12(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 12: mean communication time per call vs number of clients."""
    series = tuple(
        SeriesDef(
            label=label,
            cell=lambda c, policy=policy: FIG12_BASE.with_overrides(
                clients=int(c), policy=policy, seed=seed
            ),
        )
        for label, policy in FIG8_POLICIES
    )
    return ExperimentDef(
        exp_id="fig12",
        title="Increasing the Number of Clients",
        x_label="Number of Clients",
        x_values=_client_sweep(fast, 25),
        series=series,
        metric="mean_communication_time_per_call",
        notes=(
            "Conventional migration grows ~linearly and crosses the "
            "sedentary baseline near C=6; placement grows sublinearly "
            "with break-even near C=20 (paper's numbers)."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 14 — exploiting dynamic information
# ---------------------------------------------------------------------------

#: Parameters of Fig 15: D=3, S1=3, M=6, N~exp(8), t_i~exp(1), t_m~exp(30).
FIG14_BASE = SimulationParameters(
    nodes=3,
    clients=1,
    servers_layer1=3,
    servers_layer2=0,
    migration_duration=6.0,
    mean_calls_per_block=8.0,
    mean_intercall_time=1.0,
    mean_interblock_time=30.0,
)

FIG14_POLICIES = (
    ("Conservative Place-Policy", "placement"),
    ("Comparing the Nodes", "comparing"),
    ("Comparing and Reinstantiation", "reinstantiation"),
)


def figure14(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 14: intelligent placement strategies vs number of clients."""
    series = tuple(
        SeriesDef(
            label=label,
            cell=lambda c, policy=policy: FIG14_BASE.with_overrides(
                clients=int(c), policy=policy, seed=seed
            ),
        )
        for label, policy in FIG14_POLICIES
    )
    return ExperimentDef(
        exp_id="fig14",
        title="Exploiting Dynamic Information",
        x_label="Number of Clients",
        x_values=_client_sweep(fast, 25),
        series=series,
        metric="mean_communication_time_per_call",
        notes=(
            "Both intelligent strategies track the conservative place-"
            "policy closely; gains are marginal even with their "
            "bookkeeping overhead neglected (§4.3)."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 16 — keeping objects together (attachments & alliances)
# ---------------------------------------------------------------------------

#: Parameters of Fig 17: D=24, S1=6, S2=6, M=6, N~exp(6), t_i~exp(1),
#: t_m~exp(30).
FIG16_BASE = SimulationParameters(
    nodes=24,
    clients=1,
    servers_layer1=6,
    servers_layer2=6,
    migration_duration=6.0,
    mean_calls_per_block=6.0,
    mean_intercall_time=1.0,
    mean_interblock_time=30.0,
    working_set_size=2,
)

#: label, policy, attachment mode, use_alliances
FIG16_VARIANTS = (
    ("without Migration", "sedentary", AttachmentMode.UNRESTRICTED, False),
    (
        "Migration + unrestricted Attachment",
        "migration",
        AttachmentMode.UNRESTRICTED,
        False,
    ),
    (
        "Migration + A-transitive Attachment",
        "migration",
        AttachmentMode.A_TRANSITIVE,
        True,
    ),
    (
        "Transient Placement + unrestricted Attachment",
        "placement",
        AttachmentMode.UNRESTRICTED,
        False,
    ),
    (
        "Transient Placement + A-transitive Attachment",
        "placement",
        AttachmentMode.A_TRANSITIVE,
        True,
    ),
)


def figure16(seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Fig 16: attachment semantics under increasing client counts."""
    series = tuple(
        SeriesDef(
            label=label,
            cell=lambda c, policy=policy, mode=mode, ally=ally: (
                FIG16_BASE.with_overrides(
                    clients=int(c),
                    policy=policy,
                    attachment_mode=mode,
                    use_alliances=ally,
                    seed=seed,
                )
            ),
        )
        for label, policy, mode, ally in FIG16_VARIANTS
    )
    return ExperimentDef(
        exp_id="fig16",
        title="Keeping Objects Together",
        x_label="Number of Clients",
        x_values=_client_sweep(fast, 12),
        series=series,
        metric="mean_communication_time_per_call",
        notes=(
            "Migration + unrestricted attachment is devastating (clients "
            "steal whole chained working sets); A-transitive attachment "
            "bounds the damage; placement + A-transitive is best (§4.4)."
        ),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

FIGURES = {
    "fig8": figure8,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "fig14": figure14,
    "fig16": figure16,
}


def make_figure(name: str, seed: int = 0, fast: bool = False) -> ExperimentDef:
    """Build a figure's experiment definition by name."""
    try:
        factory = FIGURES[name]
    except KeyError:
        raise ValueError(
            f"unknown figure {name!r}; choose from {sorted(FIGURES)}"
        ) from None
    return factory(seed=seed, fast=fast)
