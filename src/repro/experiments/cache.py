"""Content-addressed on-disk cache for simulated cells.

Paper-precision cells take minutes each, yet a cell's outcome is a pure
function of its inputs: the kernel is deterministic, every random draw
derives from ``SimulationParameters.seed``, and the stopping rule is
part of the configuration.  This module exploits that purity.  A cell's
cache key is the SHA-256 of the canonical JSON encoding of

``(SimulationParameters, StoppingConfig, FORMAT_VERSION, repro version)``

so any change to a parameter, the stopping rule, the persistence format
or the installed release addresses a different entry — stale hits are
structurally impossible without manual tampering.  Values are
serialized :class:`~repro.workload.clientserver.WorkloadResult`
documents (one JSON file per cell, reusing the persistence codecs).

The cache directory resolves, in order, to an explicit ``root``
argument, the ``REPRO_CACHE_DIR`` environment variable, and finally
``~/.cache/repro-objmig``.  Wipe it with :meth:`CellCache.wipe` or
simply ``rm -rf`` the directory; entries are self-contained files.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Union

from repro._version import __version__
from repro.experiments.persistence import (
    FORMAT_VERSION,
    params_from_dict,
    params_to_dict,
)
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import WorkloadResult
from repro.workload.params import SimulationParameters

#: Environment variable overriding the default cache location.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default cache location when neither ``root`` nor the environment
#: variable is set.
DEFAULT_CACHE_DIR = "~/.cache/repro-objmig"


def resolve_cache_dir(root: Union[str, Path, None] = None) -> Path:
    """The cache directory: explicit ``root`` > $REPRO_CACHE_DIR > default."""
    if root is not None:
        return Path(root).expanduser()
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path(DEFAULT_CACHE_DIR).expanduser()


def cell_key(
    params: SimulationParameters, stopping: Optional[StoppingConfig] = None
) -> str:
    """Content address of one cell (hex SHA-256).

    Canonical JSON (sorted keys, no whitespace) over the full parameter
    cell, the stopping rule, the persistence format version and the
    package version.  Every field that can influence a cell's outcome
    is part of the digest.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "version": __version__,
        "params": params_to_dict(params),
        "stopping": None if stopping is None else asdict(stopping),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CellCache:
    """Dictionary-on-disk of ``cell_key -> WorkloadResult``.

    Parameters
    ----------
    root:
        Cache directory (default: see :func:`resolve_cache_dir`).  It
        is created lazily on the first :meth:`put`.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = resolve_cache_dir(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def path_for(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig] = None,
    ) -> Path:
        """The file a cell's result lives in (whether or not it exists)."""
        return self.root / f"{cell_key(params, stopping)}.json"

    def get(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig] = None,
    ) -> Optional[WorkloadResult]:
        """The cached result for a cell, or ``None`` on a miss.

        Unreadable or corrupt entries count as misses (the cache must
        never be able to fail an experiment).
        """
        path = self.path_for(params, stopping)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return WorkloadResult(
            params=params_from_dict(data["params"]),
            mean_communication_time_per_call=data[
                "mean_communication_time_per_call"
            ],
            mean_call_duration=data["mean_call_duration"],
            mean_migration_time_per_call=data["mean_migration_time_per_call"],
            simulated_time=data["simulated_time"],
            raw=data.get("raw", {}),
        )

    def put(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig],
        result: WorkloadResult,
    ) -> Path:
        """Store a cell's result; returns the entry's path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(params, stopping)
        document = {
            "format_version": FORMAT_VERSION,
            "version": __version__,
            "params": params_to_dict(result.params),
            "mean_communication_time_per_call": (
                result.mean_communication_time_per_call
            ),
            "mean_call_duration": result.mean_call_duration,
            "mean_migration_time_per_call": result.mean_migration_time_per_call,
            "simulated_time": result.simulated_time,
            "raw": result.raw,
        }
        # Write-then-rename so concurrent readers never see a torn file.
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(document, indent=2))
        tmp.replace(path)
        self.writes += 1
        return path

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def wipe(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent wipe
                    pass
        return removed

    def __repr__(self) -> str:
        return (
            f"<CellCache root={str(self.root)!r} hits={self.hits} "
            f"misses={self.misses} writes={self.writes}>"
        )
