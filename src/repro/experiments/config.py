"""Experiment definitions: sweeps of parameter cells.

An experiment (one figure of the paper) is a set of *series* (curves)
evaluated over common x-values.  Each series maps an x-value to a fully
specified :class:`~repro.workload.params.SimulationParameters` cell via
its ``cell`` factory, which keeps definitions declarative and the
runner generic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workload.params import SimulationParameters

#: Maps an x-value to the parameter cell to simulate.
CellFactory = Callable[[float], SimulationParameters]


@dataclass(frozen=True)
class SeriesDef:
    """One curve of a figure."""

    #: Legend label (matches the paper's figure legends).
    label: str
    #: x-value -> parameter cell.
    cell: CellFactory


@dataclass(frozen=True)
class ExperimentDef:
    """One reproducible experiment (usually one paper figure)."""

    #: Identifier, e.g. ``"fig12"``.
    exp_id: str
    #: Human-readable title.
    title: str
    #: Meaning of the x-axis.
    x_label: str
    #: The sweep points.
    x_values: Tuple[float, ...]
    #: The curves.
    series: Tuple[SeriesDef, ...]
    #: Which WorkloadResult attribute the figure plots.
    metric: str = "mean_communication_time_per_call"
    #: Free-form notes (shape expectations, paper anchors).
    notes: str = ""

    def cells(self) -> List[Tuple[str, float, SimulationParameters]]:
        """Flatten to (label, x, params) triples, series-major."""
        out = []
        for s in self.series:
            for x in self.x_values:
                out.append((s.label, x, s.cell(x)))
        return out

    def cell_count(self) -> int:
        """Total number of simulation cells."""
        return len(self.series) * len(self.x_values)
