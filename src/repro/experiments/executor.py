"""Unified parallel execution of simulation cells.

Cells are independent simulations, which makes them embarrassingly
parallel — but three modules (the figure runner, the replication
harness and the grid sweeper) used to carry their own copy-pasted
process-pool blocks.  :class:`ParallelExecutor` is the single driver
they now share:

* ``workers="auto"`` resolves to :func:`os.cpu_count`; integer counts
  below 1 are rejected everywhere, not just in the figure runner.
* Underlying :class:`~concurrent.futures.ProcessPoolExecutor` pools are
  cached per worker count and reused across figures, so sweeping
  ``repro-experiment all --workers 8`` pays the pool spin-up once.
* Dispatch is chunked (several cells per IPC round-trip) to amortize
  pickling overhead on large sweeps.
* An optional :class:`~repro.experiments.cache.CellCache` is consulted
  before any simulation runs; ``cache_hits`` / ``cache_misses`` /
  ``cells_executed`` counters make "the warm re-run simulated nothing"
  a checkable property.

Results are always full
:class:`~repro.workload.clientserver.WorkloadResult` objects in job
order; callers extract whatever metric they need.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import WorkloadResult, run_cell
from repro.workload.params import SimulationParameters

#: One unit of work: a parameter cell and its stopping rule.
CellJob = Tuple[SimulationParameters, Optional[StoppingConfig]]

#: Worker-count spelling accepted throughout the experiment layer.
Workers = Union[int, str]


def max_workers_cap() -> Optional[int]:
    """The ``REPRO_MAX_WORKERS`` ceiling, or ``None`` when unset.

    Invalid or non-positive values raise :class:`ValueError` rather
    than being silently ignored — a typo'd cap should not oversubscribe
    a shared box.
    """
    raw = os.environ.get("REPRO_MAX_WORKERS")
    if raw is None or raw.strip() == "":
        return None
    try:
        cap = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_MAX_WORKERS must be a positive integer, got {raw!r}"
        ) from None
    if cap < 1:
        raise ValueError(
            f"REPRO_MAX_WORKERS must be >= 1, got {cap}"
        )
    return cap


def resolve_workers(workers: Workers) -> int:
    """Normalize a worker-count spelling to a positive integer.

    ``"auto"`` resolves to :func:`os.cpu_count`, clamped to at least 1
    (containers may report 0/None cores).  The ``REPRO_MAX_WORKERS``
    environment variable caps the result — both the ``"auto"``
    resolution and explicit requests — so sharded and pooled runs
    degrade gracefully on small machines instead of oversubscribing.
    Anything that is not ``"auto"`` or an integer >= 1 raises
    :class:`ValueError` — the same rejection everywhere (CLI, runner,
    replications, grid, sharded runner).
    """
    cap = max_workers_cap()
    if workers == "auto":
        resolved = max(1, os.cpu_count() or 1)
    else:
        if isinstance(workers, bool) or not isinstance(workers, int):
            raise ValueError(
                f"workers must be an int >= 1 or 'auto', got {workers!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        resolved = workers
    if cap is not None:
        resolved = min(resolved, cap)
    return resolved


# -- shared pools -----------------------------------------------------------

_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared process pool for ``workers``, created on first use."""
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = ProcessPoolExecutor(max_workers=workers)
    return pool


def shutdown_pools() -> None:
    """Shut down every shared pool (registered via :mod:`atexit`)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown()


atexit.register(shutdown_pools)


def _execute_cell(job: CellJob) -> WorkloadResult:
    """Top-level worker entry point (must be picklable)."""
    params, stopping = job
    return run_cell(params, stopping=stopping)


class ParallelExecutor:
    """Runs batches of cells, serially or over the shared pools.

    Parameters
    ----------
    workers:
        Positive integer or ``"auto"`` (= CPU count).  ``1`` runs cells
        inline without any pool.
    cache:
        Optional :class:`~repro.experiments.cache.CellCache` consulted
        before simulating and populated afterwards.
    """

    def __init__(self, workers: Workers = 1, cache=None):
        self.workers = resolve_workers(workers)
        self.cache = cache
        #: Cells answered from the cache / simulated, over this
        #: executor's lifetime.
        self.cache_hits = 0
        self.cache_misses = 0
        self.cells_executed = 0

    # -- execution ----------------------------------------------------------

    def run_cells(self, jobs: Sequence[CellJob]) -> List[WorkloadResult]:
        """Execute every job, returning results in job order."""
        jobs = list(jobs)
        results: List[Optional[WorkloadResult]] = [None] * len(jobs)

        cache = self.cache
        if cache is not None:
            pending = []
            for i, (params, stopping) in enumerate(jobs):
                hit = cache.get(params, stopping)
                if hit is not None:
                    results[i] = hit
                    self.cache_hits += 1
                else:
                    pending.append(i)
                    self.cache_misses += 1
        else:
            pending = list(range(len(jobs)))

        if pending:
            miss_jobs = [jobs[i] for i in pending]
            outcomes = self._execute(miss_jobs)
            self.cells_executed += len(miss_jobs)
            for i, outcome in zip(pending, outcomes):
                results[i] = outcome
                if cache is not None:
                    params, stopping = jobs[i]
                    cache.put(params, stopping, outcome)

        return results  # type: ignore[return-value]

    def run_one(
        self,
        params: SimulationParameters,
        stopping: Optional[StoppingConfig] = None,
    ) -> WorkloadResult:
        """Convenience wrapper for a single cell."""
        return self.run_cells([(params, stopping)])[0]

    def _execute(self, jobs: List[CellJob]) -> List[WorkloadResult]:
        if self.workers == 1 or len(jobs) == 1:
            return [_execute_cell(job) for job in jobs]
        pool = _get_pool(self.workers)
        chunksize = max(1, -(-len(jobs) // (self.workers * 4)))
        try:
            return list(pool.map(_execute_cell, jobs, chunksize=chunksize))
        except BrokenProcessPool:
            # A dead worker poisons the pool; drop it from the registry
            # so the next batch gets a fresh one.
            if _POOLS.get(self.workers) is pool:
                del _POOLS[self.workers]
            raise

    # -- introspection ------------------------------------------------------

    def counters(self) -> dict:
        """Machine-readable execution/caching counters."""
        return {
            "workers": self.workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cells_executed": self.cells_executed,
        }

    def __repr__(self) -> str:
        return (
            f"<ParallelExecutor workers={self.workers} "
            f"hits={self.cache_hits} executed={self.cells_executed}>"
        )
