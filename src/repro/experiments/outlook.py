"""CLI-facing sweeps for the outlook studies (§2.2 goal, §5 outlook).

The figure harness covers the paper's own evaluation; this module gives
the three extension studies the same one-command treatment:

* ``replication`` — read-ratio sweep, none/eager/threshold policies;
* ``fragmentation`` — fragment-count sweep, migration vs placement;
* ``availability`` — workload-mix sweep, collocated vs spread;
* ``faulttolerance`` — message-loss sweep under node crashes,
  no-migration vs conventional vs leased place-policy;
* ``chaos`` — every built-in chaos scenario under heartbeat detection
  and invariant monitoring (availability metrics per scenario; a run
  that reaches the table at all held every safety invariant);
* ``deploy`` — every versioned-migration deploy scenario of
  :mod:`repro.versioning` (clean run, coordinator crash mid-stage,
  induced invariant violation), one row per scenario with commit /
  rollback counts and the digest check.

Each function returns ``(header_row, data_rows)`` ready for
:func:`format_outlook_table`, keeping these studies printable and
CSV-exportable exactly like the figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.availability import (
    AvailabilityParameters,
    FaultToleranceParameters,
    run_availability_cell,
    run_faulttolerance_cell,
)
from repro.fragmentation import (
    FragmentationParameters,
    run_fragmentation_cell,
)
from repro.replication import ReplicationParameters, run_replication_cell
from repro.sim.stopping import StoppingConfig

Rows = Tuple[List[str], List[List[float]]]


def replication_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    read_ratios: Sequence[float] = (0.99, 0.95, 0.9, 0.8, 0.7, 0.5),
) -> Rows:
    """Mean op time per read ratio for the three replication policies."""
    policies = ("none", "eager", "threshold")
    header = ["read_ratio"] + list(policies)
    rows = []
    for ratio in read_ratios:
        row = [float(ratio)]
        for policy in policies:
            result = run_replication_cell(
                ReplicationParameters(
                    policy=policy, read_ratio=ratio, seed=seed
                ),
                stopping=stopping,
            )
            row.append(result.mean_op_time)
        rows.append(row)
    return header, rows


def fragmentation_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    fragment_counts: Sequence[int] = (1, 2, 4, 8),
    clients: int = 20,
) -> Rows:
    """Mean communication time per fragment count, both main policies."""
    policies = ("migration", "placement")
    header = ["fragments"] + list(policies)
    rows = []
    for k in fragment_counts:
        row = [float(k)]
        for policy in policies:
            result = run_fragmentation_cell(
                FragmentationParameters(
                    policy=policy,
                    clients=clients,
                    fragments_per_object=k,
                    seed=seed,
                ),
                stopping=stopping,
            )
            row.append(result.mean_communication_time_per_call)
        rows.append(row)
    return header, rows


def availability_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    mixes: Sequence[float] = (0.0, 0.1, 0.3, 0.6, 1.0),
    mttf: float = 200.0,
    mttr: float = 50.0,
) -> Rows:
    """Mean op time per group-op fraction for the two placements."""
    placements = ("collocated", "spread")
    header = ["group_op_fraction"] + list(placements)
    rows = []
    for mix in mixes:
        row = [float(mix)]
        for placement in placements:
            result = run_availability_cell(
                AvailabilityParameters(
                    placement=placement,
                    mttf=mttf,
                    mttr=mttr,
                    group_op_fraction=mix,
                    seed=seed,
                ),
                stopping=stopping,
            )
            row.append(result.mean_op_time)
        rows.append(row)
    return header, rows


def faulttolerance_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    losses: Sequence[float] = (0.0, 0.01, 0.03, 0.05),
    mttf: float = 150.0,
    mttr: float = 50.0,
    lease_duration: float = 60.0,
    sim_time: float = 5_000.0,
) -> Rows:
    """Mean call duration per loss rate under crashes, three policies.

    The place-policy column runs with leases enabled — the unleased
    variant degenerates under crashes (abandoned blocks leak their
    locks forever); the bench in
    ``benchmarks/bench_outlook_faulttolerance.py`` demonstrates that
    contrast directly.  ``stopping`` is accepted for registry symmetry
    but unused: fault-tolerance cells run a fixed horizon so degraded
    cells cannot cut their run short by producing few observations.
    """
    del stopping
    policies = ("sedentary", "migration", "placement")
    header = ["loss"] + list(policies)
    rows = []
    for loss in losses:
        row = [float(loss)]
        for policy in policies:
            result = run_faulttolerance_cell(
                FaultToleranceParameters(
                    policy=policy,
                    lease_duration=(
                        lease_duration if policy == "placement" else None
                    ),
                    loss=loss,
                    mttf=mttf,
                    mttr=mttr,
                    sim_time=sim_time,
                    seed=seed,
                )
            )
            row.append(result.mean_call_duration)
        rows.append(row)
    return header, rows


def chaos_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
    sim_time: float = 2_000.0,
) -> Rows:
    """One row per chaos scenario: call duration, suspicion, failovers.

    Every cell runs the leased place-policy with heartbeat failure
    detection and the full invariant-monitor suite; a scenario that
    violates a safety invariant raises
    :class:`~repro.errors.InvariantViolationError` instead of
    producing a row.  ``stopping`` is accepted for registry symmetry
    but unused (chaos campaigns run a fixed horizon).
    """
    del stopping
    from repro.availability import ChaosCampaignParameters, run_chaos_campaign
    from repro.availability.chaos import SCENARIOS

    names = list(scenarios) if scenarios is not None else sorted(SCENARIOS)
    header = [
        "scenario",
        "mean_call",
        "suspicions",
        "false_susp",
        "failovers",
        "crashes",
    ]
    rows: List[list] = []
    for name in names:
        result = run_chaos_campaign(
            ChaosCampaignParameters(
                scenario=name, sim_time=sim_time, seed=seed
            )
        )
        rows.append(
            [
                name,
                result.ft.mean_call_duration,
                float(result.ft.suspicions),
                float(result.ft.false_suspicions),
                float(result.ft.failovers),
                float(result.injections["crashes_injected"]),
            ]
        )
    return header, rows


def deploy_sweep(
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
    scenarios: Optional[Sequence[str]] = None,
) -> Rows:
    """One row per versioned-migration deploy scenario.

    Thin registry adapter over
    :func:`repro.versioning.study.deploy_sweep`; ``stopping`` is
    accepted for registry symmetry but unused (deploys run against a
    fixed-horizon workload).
    """
    del stopping
    from repro.versioning.study import DEPLOY_SCENARIOS
    from repro.versioning.study import deploy_sweep as _sweep

    names = tuple(scenarios) if scenarios is not None else DEPLOY_SCENARIOS
    return _sweep(seed=seed, scenarios=names)


#: Registry used by the CLI.
OUTLOOK_STUDIES = {
    "replication": replication_sweep,
    "fragmentation": fragmentation_sweep,
    "availability": availability_sweep,
    "faulttolerance": faulttolerance_sweep,
    "chaos": chaos_sweep,
    "deploy": deploy_sweep,
}


def format_outlook_table(
    name: str, header: List[str], rows: List[List[float]], precision: int = 3
) -> str:
    """Aligned text table, matching the figure tables' style.

    The first column may be numeric (a swept parameter) or a string
    (e.g. a chaos scenario name); later columns render floats at
    ``precision``, ints bare, and pass strings through (e.g. a deploy
    status).
    """

    def cell(v, first: bool) -> str:
        if isinstance(v, str):
            return v
        if first or isinstance(v, int):
            return f"{v:g}"
        return f"{v:.{precision}f}"

    str_rows = [header] + [
        [cell(v, i == 0) for i, v in enumerate(row)] for row in rows
    ]
    widths = [max(len(r[i]) for r in str_rows) for i in range(len(header))]
    lines = [
        f"outlook:{name}",
        "-" * (sum(widths) + 3 * len(widths)),
    ]
    for r in str_rows:
        lines.append("   ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def run_outlook(
    name: str,
    seed: int = 0,
    stopping: Optional[StoppingConfig] = None,
) -> str:
    """Run one outlook study and return its formatted table."""
    try:
        sweep = OUTLOOK_STUDIES[name]
    except KeyError:
        raise ValueError(
            f"unknown outlook study {name!r}; choose from "
            f"{sorted(OUTLOOK_STUDIES)}"
        ) from None
    header, rows = sweep(seed=seed, stopping=stopping)
    return format_outlook_table(name, header, rows)
