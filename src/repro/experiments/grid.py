"""Two-axis parameter grids (exploration beyond the paper's 1-D sweeps).

The paper's figures sweep one parameter at a time; when exploring a new
configuration it is often the *interaction* of two parameters that
matters (e.g. client count × N/M ratio decides where placement stops
paying off).  :func:`sweep_grid` runs a full cross-product of two
override axes and returns a :class:`GridResult` that prints as a value
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.experiments.executor import ParallelExecutor, Workers
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters


@dataclass(frozen=True)
class Axis:
    """One sweep axis: a parameter field name and its values."""

    field: str
    values: Tuple[Any, ...]

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"axis {self.field!r} needs at least one value")
        if self.field not in SimulationParameters.__dataclass_fields__:
            raise ValueError(
                f"{self.field!r} is not a SimulationParameters field"
            )


@dataclass
class GridResult:
    """A filled 2-D grid of metric values.

    ``values[i][j]`` corresponds to ``rows.values[i]`` ×
    ``cols.values[j]``.
    """

    base: SimulationParameters
    rows: Axis
    cols: Axis
    metric: str
    values: List[List[float]] = field(default_factory=list)

    def at(self, row_value, col_value) -> float:
        """Cell lookup by axis values."""
        i = self.rows.values.index(row_value)
        j = self.cols.values.index(col_value)
        return self.values[i][j]

    def best_cell(self) -> Tuple[Any, Any, float]:
        """(row value, col value, metric) of the minimal cell."""
        best = None
        for i, row_value in enumerate(self.rows.values):
            for j, col_value in enumerate(self.cols.values):
                v = self.values[i][j]
                if best is None or v < best[2]:
                    best = (row_value, col_value, v)
        return best

    def format(self, precision: int = 3) -> str:
        """Aligned matrix rendering."""
        header = [f"{self.rows.field}\\{self.cols.field}"] + [
            f"{v:g}" if isinstance(v, (int, float)) else str(v)
            for v in self.cols.values
        ]
        str_rows = [header]
        for row_value, row in zip(self.rows.values, self.values):
            label = (
                f"{row_value:g}"
                if isinstance(row_value, (int, float))
                else str(row_value)
            )
            str_rows.append([label] + [f"{v:.{precision}f}" for v in row])
        widths = [
            max(len(r[i]) for r in str_rows) for i in range(len(header))
        ]
        lines = [f"grid [{self.metric}] base: {self.base.label()}"]
        for r in str_rows:
            lines.append(
                "   ".join(cell.rjust(w) for cell, w in zip(r, widths))
            )
        return "\n".join(lines)


def sweep_grid(
    base: SimulationParameters,
    rows: Axis,
    cols: Axis,
    metric: str = "mean_communication_time_per_call",
    stopping: Optional[StoppingConfig] = None,
    workers: Workers = 1,
    cache=None,
    executor: Optional[ParallelExecutor] = None,
) -> GridResult:
    """Run the full rows × cols cross-product of parameter overrides."""
    if rows.field == cols.field:
        raise ValueError("row and column axes must differ")
    if executor is None:
        executor = ParallelExecutor(workers=workers, cache=cache)
    jobs = []
    for row_value in rows.values:
        for col_value in cols.values:
            params = base.with_overrides(
                **{rows.field: row_value, cols.field: col_value}
            )
            params.validate()
            jobs.append((params, stopping))

    flat = [
        getattr(result, metric) for result in executor.run_cells(jobs)
    ]

    n_cols = len(cols.values)
    values = [
        flat[i * n_cols : (i + 1) * n_cols] for i in range(len(rows.values))
    ]
    return GridResult(
        base=base, rows=rows, cols=cols, metric=metric, values=values
    )
