"""Rendering experiment results as tables and CSV.

The paper's figures are line plots; the harness prints the same data as
aligned text tables (one row per x-value, one column per series) so the
"who wins, by what factor, where are the crossovers" shape is readable
in a terminal, plus CSV export for external plotting.
"""

from __future__ import annotations

import csv
import io
from typing import List, Optional

from repro.experiments.runner import ExperimentResult


def format_table(
    result: ExperimentResult,
    metric: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Aligned text table of one experiment's curves."""
    defn = result.definition
    metric = metric or defn.metric
    labels = result.labels
    header = [defn.x_label] + labels
    rows = result.as_table(metric)

    str_rows = [header] + [
        [f"{row[0]:g}"] + [f"{v:.{precision}f}" for v in row[1:]] for row in rows
    ]
    widths = [
        max(len(r[i]) for r in str_rows) for i in range(len(header))
    ]
    lines = [
        f"{defn.exp_id}: {defn.title}   [metric: {metric}]",
        "-" * (sum(widths) + 3 * len(widths)),
    ]
    for r in str_rows:
        lines.append("   ".join(cell.rjust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


def to_csv(result: ExperimentResult, metric: Optional[str] = None) -> str:
    """CSV rendering (x column + one column per series)."""
    defn = result.definition
    metric = metric or defn.metric
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([defn.x_label] + result.labels)
    for row in result.as_table(metric):
        writer.writerow(row)
    return buf.getvalue()


def summary_lines(result: ExperimentResult) -> List[str]:
    """Per-series one-line summaries (endpoint values, mean)."""
    defn = result.definition
    out = []
    for label in result.labels:
        ys = result.series(label)
        out.append(
            f"{defn.exp_id} {label!r}: "
            f"start={ys[0]:.3f} end={ys[-1]:.3f} "
            f"min={min(ys):.3f} max={max(ys):.3f}"
        )
    return out
