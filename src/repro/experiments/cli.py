"""Command-line entry point: ``repro-experiment``.

Examples::

    repro-experiment fig12 --fast
    repro-experiment fig16 --seed 7 --workers 4 --csv fig16.csv
    repro-experiment all --fast
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.executor import ParallelExecutor, resolve_workers
from repro.experiments.figures import FIGURES, make_figure
from repro.experiments.outlook import OUTLOOK_STUDIES, run_outlook
from repro.experiments.report import format_table, to_csv
from repro.experiments.runner import run_figure
from repro.sim.stopping import StoppingConfig


def _workers_type(text: str) -> int:
    """argparse type for --workers: a positive int or 'auto'."""
    try:
        return resolve_workers(text if text == "auto" else int(text))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    """Build the repro-experiment argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description=(
            "Regenerate the evaluation figures of 'Object Migration in "
            "Non-Monolithic Distributed Applications' (ICDCS 1996)."
        ),
    )
    parser.add_argument(
        "figure",
        choices=sorted(FIGURES)
        + sorted(OUTLOOK_STUDIES)
        + ["all", "telemetry", "live"],
        help=(
            "which figure to regenerate (figN), one of the outlook "
            "studies (replication / fragmentation / availability / "
            "faulttolerance / chaos / deploy), 'telemetry' for one "
            "fully instrumented run with exported traces, or 'live' "
            "for the multi-process runtime demo (sim-predicted vs. "
            "measured conflict/abort rates)"
        ),
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=3,
        help="live only: worker OS processes to spawn (default 3)",
    )
    parser.add_argument(
        "--objects",
        type=int,
        default=120,
        help="live only: mobile objects to migrate (default 120)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=20.0,
        help="live only: hard wall-clock budget in seconds (default 20)",
    )
    parser.add_argument(
        "--no-chaos",
        action="store_true",
        help="live only: skip the injected crash and partition",
    )
    parser.add_argument(
        "--arbitration",
        choices=["central", "home"],
        default="central",
        help="live only: who grants move-block leases — the supervisor "
        "('central') or per-slice home nodes, peer-to-peer ('home')",
    )
    parser.add_argument(
        "--kill-supervisor",
        action="store_true",
        help="live only: SIGKILL the arbiter itself mid-run and recover "
        "it from the arbitration WAL (implies the demo chaos schedule)",
    )
    parser.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="chaos/deploy/telemetry only: run a single named scenario "
        "(e.g. crash-storm, crash-coordinator) instead of the full "
        "matrix",
    )
    parser.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="DIR",
        help="faulttolerance/chaos/deploy: run ONE instrumented seeded "
        "cell (not the sweep) and export metrics.jsonl, spans.jsonl "
        "and a Perfetto-loadable trace.json into DIR.  live: record "
        "per-process spans/metrics + flight recorders across the OS "
        "processes and merge them into one Perfetto trace in DIR",
    )
    parser.add_argument(
        "--markdown",
        type=str,
        default=None,
        metavar="FILE",
        help="deploy only: also write the full plan/deploy report "
        "(stage timelines, rollbacks, digests) as markdown to FILE",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root random seed (default 0)"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="thin sweep + loose stopping rule (smoke mode)",
    )
    parser.add_argument(
        "--paper-precision",
        action="store_true",
        help="use the paper's 1%% CI at p=0.99 stopping rule (slow)",
    )
    parser.add_argument(
        "--workers",
        type=_workers_type,
        default=1,
        help="parallel worker processes: a positive int or 'auto' "
        "(= CPU count)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="figures only: partition every cell across N kernel "
        "instances under conservative time-window synchronization "
        "(1 = the unsharded kernel, bit-identical results)",
    )
    parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="reuse cached cell results for unchanged parameters "
        "(content-addressed; location: $REPRO_CACHE_DIR or "
        "~/.cache/repro-objmig)",
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="also write results to CSV file"
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render an ASCII chart of the curves after the table",
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="persist full results (parameters + metrics) to a JSON file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="verify the paper's claims about this figure (PASS/FAIL)",
    )
    return parser


def _stopping(args) -> StoppingConfig:
    if args.paper_precision:
        return StoppingConfig.paper()
    if args.fast:
        return StoppingConfig.fast()
    return StoppingConfig()


def _run_telemetry(args) -> int:
    """One instrumented run + artifact export (see telemetry_run.py).

    ``repro-experiment telemetry`` runs the default fault-tolerance
    cell (or, with ``--scenario``, one chaos scenario).  The study
    commands with ``--telemetry DIR`` run their single-cell equivalent:
    a sweep would pool many environments into one trace, so the
    instrumented path always runs exactly one seeded cell.
    ``repro-experiment deploy --telemetry DIR`` exports the deploy
    span tree (stages, per-object upgrades, rollbacks) the same way.
    """
    from repro.availability.chaos import SCENARIOS
    from repro.experiments.telemetry_run import (
        describe_run,
        run_instrumented_chaos,
        run_instrumented_deploy,
        run_instrumented_faulttolerance,
    )
    from repro.telemetry.export import summary_table

    out_dir = args.telemetry or "telemetry-out"
    if args.figure == "deploy":
        from repro.versioning.study import DEPLOY_SCENARIOS

        scenario = args.scenario or "crash-coordinator"
        if scenario not in DEPLOY_SCENARIOS:
            print(
                f"unknown deploy scenario {scenario!r}; choose from "
                f"{sorted(DEPLOY_SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        print(
            f"instrumented deploy scenario {scenario!r} "
            f"(seed {args.seed}) -> {out_dir}",
            file=sys.stderr,
        )
        _, telemetry, paths = run_instrumented_deploy(
            out_dir, scenario=scenario, seed=args.seed
        )
        print(summary_table(telemetry))
        print()
        print(describe_run(telemetry, paths))
        return 0
    use_chaos = args.figure == "chaos" or args.scenario is not None
    if use_chaos:
        scenario = args.scenario or "crash-storm"
        if scenario not in SCENARIOS:
            print(
                f"unknown scenario {scenario!r}; choose from "
                f"{sorted(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        print(
            f"instrumented chaos scenario {scenario!r} "
            f"(seed {args.seed}) -> {out_dir}",
            file=sys.stderr,
        )
        _, telemetry, paths = run_instrumented_chaos(
            out_dir, scenario=scenario, seed=args.seed
        )
    else:
        print(
            f"instrumented fault-tolerance cell (seed {args.seed}) "
            f"-> {out_dir}",
            file=sys.stderr,
        )
        _, telemetry, paths = run_instrumented_faulttolerance(
            out_dir, seed=args.seed
        )
    print(summary_table(telemetry))
    print()
    print(describe_run(telemetry, paths))
    return 0


def _run_live(args) -> int:
    """The multi-process live demo: sim-predicted vs. measured rates.

    Spawns ``--nodes`` worker OS processes under the supervisor,
    injects the demo chaos schedule (one partition + one crash) unless
    ``--no-chaos``, and prints the side-by-side report.
    ``--kill-supervisor`` adds an arbiter SIGKILL to the schedule; the
    run must then recover from the arbitration WAL.  ``--json``
    persists the full report (the CI artifact) with a top-level
    ``violations`` list.  Exit code 1 means the run finished but
    violated a lock/placement invariant, or the supervisor could not
    be recovered.
    """
    from repro.availability.livechaos import (
        LiveChaosSchedule,
        demo_schedule,
        kill_supervisor_schedule,
    )
    from repro.errors import SupervisionError
    from repro.runtime.live.demo import format_report, run_live_demo
    from repro.runtime.live.supervisor import SupervisorConfig

    config = SupervisorConfig(
        num_nodes=args.nodes,
        num_objects=args.objects,
        max_duration=args.duration,
        target_migrations=60 if args.fast else 250,
        rng_seed=args.seed,
        arbitration=args.arbitration,
        telemetry_dir=args.telemetry,
    )
    try:
        config.validate()
    except ValueError as exc:
        print(f"invalid live config: {exc}", file=sys.stderr)
        return 2
    chaos = (
        LiveChaosSchedule()
        if args.no_chaos
        else demo_schedule(config.num_nodes)
    )
    if args.kill_supervisor:
        chaos = kill_supervisor_schedule(config.num_nodes, base=chaos)
    print(
        f"live demo: {config.num_nodes} worker processes, "
        f"{config.num_objects} objects, {args.arbitration} arbitration, "
        f"{chaos.crashes} crash(es) + {chaos.partitions} partition(s) + "
        f"{chaos.supervisor_kills} supervisor kill(s), "
        f"budget {config.max_duration:.0f}s (seed {args.seed})",
        file=sys.stderr,
    )
    try:
        report = run_live_demo(config, chaos=chaos)
    except SupervisionError as exc:
        print(f"live demo failed: {exc}", file=sys.stderr)
        return 1
    print(format_report(report))
    merged = report["measured"].get("telemetry", {}).get("merged", {})
    if merged.get("trace"):
        print(
            f"telemetry: merged {merged['spans']} spans from "
            f"{len(merged['processes'])} process files into "
            f"{merged['trace']} (open in Perfetto); "
            f"summary {merged['summary']}",
            file=sys.stderr,
        )
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}", file=sys.stderr)
    if report["violations"]:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    stopping = _stopping(args)

    if args.figure != "live" and (
        args.nodes != 3
        or args.objects != 120
        or args.duration != 20.0
        or args.no_chaos
        or args.arbitration != "central"
        or args.kill_supervisor
    ):
        print(
            "--nodes/--objects/--duration/--no-chaos/--arbitration/"
            "--kill-supervisor only apply to the live demo",
            file=sys.stderr,
        )
        return 2

    if args.figure == "live":
        return _run_live(args)

    if args.scenario is not None and args.figure not in (
        "chaos",
        "deploy",
        "telemetry",
    ):
        print(
            "--scenario only applies to the chaos and deploy studies "
            "and telemetry runs",
            file=sys.stderr,
        )
        return 2

    if args.telemetry is not None and args.figure not in (
        "faulttolerance",
        "chaos",
        "deploy",
        "telemetry",
    ):
        print(
            "--telemetry only applies to faulttolerance, chaos, deploy "
            "and telemetry runs",
            file=sys.stderr,
        )
        return 2

    if args.markdown is not None and args.figure != "deploy":
        print(
            "--markdown only applies to the deploy study",
            file=sys.stderr,
        )
        return 2

    if args.shards != 1 and args.figure not in FIGURES and args.figure != "all":
        print(
            "--shards only applies to figure runs (figN or 'all')",
            file=sys.stderr,
        )
        return 2

    if args.figure == "telemetry" or args.telemetry is not None:
        return _run_telemetry(args)

    if args.figure == "chaos" and args.scenario is not None:
        from repro.availability.chaos import SCENARIOS
        from repro.experiments.outlook import chaos_sweep, format_outlook_table

        if args.scenario not in SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r}; choose from "
                f"{sorted(SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        print(
            f"running chaos scenario {args.scenario!r}", file=sys.stderr
        )
        header, rows = chaos_sweep(
            seed=args.seed, scenarios=[args.scenario]
        )
        print(format_outlook_table("chaos", header, rows))
        return 0

    if args.figure == "deploy":
        from repro.experiments.outlook import format_outlook_table
        from repro.versioning.study import (
            DEPLOY_SCENARIOS,
            deploy_report_markdown,
            deploy_rows,
            run_deploy_matrix,
        )

        if args.scenario is not None and args.scenario not in DEPLOY_SCENARIOS:
            print(
                f"unknown deploy scenario {args.scenario!r}; choose from "
                f"{sorted(DEPLOY_SCENARIOS)}",
                file=sys.stderr,
            )
            return 2
        scenarios = (
            DEPLOY_SCENARIOS if args.scenario is None else (args.scenario,)
        )
        print(
            f"running deploy scenarios: {', '.join(scenarios)}",
            file=sys.stderr,
        )
        results = run_deploy_matrix(seed=args.seed, scenarios=scenarios)
        header, rows = deploy_rows(results)
        print(format_outlook_table("deploy", header, rows))
        if args.markdown is not None:
            with open(args.markdown, "w") as fh:
                fh.write(deploy_report_markdown(results))
            print(f"wrote {args.markdown}", file=sys.stderr)
        return 0

    if args.figure in OUTLOOK_STUDIES:
        print(
            f"running outlook study {args.figure!r}", file=sys.stderr
        )
        print(run_outlook(args.figure, seed=args.seed, stopping=stopping))
        return 0

    names = sorted(FIGURES) if args.figure == "all" else [args.figure]

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    sharded = args.shards > 1
    if sharded and args.cache:
        print(
            "--cache keys on parameters alone; sharded results are not "
            "interchangeable with unsharded ones, so --cache cannot be "
            "combined with --shards > 1",
            file=sys.stderr,
        )
        return 2

    cache = None
    if args.cache:
        from repro.experiments.cache import CellCache

        cache = CellCache()
    # One executor for the whole invocation: the process pool (and the
    # cache-hit counters) are shared across every figure.
    executor = ParallelExecutor(workers=args.workers, cache=cache)
    sharded_runner = None
    if sharded:
        from repro.experiments.runner import ShardedRunner

        sharded_runner = ShardedRunner(
            args.shards, stopping=stopping, workers=args.workers
        )

    for name in names:
        definition = make_figure(name, seed=args.seed, fast=args.fast)
        print(
            f"running {definition.exp_id}: {definition.cell_count()} cells "
            f"({len(definition.series)} series x {len(definition.x_values)} points)"
            + (f" across {args.shards} shards" if sharded else ""),
            file=sys.stderr,
        )
        if sharded:
            result = sharded_runner.run(definition)
        else:
            result = run_figure(definition, stopping=stopping, executor=executor)
        print(format_table(result))
        print()
        if args.plot:
            from repro.experiments.plot import render_plot

            print(render_plot(result))
            print()
        if args.csv:
            path = args.csv if len(names) == 1 else f"{name}_{args.csv}"
            with open(path, "w", newline="") as fh:
                fh.write(to_csv(result))
            print(f"wrote {path}", file=sys.stderr)
        if args.json:
            from repro.experiments.persistence import save_result

            path = args.json if len(names) == 1 else f"{name}_{args.json}"
            save_result(result, path)
            print(f"wrote {path}", file=sys.stderr)
        if args.check:
            from repro.experiments.expectations import (
                format_verdicts,
                verify_expectations,
            )

            verdicts = verify_expectations(result)
            print(format_verdicts(verdicts))
            print()
            if any(not v.passed for v in verdicts):
                return 1
    if cache is not None:
        print(
            f"cache: {executor.cache_hits} hits, "
            f"{executor.cache_misses} misses "
            f"({executor.cells_executed} cells simulated)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
