"""Experiment runner: executes a figure's cells and collects curves.

Cells are independent simulations, so the runner can fan them out over
a process pool (``workers > 1``).  Results come back as an
:class:`ExperimentResult`: per-series lists of
:class:`~repro.workload.clientserver.WorkloadResult` aligned with the
definition's x-values, plus helpers for extracting plottable series.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentDef
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import WorkloadResult, run_cell
from repro.workload.params import SimulationParameters


def _run_one(args: Tuple[SimulationParameters, Optional[StoppingConfig]]):
    """Top-level worker entry point (must be picklable)."""
    params, stopping = args
    return run_cell(params, stopping=stopping)


@dataclass
class ExperimentResult:
    """All cells of one experiment, organized by series."""

    definition: ExperimentDef
    #: series label -> results aligned with definition.x_values.
    results: Dict[str, List[WorkloadResult]] = field(default_factory=dict)

    def series(self, label: str, metric: Optional[str] = None) -> List[float]:
        """The y-values of one curve (default: the figure's metric)."""
        metric = metric or self.definition.metric
        return [getattr(r, metric) for r in self.results[label]]

    def points(
        self, label: str, metric: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(x, y) pairs of one curve."""
        return list(zip(self.definition.x_values, self.series(label, metric)))

    @property
    def labels(self) -> List[str]:
        """Series labels in definition order."""
        return [s.label for s in self.definition.series]

    def as_table(self, metric: Optional[str] = None) -> List[List[float]]:
        """Rows of [x, y_series1, y_series2, ...] for reports."""
        metric = metric or self.definition.metric
        columns = {label: self.series(label, metric) for label in self.labels}
        rows = []
        for i, x in enumerate(self.definition.x_values):
            rows.append([x] + [columns[label][i] for label in self.labels])
        return rows


class ExperimentRunner:
    """Runs experiment definitions, optionally in parallel."""

    def __init__(
        self,
        stopping: Optional[StoppingConfig] = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.stopping = stopping
        self.workers = workers

    def run(self, definition: ExperimentDef) -> ExperimentResult:
        """Execute every cell of the definition."""
        cells = definition.cells()
        jobs = [(params, self.stopping) for _, _, params in cells]

        if self.workers == 1:
            outcomes = [_run_one(job) for job in jobs]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_one, jobs))

        result = ExperimentResult(definition=definition)
        for (label, _x, _params), outcome in zip(cells, outcomes):
            result.results.setdefault(label, []).append(outcome)
        return result


def run_figure(
    definition: ExperimentDef,
    stopping: Optional[StoppingConfig] = None,
    workers: int = 1,
) -> ExperimentResult:
    """Convenience one-shot wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(stopping=stopping, workers=workers).run(definition)
