"""Experiment runner: executes a figure's cells and collects curves.

Cells are independent simulations, so the runner fans them out through
the shared :class:`~repro.experiments.executor.ParallelExecutor`
(``workers > 1``), optionally answering unchanged cells from the
content-addressed :class:`~repro.experiments.cache.CellCache`.  Results
come back as an :class:`ExperimentResult`: per-series lists of
:class:`~repro.workload.clientserver.WorkloadResult` aligned with the
definition's x-values, plus helpers for extracting plottable series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments.config import ExperimentDef
from repro.experiments.executor import ParallelExecutor, Workers
from repro.sim.stopping import StoppingConfig
from repro.workload.clientserver import WorkloadResult


@dataclass
class ExperimentResult:
    """All cells of one experiment, organized by series."""

    definition: ExperimentDef
    #: series label -> results aligned with definition.x_values.
    results: Dict[str, List[WorkloadResult]] = field(default_factory=dict)

    def series(self, label: str, metric: Optional[str] = None) -> List[float]:
        """The y-values of one curve (default: the figure's metric)."""
        metric = metric or self.definition.metric
        return [getattr(r, metric) for r in self.results[label]]

    def points(
        self, label: str, metric: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """(x, y) pairs of one curve."""
        return list(zip(self.definition.x_values, self.series(label, metric)))

    @property
    def labels(self) -> List[str]:
        """Series labels in definition order."""
        return [s.label for s in self.definition.series]

    def as_table(self, metric: Optional[str] = None) -> List[List[float]]:
        """Rows of [x, y_series1, y_series2, ...] for reports."""
        metric = metric or self.definition.metric
        columns = {label: self.series(label, metric) for label in self.labels}
        rows = []
        for i, x in enumerate(self.definition.x_values):
            rows.append([x] + [columns[label][i] for label in self.labels])
        return rows


class ExperimentRunner:
    """Runs experiment definitions, optionally in parallel and cached.

    Parameters
    ----------
    stopping:
        Stopping rule applied to every cell.
    workers:
        Worker processes (int >= 1 or ``"auto"``); ignored when an
        ``executor`` is supplied.
    cache:
        Optional :class:`~repro.experiments.cache.CellCache`; ignored
        when an ``executor`` is supplied (the executor's cache wins).
    executor:
        Pre-built :class:`ParallelExecutor` to share across figures.
    """

    def __init__(
        self,
        stopping: Optional[StoppingConfig] = None,
        workers: Workers = 1,
        cache=None,
        executor: Optional[ParallelExecutor] = None,
    ):
        if executor is None:
            executor = ParallelExecutor(workers=workers, cache=cache)
        self.stopping = stopping
        self.executor = executor

    @property
    def workers(self) -> int:
        """Resolved worker count of the underlying executor."""
        return self.executor.workers

    def run(self, definition: ExperimentDef) -> ExperimentResult:
        """Execute every cell of the definition."""
        cells = definition.cells()
        jobs = [(params, self.stopping) for _, _, params in cells]
        outcomes = self.executor.run_cells(jobs)

        result = ExperimentResult(definition=definition)
        for (label, _x, _params), outcome in zip(cells, outcomes):
            result.results.setdefault(label, []).append(outcome)
        return result


def run_figure(
    definition: ExperimentDef,
    stopping: Optional[StoppingConfig] = None,
    workers: Workers = 1,
    cache=None,
    executor: Optional[ParallelExecutor] = None,
) -> ExperimentResult:
    """Convenience one-shot wrapper around :class:`ExperimentRunner`."""
    return ExperimentRunner(
        stopping=stopping, workers=workers, cache=cache, executor=executor
    ).run(definition)


class ShardedRunner:
    """Figure runner executing every cell through the sharded kernel.

    The parallelism axis moves *inside* each cell: instead of fanning
    whole cells across a process pool, each cell's node graph is
    partitioned into ``shards`` kernel instances advancing under
    conservative time-window synchronization (see
    :mod:`repro.sim.shard`).  Cells therefore run sequentially here —
    the worker processes are busy hosting shards.

    Results are :class:`~repro.sim.shard.runner.ShardedResult` objects,
    attribute-compatible with ``WorkloadResult``, so the returned
    :class:`ExperimentResult` plots/reports identically.  With
    ``shards == 1`` every cell runs on the unsharded kernel and the
    figures are bit-identical to :class:`ExperimentRunner`'s.
    """

    def __init__(
        self,
        shards: int,
        stopping: Optional[StoppingConfig] = None,
        workers: Workers = "auto",
        remote_fraction: float = 0.05,
        base_latency: float = 2.0,
        backend: str = "auto",
    ):
        from repro.sim.shard.partition import effective_shards
        from repro.sim.shard.runner import run_sharded_cell

        self._run_cell = run_sharded_cell
        self._effective_shards = effective_shards
        self.shards = shards
        self.stopping = stopping
        self.workers = workers
        self.remote_fraction = remote_fraction
        self.base_latency = base_latency
        self.backend = backend

    def run(self, definition: ExperimentDef) -> ExperimentResult:
        """Execute every cell of the definition, sharded."""
        result = ExperimentResult(definition=definition)
        for label, _x, params in definition.cells():
            # Cells too small (or of a shape the sharded kernel does
            # not cover) degrade to fewer shards instead of failing
            # the sweep — a 1-client Fig 12 cell runs unsharded.
            outcome = self._run_cell(
                params,
                self._effective_shards(params, self.shards),
                self.stopping,
                remote_fraction=self.remote_fraction,
                base_latency=self.base_latency,
                backend=self.backend,
                workers=self.workers,
            )
            result.results.setdefault(label, []).append(outcome)
        return result
