"""Saving and loading experiment results as JSON.

Experiment cells can take minutes at paper precision; persisting the
results lets analysis (break-even finding, plotting, EXPERIMENTS.md
regeneration) run without re-simulating.  The format is stable,
versioned and human-diffable: one JSON document per experiment with the
definition's identity, the parameter grid, and every cell's metrics.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

from repro.core.attachment import AttachmentMode
from repro.experiments.config import ExperimentDef, SeriesDef
from repro.experiments.runner import ExperimentResult
from repro.workload.clientserver import WorkloadResult
from repro.workload.params import SimulationParameters

#: Format version written into every document.
FORMAT_VERSION = 1


def params_to_dict(params: SimulationParameters) -> dict:
    """Serialize parameters to a JSON-compatible dict (shared codec)."""
    data = asdict(params)
    data["attachment_mode"] = params.attachment_mode.value
    return data


def params_from_dict(data: dict) -> SimulationParameters:
    """Rebuild :class:`SimulationParameters` from :func:`params_to_dict`."""
    data = dict(data)
    data["attachment_mode"] = AttachmentMode(data["attachment_mode"])
    return SimulationParameters(**data)


# Backwards-compatible aliases (the codecs predate the cell cache).
_params_to_dict = params_to_dict
_params_from_dict = params_from_dict


def result_to_dict(result: ExperimentResult) -> dict:
    """Serialize an experiment result to a JSON-compatible dict."""
    defn = result.definition
    return {
        "format_version": FORMAT_VERSION,
        "exp_id": defn.exp_id,
        "title": defn.title,
        "x_label": defn.x_label,
        "x_values": list(defn.x_values),
        "metric": defn.metric,
        "notes": defn.notes,
        "series": {
            label: [
                {
                    "params": _params_to_dict(cell.params),
                    "mean_communication_time_per_call": (
                        cell.mean_communication_time_per_call
                    ),
                    "mean_call_duration": cell.mean_call_duration,
                    "mean_migration_time_per_call": (
                        cell.mean_migration_time_per_call
                    ),
                    "simulated_time": cell.simulated_time,
                    "raw": cell.raw,
                }
                for cell in result.results[label]
            ]
            for label in result.labels
        },
    }


def result_from_dict(data: dict) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from its serialized form.

    The reconstructed definition's cell factories return the stored
    parameter cells (index-free factories are not recoverable, nor
    needed for analysis).
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    series_defs = []
    results = {}
    for label, cells in data["series"].items():
        params_list = [_params_from_dict(c["params"]) for c in cells]
        series_defs.append(
            SeriesDef(
                label=label,
                cell=lambda x, _params=params_list[0]: _params,
            )
        )
        results[label] = [
            WorkloadResult(
                params=params,
                mean_communication_time_per_call=c[
                    "mean_communication_time_per_call"
                ],
                mean_call_duration=c["mean_call_duration"],
                mean_migration_time_per_call=c[
                    "mean_migration_time_per_call"
                ],
                simulated_time=c["simulated_time"],
                raw=c.get("raw", {}),
            )
            for params, c in zip(params_list, cells)
        ]
    definition = ExperimentDef(
        exp_id=data["exp_id"],
        title=data["title"],
        x_label=data["x_label"],
        x_values=tuple(data["x_values"]),
        series=tuple(series_defs),
        metric=data["metric"],
        notes=data.get("notes", ""),
    )
    return ExperimentResult(definition=definition, results=results)


def save_result(result: ExperimentResult, path: Union[str, Path]) -> Path:
    """Write an experiment result to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result_to_dict(result), indent=2))
    return path


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read an experiment result back from a JSON file."""
    return result_from_dict(json.loads(Path(path).read_text()))
