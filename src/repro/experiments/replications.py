"""Independent replications: cross-seed confidence intervals.

A single simulation run converges to *its seed's* steady state; claims
like "placement breaks even near C = 20" need the spread *across*
seeds.  This module runs a parameter cell under R different seeds and
summarizes the replicate means — the classic independent-replications
method, complementing the within-run batch-means rule of §4.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.experiments.executor import ParallelExecutor, Workers
from repro.sim.stats import RunningStats
from repro.sim.stopping import StoppingConfig
from repro.workload.params import SimulationParameters


@dataclass(frozen=True)
class ReplicatedResult:
    """Summary of one cell across independent seeds.

    Attributes
    ----------
    params:
        The cell (seed field is the *base* seed).
    seeds:
        The seeds actually used.
    per_seed:
        Each replicate's mean communication time per call.
    stats:
        RunningStats over the replicate means (for CIs / t-tests).
    """

    params: SimulationParameters
    seeds: Tuple[int, ...]
    per_seed: Tuple[float, ...]
    stats: RunningStats

    @property
    def mean(self) -> float:
        """Grand mean over replicates."""
        return self.stats.mean

    def halfwidth(self, confidence: float = 0.95) -> float:
        """CI half-width of the grand mean (t over replicates)."""
        return self.stats.confidence_halfwidth(confidence)

    def interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """(low, high) CI of the grand mean."""
        hw = self.halfwidth(confidence)
        return (self.mean - hw, self.mean + hw)

    def summary(self) -> dict:
        """Machine-readable record for EXPERIMENTS.md style reports."""
        low, high = self.interval()
        return {
            "mean": self.mean,
            "stddev": self.stats.stddev,
            "ci95": [low, high],
            "replicates": len(self.seeds),
            "min": min(self.per_seed),
            "max": max(self.per_seed),
        }


def run_replicated(
    params: SimulationParameters,
    replicates: int = 5,
    stopping: Optional[StoppingConfig] = None,
    workers: Workers = 1,
    seeds: Optional[Sequence[int]] = None,
    cache=None,
    executor: Optional[ParallelExecutor] = None,
) -> ReplicatedResult:
    """Run a cell under several seeds and summarize the means.

    ``seeds`` defaults to ``base_seed, base_seed + 1, ...`` — explicit
    and reproducible.  With ``workers > 1`` (or ``"auto"``) replicates
    run over the shared executor's process pool; a ``cache`` answers
    already-simulated replicates without re-running them.
    """
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    if executor is None:
        executor = ParallelExecutor(workers=workers, cache=cache)
    if seeds is None:
        seeds = tuple(params.seed + i for i in range(replicates))
    else:
        seeds = tuple(seeds)
        if not seeds:
            raise ValueError("seeds must be non-empty")

    jobs = [
        (params.with_overrides(seed=seed), stopping) for seed in seeds
    ]
    results = executor.run_cells(jobs)
    values = [r.mean_communication_time_per_call for r in results]

    stats = RunningStats()
    for value in values:
        stats.add(value)
    return ReplicatedResult(
        params=params,
        seeds=seeds,
        per_seed=tuple(values),
        stats=stats,
    )
