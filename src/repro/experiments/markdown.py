"""Markdown rendering of experiment results (EXPERIMENTS.md sections).

``EXPERIMENTS.md`` records paper-vs-measured tables; this module
generates those tables mechanically from an
:class:`~repro.experiments.runner.ExperimentResult` (or one loaded via
:mod:`repro.experiments.persistence`), so the document can be
regenerated instead of hand-edited when sweeps change.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import ExperimentResult


def _format_value(value: float, precision: int) -> str:
    return f"{value:.{precision}f}"


def to_markdown_table(
    result: ExperimentResult,
    metric: Optional[str] = None,
    precision: int = 3,
) -> str:
    """A GitHub-flavoured Markdown table of one experiment's curves."""
    defn = result.definition
    metric = metric or defn.metric
    labels = result.labels
    header = f"| {defn.x_label} | " + " | ".join(labels) + " |"
    divider = "|" + "---:|" * (len(labels) + 1)
    lines = [header, divider]
    for row in result.as_table(metric):
        cells = [f"{row[0]:g}"] + [
            _format_value(v, precision) for v in row[1:]
        ]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def to_markdown_section(
    result: ExperimentResult,
    metric: Optional[str] = None,
    precision: int = 3,
    heading_level: int = 2,
) -> str:
    """A full Markdown section: heading, provenance note, table, notes."""
    defn = result.definition
    metric = metric or defn.metric
    heading = "#" * max(1, heading_level)
    lines = [
        f"{heading} {defn.exp_id} — {defn.title}",
        "",
        f"Metric: `{metric}`.",
        "",
        to_markdown_table(result, metric=metric, precision=precision),
    ]
    if defn.notes:
        lines += ["", f"*{defn.notes}*"]
    return "\n".join(lines)


def to_markdown_document(
    results: List[ExperimentResult],
    title: str = "Experiment results",
    precision: int = 3,
) -> str:
    """A complete Markdown document from several experiment results."""
    parts = [f"# {title}", ""]
    for result in results:
        parts.append(to_markdown_section(result, precision=precision))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
