"""Single instrumented runs: one seeded cell with full telemetry.

The sweep studies aggregate hundreds of cells; telemetry answers a
different question — *what happened inside one run*.  This module runs
exactly one seeded fault-tolerance cell or chaos scenario with a live
:class:`~repro.telemetry.core.Telemetry` sink and exports the artifacts
(``metrics.jsonl``, ``spans.jsonl``, ``trace.json``, ``summary.txt``)
into a directory.  Load ``trace.json`` in Perfetto (or
``chrome://tracing``) to see every ``move()`` as a span tree across the
participating nodes' lanes.

CLI::

    repro-experiment telemetry --out out/            # default FT cell
    repro-experiment chaos --scenario mayhem --telemetry out/
    repro-experiment faulttolerance --telemetry out/
    repro-experiment deploy --scenario crash-coordinator --telemetry out/
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Tuple, Union

from repro.availability.chaos import (
    ChaosCampaign,
    ChaosCampaignParameters,
    ChaosCampaignResult,
)
from repro.availability.faulttolerance import (
    FaultToleranceParameters,
    FaultToleranceResult,
    FaultToleranceWorkload,
)
from repro.telemetry.core import Telemetry
from repro.telemetry.export import export_run


def instrumented_ft_parameters(seed: int = 0) -> FaultToleranceParameters:
    """The default cell the telemetry demo runs.

    Place-policy under moderate loss and crashes: busy enough that one
    run exhibits every span kind — granted and rejected moves, closure
    computations, transfers, rollbacks, retries.
    """
    return FaultToleranceParameters(
        policy="placement",
        loss=0.05,
        mttf=300.0,
        mttr=50.0,
        sim_time=1_500.0,
        seed=seed,
    )


def run_instrumented_faulttolerance(
    out_dir: Union[str, Path],
    params: FaultToleranceParameters = None,
    seed: int = 0,
) -> Tuple[FaultToleranceResult, Telemetry, Dict[str, Path]]:
    """Run one fault-tolerance cell with telemetry; export artifacts.

    Returns ``(result, telemetry, paths)`` where ``paths`` maps artifact
    names to the files written under ``out_dir``.
    """
    if params is None:
        params = instrumented_ft_parameters(seed=seed)
    telemetry = Telemetry()
    workload = FaultToleranceWorkload(params, telemetry=telemetry)
    result = workload.run()
    paths = export_run(telemetry, out_dir)
    return result, telemetry, paths


def run_instrumented_chaos(
    out_dir: Union[str, Path],
    scenario: str = "crash-storm",
    seed: int = 0,
) -> Tuple[ChaosCampaignResult, Telemetry, Dict[str, Path]]:
    """Run one chaos scenario with telemetry; export artifacts.

    The campaign raises on an invariant violation *after* nothing has
    been written; on a clean run the artifacts land under ``out_dir``.
    Returns ``(result, telemetry, paths)``.
    """
    params = ChaosCampaignParameters(scenario=scenario, seed=seed)
    telemetry = Telemetry()
    campaign = ChaosCampaign(params, telemetry=telemetry)
    result = campaign.run()
    paths = export_run(telemetry, out_dir)
    return result, telemetry, paths


def run_instrumented_deploy(
    out_dir: Union[str, Path],
    scenario: str = "crash-coordinator",
    seed: int = 0,
):
    """Run one versioned-migration deploy scenario with telemetry.

    The exported ``trace.json`` shows the deploy as a cross-node span
    tree: the ``deploy`` root and its ``deploy.stage`` children on the
    coordinator's lane, every ``deploy.upgrade`` on the lane of the
    node hosting that object, and ``deploy.rollback`` markers where a
    stage (or the whole deploy) was undone.  Returns
    ``(result, telemetry, paths)``.
    """
    from repro.versioning.study import DeployStudy, DeployStudyParameters

    params = DeployStudyParameters(scenario=scenario, seed=seed)
    telemetry = Telemetry()
    study = DeployStudy(params, telemetry=telemetry)
    result = study.run()
    paths = export_run(telemetry, out_dir)
    return result, telemetry, paths


def describe_run(telemetry: Telemetry, paths: Dict[str, Path]) -> str:
    """Short post-run report: where the artifacts went, what they hold."""
    lines = [
        f"metric names : {len(telemetry.metrics.names())}",
        f"spans        : {len(telemetry.spans)} "
        f"({len(telemetry.open_spans())} still open at horizon)",
        f"traces       : {len({s.trace_id for s in telemetry.spans})}",
        "",
    ]
    for kind in ("metrics", "spans", "trace", "summary"):
        lines.append(f"wrote {paths[kind]}")
    lines.append("")
    lines.append(
        "open trace.json in https://ui.perfetto.dev (or chrome://tracing)"
    )
    return "\n".join(lines)
