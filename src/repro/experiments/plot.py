"""Dependency-free ASCII line plots for experiment results.

The paper's figures are gnuplot line charts; this module renders the
same curves in a terminal so ``repro-experiment fig12 --plot`` gives an
immediate visual check of the crossovers without any plotting library.

Rendering model: a fixed character grid; each series is drawn with its
own marker at the nearest cell for every (x, y) sample, with linear
interpolation between samples so crossings are visible.  Collisions
show the *later* series' marker (legend order = draw order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult

#: Series markers, assigned in legend order.
MARKERS = "*+ox#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    """Map a value in [lo, hi] to a cell index in [0, cells-1]."""
    if hi <= lo:
        return 0
    ratio = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(ratio * (cells - 1)))))


def _interpolate(
    xs: Sequence[float], ys: Sequence[float], samples: int
) -> List[Tuple[float, float]]:
    """Densify a polyline to ``samples`` points by linear interpolation."""
    if len(xs) == 1:
        return [(xs[0], ys[0])]
    lo, hi = xs[0], xs[-1]
    out = []
    for i in range(samples):
        x = lo + (hi - lo) * i / (samples - 1)
        # Find the segment containing x.
        j = 0
        while j < len(xs) - 2 and xs[j + 1] < x:
            j += 1
        span = xs[j + 1] - xs[j]
        t = 0.0 if span == 0 else (x - xs[j]) / span
        out.append((x, ys[j] + t * (ys[j + 1] - ys[j])))
    return out


def render_plot(
    result: ExperimentResult,
    metric: Optional[str] = None,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render an experiment's curves as an ASCII chart with legend."""
    if width < 16 or height < 6:
        raise ValueError("plot area too small (need width>=16, height>=6)")
    defn = result.definition
    metric = metric or defn.metric
    xs = [float(x) for x in defn.x_values]
    curves = {label: result.series(label, metric) for label in result.labels}

    y_min = 0.0
    y_max = max(max(ys) for ys in curves.values())
    if y_max <= y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, label in enumerate(result.labels):
        marker = MARKERS[index % len(MARKERS)]
        for x, y in _interpolate(xs, curves[label], samples=width * 2):
            col = _scale(x, xs[0], xs[-1], width)
            row = height - 1 - _scale(y, y_min, y_max, height)
            grid[row][col] = marker

    # Assemble with a y-axis gutter.
    lines = [f"{defn.exp_id}: {defn.title}   [{metric}]"]
    for row_index, row in enumerate(grid):
        y_value = y_max * (height - 1 - row_index) / (height - 1)
        gutter = f"{y_value:8.2f} |" if row_index % 4 == 0 else " " * 8 + " |"
        lines.append(gutter + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{xs[0]:<10.3g}"
        + f"{defn.x_label:^{max(0, width - 20)}}"
        + f"{xs[-1]:>10.3g}"
    )
    for index, label in enumerate(result.labels):
        marker = MARKERS[index % len(MARKERS)]
        lines.append(f"   {marker}  {label}")
    return "\n".join(lines)
