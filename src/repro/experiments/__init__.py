"""Experiment harness: figure definitions, sweep runner, reporting."""

from repro.experiments.cache import CellCache, cell_key, resolve_cache_dir
from repro.experiments.config import CellFactory, ExperimentDef, SeriesDef
from repro.experiments.executor import (
    ParallelExecutor,
    resolve_workers,
    shutdown_pools,
)
from repro.experiments.figures import (
    FIGURES,
    figure8,
    figure10,
    figure11,
    figure12,
    figure14,
    figure16,
    make_figure,
)
from repro.experiments.expectations import (
    Claim,
    ClaimResult,
    PAPER_EXPECTATIONS,
    format_verdicts,
    verify_expectations,
)
from repro.experiments.grid import Axis, GridResult, sweep_grid
from repro.experiments.markdown import (
    to_markdown_document,
    to_markdown_section,
    to_markdown_table,
)
from repro.experiments.outlook import OUTLOOK_STUDIES, run_outlook
from repro.experiments.persistence import load_result, save_result
from repro.experiments.replications import ReplicatedResult, run_replicated
from repro.experiments.plot import render_plot
from repro.experiments.report import format_table, summary_lines, to_csv
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentRunner,
    run_figure,
)

__all__ = [
    "Axis",
    "CellCache",
    "Claim",
    "ClaimResult",
    "GridResult",
    "CellFactory",
    "ExperimentDef",
    "ExperimentResult",
    "ExperimentRunner",
    "FIGURES",
    "OUTLOOK_STUDIES",
    "PAPER_EXPECTATIONS",
    "ParallelExecutor",
    "ReplicatedResult",
    "SeriesDef",
    "cell_key",
    "resolve_cache_dir",
    "resolve_workers",
    "shutdown_pools",
    "figure10",
    "figure11",
    "figure12",
    "figure14",
    "figure16",
    "figure8",
    "format_table",
    "format_verdicts",
    "load_result",
    "make_figure",
    "render_plot",
    "run_figure",
    "run_outlook",
    "run_replicated",
    "save_result",
    "summary_lines",
    "sweep_grid",
    "to_csv",
    "to_markdown_document",
    "to_markdown_section",
    "to_markdown_table",
    "verify_expectations",
]
