"""Declarative paper claims, checked mechanically.

EXPERIMENTS.md asserts things like "placement dominates conventional
migration" or "the baseline is flat at 4/3" next to each regenerated
figure.  This module encodes those claims as data and checks them
against any :class:`~repro.experiments.runner.ExperimentResult`, so
``repro-experiment fig12 --check`` prints a PASS/FAIL verdict per claim
instead of relying on eyeballs.

Claim types:

``flat(series, value, tolerance)``
    The curve stays within ±tolerance (relative) of a constant.
``dominates(better, worse, slack)``
    ``better`` ≤ ``worse`` at every x (lower is better), with
    multiplicative slack for stochastic noise.
``break_even_between(series, baseline, low, high)``
    The series first crosses above the baseline inside [low, high].
``increases_with_x(series)`` / ``decreases_with_x(series)``
    Endpoint-to-endpoint trend.
``value_at(series, x, expected, tolerance)``
    A point anchor (e.g. the 4/3 baseline at any x).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.analysis.breakeven import break_even
from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class ClaimResult:
    """Verdict for one checked claim."""

    description: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        suffix = f"  ({self.detail})" if self.detail else ""
        return f"[{mark}] {self.description}{suffix}"


@dataclass(frozen=True)
class Claim:
    """One checkable statement about an experiment's curves."""

    description: str
    check: Callable[[ExperimentResult], Tuple[bool, str]]

    def evaluate(self, result: ExperimentResult) -> ClaimResult:
        """Run the check, never raising (a crash is a failure)."""
        try:
            passed, detail = self.check(result)
        except Exception as exc:  # noqa: BLE001 - verdicts must not crash
            return ClaimResult(self.description, False, f"error: {exc!r}")
        return ClaimResult(self.description, passed, detail)


# -- claim constructors -------------------------------------------------------


def flat(series: str, value: float, tolerance: float = 0.1) -> Claim:
    """The series stays within ±tolerance (relative) of ``value``."""

    def check(result):
        ys = result.series(series)
        worst = max(abs(y - value) / abs(value) for y in ys)
        return worst <= tolerance, f"max deviation {worst:.1%}"

    return Claim(
        f"{series!r} is flat at {value:g} (±{tolerance:.0%})", check
    )


def dominates(better: str, worse: str, slack: float = 1.05) -> Claim:
    """``better`` ≤ ``worse`` · slack at every x (lower = better)."""

    def check(result):
        bs, ws = result.series(better), result.series(worse)
        gaps = [b / w if w else 1.0 for b, w in zip(bs, ws)]
        worst = max(gaps)
        return all(b <= w * slack for b, w in zip(bs, ws)), (
            f"worst ratio {worst:.3f}"
        )

    return Claim(f"{better!r} dominates {worse!r}", check)


def break_even_between(
    series: str, baseline: str, low: float, high: float
) -> Claim:
    """The series first crosses above the baseline inside [low, high]."""

    def check(result):
        x = list(result.definition.x_values)
        point = break_even(
            x, result.series(series), result.series(baseline)
        )
        if point is None:
            return False, "no crossing in range"
        return low <= point <= high, f"crossing at {point:.1f}"

    return Claim(
        f"{series!r} breaks even with {baseline!r} in [{low:g}, {high:g}]",
        check,
    )


def increases_with_x(series: str, margin: float = 1.0) -> Claim:
    """The last point exceeds the first by at least ``margin``×."""

    def check(result):
        ys = result.series(series)
        return ys[-1] > ys[0] * margin, f"{ys[0]:.3f} -> {ys[-1]:.3f}"

    return Claim(f"{series!r} increases over the sweep", check)


def decreases_with_x(series: str, margin: float = 1.0) -> Claim:
    """The last point is below the first by at least ``margin``×."""

    def check(result):
        ys = result.series(series)
        return ys[-1] * margin < ys[0], f"{ys[0]:.3f} -> {ys[-1]:.3f}"

    return Claim(f"{series!r} decreases over the sweep", check)


def value_at(
    series: str, x: float, expected: float, tolerance: float = 0.1
) -> Claim:
    """The series' value at grid point ``x`` is ``expected`` ±tolerance."""

    def check(result):
        xs = list(result.definition.x_values)
        y = result.series(series)[xs.index(x)]
        deviation = abs(y - expected) / abs(expected)
        return deviation <= tolerance, f"measured {y:.3f}"

    return Claim(
        f"{series!r} at x={x:g} is {expected:g} (±{tolerance:.0%})", check
    )


# -- per-figure expectations (the paper's §4 statements) --------------------------------

SEDENTARY = "without Migration"
MIGRATION = "Migration"
PLACEMENT = "Transient Placement"

#: exp_id -> the claims the paper makes about that figure.
PAPER_EXPECTATIONS = {
    "fig8": [
        flat(SEDENTARY, 4.0 / 3.0, tolerance=0.08),
        dominates(PLACEMENT, MIGRATION, slack=1.08),
        # Migration pays off at low concurrency (largest t_m point).
        Claim(
            "both policies beat the baseline at the lowest concurrency",
            lambda r: (
                r.series(MIGRATION)[-1] < r.series(SEDENTARY)[-1]
                and r.series(PLACEMENT)[-1] < r.series(SEDENTARY)[-1],
                "",
            ),
        ),
        decreases_with_x(MIGRATION),
        decreases_with_x(PLACEMENT),
    ],
    "fig10": [
        flat(SEDENTARY, 4.0 / 3.0, tolerance=0.08),
        decreases_with_x(MIGRATION),
        decreases_with_x(PLACEMENT),
    ],
    "fig11": [
        Claim(
            "'without Migration' performs no migrations",
            lambda r: (all(v == 0.0 for v in r.series(SEDENTARY)), ""),
        ),
        Claim(
            "migration load dips at maximum concurrency",
            lambda r: (
                r.series(MIGRATION)[0] < max(r.series(MIGRATION)[1:]),
                "",
            ),
        ),
    ],
    "fig12": [
        value_at(SEDENTARY, 25.0, 2.0 * (1 - 1 / 27), tolerance=0.08),
        break_even_between(MIGRATION, SEDENTARY, 3.5, 9.0),
        break_even_between(PLACEMENT, SEDENTARY, 10.0, 25.0),
        dominates(PLACEMENT, MIGRATION, slack=1.08),
        increases_with_x(MIGRATION, margin=2.0),
    ],
    "fig14": [
        dominates(
            "Comparing the Nodes", "Conservative Place-Policy", slack=1.3
        ),
        dominates(
            "Conservative Place-Policy", "Comparing the Nodes", slack=1.3
        ),
        dominates(
            "Comparing and Reinstantiation",
            "Conservative Place-Policy",
            slack=1.3,
        ),
    ],
    "fig16": [
        dominates(
            "Migration + A-transitive Attachment",
            "Migration + unrestricted Attachment",
            slack=1.1,
        ),
        dominates(
            "Transient Placement + unrestricted Attachment",
            "Migration + unrestricted Attachment",
            slack=1.05,
        ),
        dominates(
            "Transient Placement + A-transitive Attachment",
            "Migration + A-transitive Attachment",
            slack=1.05,
        ),
        Claim(
            "unrestricted migration is devastating at high concurrency",
            lambda r: (
                r.series("Migration + unrestricted Attachment")[-1]
                > r.series(SEDENTARY)[-1],
                "",
            ),
        ),
    ],
}


def verify_expectations(
    result: ExperimentResult,
    claims: Optional[List[Claim]] = None,
) -> List[ClaimResult]:
    """Check a result against its figure's paper claims.

    ``claims`` overrides the registry (for custom experiments).
    Unknown figures with no explicit claims yield an empty list.
    """
    if claims is None:
        claims = PAPER_EXPECTATIONS.get(result.definition.exp_id, [])
    return [claim.evaluate(result) for claim in claims]


def format_verdicts(verdicts: List[ClaimResult]) -> str:
    """One line per claim, plus a summary line."""
    lines = [str(v) for v in verdicts]
    passed = sum(1 for v in verdicts if v.passed)
    lines.append(f"{passed}/{len(verdicts)} paper claims hold")
    return "\n".join(lines)
