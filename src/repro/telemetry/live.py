"""Cross-process telemetry for the live runtime.

PR 5's :class:`~repro.telemetry.core.Telemetry` records one process'
spans and metrics.  The live backend (:mod:`repro.runtime.live`) is
*many* OS processes — a supervisor plus N workers — so observability
needs four extra pieces, all of which live here so the telemetry
package stays importable without the runtime:

* :func:`process_id_base` — a disjoint span/trace-id band per
  ``(node, incarnation)``, so ids minted independently in separate
  processes never collide when their trace files are merged.
* :class:`ProcessTelemetryWriter` — streams one process' closed spans
  to ``spans-n{node}-i{inc}.jsonl`` incrementally (crash-tolerant: what
  was flushed survives a SIGKILL) and atomically rewrites its metrics
  snapshot, alongside a ``meta-*.json`` sidecar carrying the OS pid and
  the process' monotonic-clock origin.
* :class:`FlightRecorder` — a bounded ring of recent envelopes and
  state transitions, periodically persisted and dumped on abnormal
  exit; the post-mortem a dead worker leaves behind for the
  supervisor's in-doubt settlement to cross-check.
* :class:`ClockSync` + :class:`TelemetryHub` — the supervisor-side
  merge: estimate each worker's clock offset from handshake samples
  (heartbeats carry the sender's local ``now()``), shift every
  per-process file onto the supervisor's timeline, and export one
  Perfetto trace with real OS pid lanes plus a merged summary table.

Clock alignment
---------------
Every live process rebases ``time.monotonic()`` to 0 at its own start
(:class:`~repro.runtime.clock.WallClock`), so per-process timestamps
disagree by exactly the difference of their origins.  Two estimators,
in order of preference:

1. **Handshake offsets**: each heartbeat carries the worker's local
   ``clock.now()``; the supervisor keeps ``min(local_recv -
   remote_sent)`` per ``(node, incarnation)`` — an upper bound on the
   true offset that tightens to ``offset + min network delay``.
2. **Monotonic origins**: ``CLOCK_MONOTONIC`` is machine-wide, so
   ``origin_worker - origin_supervisor`` (both persisted in the meta
   sidecars) is the *exact* shift.  Used for processes that never
   heartbeated the final supervisor incarnation (e.g. a supervisor
   killed mid-run).

After shifting, the hub rebases everything by the global minimum so
the merged trace starts at ts 0 (negative timestamps would be workers
that started before a *recovered* supervisor).
"""

from __future__ import annotations

import json
import os
import re
from collections import deque
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.core import Telemetry
from repro.telemetry.export import summary_table, write_chrome_trace
from repro.telemetry.spans import Span

#: Width of one process' span/trace-id band.  A single process would
#: need to mint a billion spans to bleed into its neighbour's band.
SPAN_ID_BAND = 1_000_000_000

#: Node id of the supervisor (mirrors ``repro.runtime.live.wire
#: .SUPERVISOR`` without importing the runtime into the telemetry
#: package).
SUPERVISOR_NODE = -1

#: Transfer-latency histogram bucket edges shared by supervisor and
#: workers (seconds).  Lives here so ``node.py`` can import it without
#: a node -> supervisor circular import; ``supervisor.py`` re-exports.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def process_id_base(node: int, incarnation: int = 0) -> int:
    """Disjoint span/trace-id band for one live process incarnation.

    Bands by *incarnation* too: a restarted worker's fresh
    :class:`Telemetry` would otherwise mint the same small ids as its
    dead predecessor and collide in the merged trace.  The supervisor
    (node -1) lands on the ``(1000 + inc)`` band, workers 1..N on
    ``(3000 + ...)`` and up — all disjoint for inc < 1000.
    """
    if node < SUPERVISOR_NODE:
        raise ValueError(f"node must be >= {SUPERVISOR_NODE}, got {node}")
    if incarnation < 0:
        raise ValueError(f"incarnation must be >= 0, got {incarnation}")
    return ((node + 2) * 1000 + incarnation) * SPAN_ID_BAND


def _file_stem(node: int, incarnation: int) -> str:
    return f"n{node}-i{incarnation}"


_STEM_RE = re.compile(r"n(-?\d+)-i(\d+)")


def _parse_stem(stem: str) -> Optional[Tuple[int, int]]:
    match = _STEM_RE.fullmatch(stem)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def _atomic_write(path: Path, text: str) -> None:
    """Write-then-rename so readers never see a torn file."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


class FlightRecorder:
    """Bounded ring of recent envelopes and state transitions.

    Installed as a transport ``observer`` (:meth:`on_send` /
    :meth:`on_receive`), plus explicit :meth:`record` calls at state
    transitions.  Entries are *compact* — kind, addressing, msg id and
    a few interesting payload keys, never payload bodies (OBJECT_TRANSFER
    carries pickled object state).

    :meth:`dump` persists the ring atomically; the monitor loops call
    it periodically (reason ``snapshot``) so a SIGKILL still leaves a
    recent post-mortem on disk, and the abnormal-exit paths (SIGTERM,
    unhandled exception, orphaning) dump directly with their reason.
    """

    #: Payload keys worth keeping in a post-mortem.
    PAYLOAD_KEYS = ("transfer_id", "object_id", "block_id", "granted", "ok")

    def __init__(
        self,
        node: int,
        capacity: int = 512,
        clock=None,
        incarnation: int = 0,
        path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.node = node
        self.capacity = capacity
        self.incarnation = incarnation
        self.clock = clock
        self.path = str(path) if path is not None else None
        self._ring: deque = deque(maxlen=capacity)
        #: Total entries ever recorded (ring overwrites don't decrement).
        self.recorded = 0
        #: Number of completed :meth:`dump` calls.
        self.dumps = 0

    @staticmethod
    def path_for(directory, node: int, incarnation: int) -> str:
        """Canonical dump path for one process incarnation."""
        return str(
            Path(directory) / f"flight-{_file_stem(node, incarnation)}.jsonl"
        )

    def _now(self) -> float:
        return self.clock.now() if self.clock is not None else 0.0

    def record(self, event: str, **data: Any) -> None:
        """Append one entry (timestamped with the process-local clock)."""
        entry = {"t": self._now(), "event": event}
        entry.update(data)
        self._ring.append(entry)
        self.recorded += 1

    # -- transport observer protocol --------------------------------------

    def on_send(self, envelope) -> None:
        """One logical send (retries/duplicate copies not re-recorded)."""
        self.record(
            "send",
            kind=envelope.kind,
            dst=envelope.dst,
            msg_id=list(envelope.msg_id),
            **self._payload_bits(envelope),
        )

    def on_receive(self, envelope, duplicate: bool) -> None:
        """Every delivered frame, *including* suppressed redeliveries."""
        self.record(
            "recv",
            kind=envelope.kind,
            src=envelope.src,
            msg_id=list(envelope.msg_id),
            duplicate=duplicate,
            **self._payload_bits(envelope),
        )

    def _payload_bits(self, envelope) -> Dict[str, Any]:
        payload = envelope.payload
        bits = {
            key: payload[key]
            for key in self.PAYLOAD_KEYS
            if key in payload
        }
        if envelope.reply_to is not None:
            bits["reply_to"] = list(envelope.reply_to)
        return bits

    def entries(self) -> List[Dict[str, Any]]:
        """Snapshot of the current ring contents, oldest first."""
        return list(self._ring)

    def dump(self, path: Optional[str] = None, reason: str = "snapshot") -> str:
        """Atomically persist the ring as JSONL; returns the path.

        First line is a header object under the ``"flight"`` key
        (node/pid/incarnation/reason/entry count); every further line
        is one ring entry.
        """
        target = Path(path if path is not None else self.path)
        header = {
            "flight": {
                "node": self.node,
                "incarnation": self.incarnation,
                "pid": os.getpid(),
                "reason": reason,
                "dumped_at": self._now(),
                "entries": len(self._ring),
                "recorded": self.recorded,
            }
        }
        lines = [json.dumps(header, sort_keys=True)]
        lines.extend(
            json.dumps(entry, sort_keys=True) for entry in self._ring
        )
        _atomic_write(target, "\n".join(lines) + "\n")
        self.dumps += 1
        return str(target)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder node={self.node} i={self.incarnation} "
            f"entries={len(self._ring)}/{self.capacity} dumps={self.dumps}>"
        )


def load_flight_dump(path) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Parse a flight-recorder dump into ``(header, entries)``.

    Raises ``ValueError`` on a malformed file (no header line, or an
    entry without the ``t``/``event`` shape).
    """
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line.strip()
    ]
    if not lines:
        raise ValueError(f"{path}: empty flight dump")
    header_doc = json.loads(lines[0])
    header = header_doc.get("flight")
    if not isinstance(header, dict):
        raise ValueError(f"{path}: first line is not a flight header")
    entries = []
    for number, line in enumerate(lines[1:], start=2):
        entry = json.loads(line)
        if not isinstance(entry, dict) or "event" not in entry:
            raise ValueError(f"{path}:{number}: malformed flight entry")
        entries.append(entry)
    return header, entries


class ProcessTelemetryWriter:
    """Streams one process' telemetry to per-process files in a dir.

    ``spans-n{node}-i{inc}.jsonl``
        Closed spans, appended incrementally on each :meth:`flush` —
        open spans are carried over and written once they close.
    ``metrics-n{node}-i{inc}.jsonl``
        Full metrics snapshot, atomically rewritten each flush, with a
        ``node`` label injected so merged summaries stay attributable.
    ``meta-n{node}-i{inc}.json``
        Pid, role, incarnation and the process' monotonic-clock origin
        — everything the :class:`TelemetryHub` needs to align and
        label this file on the merged timeline.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        directory,
        node: int,
        incarnation: int = 0,
        role: str = "worker",
        mono_origin: Optional[float] = None,
    ):
        self.telemetry = telemetry
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.node = node
        self.incarnation = incarnation
        stem = _file_stem(node, incarnation)
        self.spans_path = self.directory / f"spans-{stem}.jsonl"
        self.metrics_path = self.directory / f"metrics-{stem}.jsonl"
        self.meta_path = self.directory / f"meta-{stem}.json"
        self._scan_from = 0
        self._open_carry: List[Span] = []
        self.spans_written = 0
        self.flushes = 0
        # Truncate any stale file from a previous run in the same dir.
        self.spans_path.write_text("")
        _atomic_write(
            self.meta_path,
            json.dumps(
                {
                    "node": node,
                    "incarnation": incarnation,
                    "role": role,
                    "pid": os.getpid(),
                    "mono_origin": mono_origin,
                },
                sort_keys=True,
            )
            + "\n",
        )

    def flush(self) -> int:
        """Write newly closed spans + the current metrics snapshot.

        Returns the number of spans written this flush.  Open spans
        are re-examined next time; span order in the file is close
        order (the hub re-sorts by start time).
        """
        spans = self.telemetry.spans
        candidates = self._open_carry
        self._open_carry = []
        candidates.extend(spans[self._scan_from:])
        self._scan_from = len(spans)
        written = 0
        if candidates:
            closed_lines = []
            for span in candidates:
                if span.is_open:
                    self._open_carry.append(span)
                else:
                    closed_lines.append(
                        json.dumps(span.to_dict(), sort_keys=True)
                    )
            if closed_lines:
                with self.spans_path.open("a") as handle:
                    handle.write("\n".join(closed_lines) + "\n")
                written = len(closed_lines)
                self.spans_written += written
        docs = self.telemetry.metrics.snapshot()
        if docs:
            for doc in docs:
                labels = dict(doc.get("labels") or {})
                labels.setdefault("node", self.node)
                doc["labels"] = labels
            _atomic_write(
                self.metrics_path,
                "\n".join(json.dumps(doc, sort_keys=True) for doc in docs)
                + "\n",
            )
        self.flushes += 1
        return written

    def close(self) -> None:
        """Final flush (open spans at exit stay unwritten, by design)."""
        self.flush()

    def __repr__(self) -> str:
        return (
            f"<ProcessTelemetryWriter node={self.node} "
            f"i={self.incarnation} spans={self.spans_written} "
            f"flushes={self.flushes}>"
        )


class ClockSync:
    """Handshake-time clock-offset estimator, supervisor side.

    Each heartbeat carries the worker's local ``clock.now()`` at send
    time; ``observe`` keeps the *minimum* of ``local_recv -
    remote_sent`` per ``(node, incarnation)``.  Every sample
    overestimates the true offset by that sample's one-way network
    delay, so the minimum over many heartbeats converges onto
    ``true offset + min delay`` — sub-millisecond on localhost
    sockets, far below span durations.
    """

    def __init__(self):
        self._offsets: Dict[Tuple[int, int], float] = {}
        self.samples = 0

    def observe(
        self,
        node: int,
        incarnation: int,
        remote_sent: float,
        local_recv: float,
    ) -> None:
        """Fold one handshake sample into the per-process estimate."""
        delta = local_recv - remote_sent
        key = (node, incarnation)
        best = self._offsets.get(key)
        if best is None or delta < best:
            self._offsets[key] = delta
        self.samples += 1

    def offset(self, node: int, incarnation: int) -> Optional[float]:
        """Best offset estimate for one process, or None if unseen."""
        return self._offsets.get((node, incarnation))

    def export(self) -> List[Dict[str, Any]]:
        """JSON-able offset table for the run manifest."""
        return [
            {"node": node, "incarnation": incarnation, "offset": offset}
            for (node, incarnation), offset in sorted(self._offsets.items())
        ]

    def __repr__(self) -> str:
        return (
            f"<ClockSync processes={len(self._offsets)} "
            f"samples={self.samples}>"
        )


class _DocMetrics:
    """Metrics-registry facade over already-serialized metric docs.

    Gives :func:`~repro.telemetry.export.summary_table` and
    :func:`~repro.telemetry.export.to_chrome_trace` the interface they
    expect (``snapshot()``, iteration for gauge series, ``len``)
    without live instruments behind it.
    """

    def __init__(self, docs: List[Dict[str, Any]]):
        self._docs = docs

    def snapshot(self) -> List[Dict[str, Any]]:
        return [dict(doc) for doc in self._docs]

    def __iter__(self):
        # No live gauge series to export from serialized docs.
        return iter(())

    def __len__(self) -> int:
        return len(self._docs)


class _MergedTelemetry(Telemetry):
    """A read-only Telemetry rebuilt from per-process trace files."""

    def __init__(self, spans: List[Span], metric_docs: List[Dict[str, Any]]):
        super().__init__()
        self.spans = spans
        self.metrics = _DocMetrics(metric_docs)


class TelemetryHub:
    """Collects per-process telemetry files and merges the timeline.

    Runs in the demo *runner* process after the final supervisor
    incarnation reports (so it sees the files of every incarnation,
    including killed ones).  ``merge()`` produces ``trace.json`` (one
    Perfetto trace, real OS pid lanes) and ``summary.txt`` in the
    telemetry directory and returns a manifest of what was merged.
    """

    def __init__(self, directory):
        self.directory = Path(directory)

    # -- collection --------------------------------------------------------

    def collect(self) -> Dict[str, Any]:
        """Inventory the directory: process files, flights, manifest."""
        metas: Dict[Tuple[int, int], Dict[str, Any]] = {}
        for meta_path in sorted(self.directory.glob("meta-*.json")):
            key = _parse_stem(meta_path.name[len("meta-"):-len(".json")])
            if key is None:
                continue
            try:
                metas[key] = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                continue
        processes = []
        for spans_path in sorted(self.directory.glob("spans-*.jsonl")):
            stem = spans_path.name[len("spans-"):-len(".jsonl")]
            key = _parse_stem(stem)
            if key is None:
                continue
            metrics_path = self.directory / f"metrics-{stem}.jsonl"
            processes.append(
                {
                    "node": key[0],
                    "incarnation": key[1],
                    "spans": spans_path,
                    "metrics": metrics_path if metrics_path.exists() else None,
                    "meta": metas.get(key, {}),
                }
            )
        manifest_path = self.directory / "manifest.json"
        manifest: Dict[str, Any] = {}
        if manifest_path.exists():
            try:
                manifest = json.loads(manifest_path.read_text())
            except (OSError, ValueError):
                manifest = {}
        flights = [
            str(path)
            for path in sorted(self.directory.glob("flight-*.jsonl"))
        ]
        return {
            "processes": processes,
            "manifest": manifest,
            "flights": flights,
        }

    # -- merging -----------------------------------------------------------

    def _shift_for(
        self,
        node: int,
        incarnation: int,
        meta: Dict[str, Any],
        offsets: Dict[Tuple[int, int], float],
        supervisor_origin: Optional[float],
    ) -> float:
        """Seconds to add to this process' timestamps."""
        mono_origin = meta.get("mono_origin")
        if node == SUPERVISOR_NODE or (node, incarnation) not in offsets:
            # Exact origin difference (the only estimator available for
            # a killed supervisor incarnation or a silent worker).
            if supervisor_origin is not None and mono_origin is not None:
                return mono_origin - supervisor_origin
        return offsets.get((node, incarnation), 0.0)

    def merge(self) -> Dict[str, Any]:
        """Align, merge, and export; returns the merge manifest."""
        inventory = self.collect()
        manifest = inventory["manifest"]
        offsets = {
            (entry["node"], entry["incarnation"]): entry["offset"]
            for entry in manifest.get("clock_offsets", [])
        }
        supervisor_origin = manifest.get("supervisor_origin")

        shifted: List[Tuple[Dict[str, Any], Optional[int]]] = []
        metric_docs: List[Dict[str, Any]] = []
        per_process: List[Dict[str, Any]] = []
        for proc in inventory["processes"]:
            meta = proc["meta"]
            pid = meta.get("pid")
            shift = self._shift_for(
                proc["node"], proc["incarnation"], meta, offsets,
                supervisor_origin,
            )
            count = 0
            for line in proc["spans"].read_text().splitlines():
                if not line.strip():
                    continue
                doc = json.loads(line)
                doc["start"] = doc["start"] + shift
                if doc.get("end") is not None:
                    doc["end"] = doc["end"] + shift
                shifted.append((doc, pid))
                count += 1
            if proc["metrics"] is not None:
                for line in proc["metrics"].read_text().splitlines():
                    if line.strip():
                        metric_docs.append(json.loads(line))
            per_process.append(
                {
                    "node": proc["node"],
                    "incarnation": proc["incarnation"],
                    "role": meta.get("role"),
                    "pid": pid,
                    "shift": shift,
                    "spans": count,
                }
            )

        # Rebase so the merged trace starts at ts 0: workers that
        # started before a recovered supervisor sit at negative shifted
        # time, and Perfetto (and our validator) want ts >= 0.
        rebase = min(
            (doc["start"] for doc, _ in shifted), default=0.0
        )
        rebase = min(rebase, 0.0)

        spans: List[Span] = []
        for doc, pid in shifted:
            tags = dict(doc.get("tags") or {})
            if pid is not None:
                tags["os_pid"] = pid
            span = Span(
                trace_id=doc["trace_id"],
                span_id=doc["span_id"],
                parent_id=doc.get("parent_id"),
                name=doc["name"],
                node=doc.get("node"),
                start=doc["start"] - rebase,
                tags=tags,
            )
            end = doc.get("end")
            span.end = end - rebase if end is not None else None
            span.status = doc.get("status", "ok")
            spans.append(span)
        spans.sort(key=lambda s: (s.start, s.span_id))

        merged = _MergedTelemetry(spans, metric_docs)
        # Latest incarnation wins the node -> pid lane mapping.
        pid_map: Dict[int, int] = {}
        process_names: Dict[int, str] = {}
        for proc in sorted(
            per_process, key=lambda p: (p["node"], p["incarnation"])
        ):
            if proc["pid"] is None:
                continue
            pid_map[proc["node"]] = proc["pid"]
            role = proc["role"] or "process"
            process_names[proc["pid"]] = (
                f"{role}-{proc['node']}" if proc["node"] >= 0 else role
            ) + f" i{proc['incarnation']} (pid {proc['pid']})"

        trace_path = write_chrome_trace(
            merged,
            self.directory / "trace.json",
            pid_map=pid_map,
            process_names=process_names,
            time_scale=1e6,  # live span times are seconds, not sim units
        )
        summary = summary_table(merged)
        extra = [
            "",
            "merged live timeline",
            "-" * 60,
            f"{'processes merged':<36}{len(per_process):>12}",
            f"{'flight dumps':<36}{len(inventory['flights']):>12}",
            f"{'clock-offset samples':<36}{len(offsets):>12}",
            f"{'timeline rebase (s)':<36}{-rebase:>12.6f}",
        ]
        for proc in per_process:
            label = (
                f"  n{proc['node']} i{proc['incarnation']} "
                f"({proc['role'] or '?'}, pid {proc['pid']})"
            )
            extra.append(
                f"{label:<36}{proc['spans']:>7} spans "
                f"shift {proc['shift']:+.6f}s"
            )
        summary_path = self.directory / "summary.txt"
        summary_path.write_text(summary + "\n".join(extra) + "\n")

        traces = {span.trace_id for span in spans}
        return {
            "trace": str(trace_path),
            "summary": str(summary_path),
            "processes": per_process,
            "spans": len(spans),
            "traces": len(traces),
            "flight_dumps": inventory["flights"],
            "rebase": -rebase,
        }


def clean_telemetry_dir(directory) -> int:
    """Remove a previous run's artifacts from a reused telemetry dir.

    Only known artifact shapes are removed (per-process jsonl/meta
    files, flight dumps, manifest, merged trace/summary) — anything
    else a user parked in the directory is left alone.  Returns the
    number of files removed.
    """
    target = Path(directory)
    if not target.is_dir():
        return 0
    removed = 0
    patterns = (
        "spans-*.jsonl", "metrics-*.jsonl", "meta-*.json",
        "flight-*.jsonl", "manifest.json", "trace.json", "summary.txt",
        "*.tmp",
    )
    for pattern in patterns:
        for path in target.glob(pattern):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


__all__ = [
    "ClockSync",
    "FlightRecorder",
    "LATENCY_BUCKETS",
    "ProcessTelemetryWriter",
    "SPAN_ID_BAND",
    "SUPERVISOR_NODE",
    "TelemetryHub",
    "clean_telemetry_dir",
    "load_flight_dump",
    "process_id_base",
]
