"""Telemetry artifact schema validation (CI smoke + tests).

The exporter promises artifacts other tools will load; this module
checks the contracts without needing those tools:

* ``trace.json`` — a ``traceEvents`` list Perfetto accepts, every event
  carrying the right fields per phase (:func:`validate_chrome_trace`);
* ``spans.jsonl`` — one span document per line with the stable
  :meth:`~repro.telemetry.spans.Span.to_dict` fields
  (:func:`validate_span_doc`);
* ``metrics.jsonl`` — one instrument snapshot per line with the
  :meth:`to_dict` fields of its type, counters monotone and histogram
  counts consistent (:func:`validate_metric_doc`).

Span families with a registered schema (the ``deploy.*`` family of
:mod:`repro.versioning` and the live runtime's ``wal.replay`` /
``live.recover``) are additionally checked for their required tags —
in both artifacts, since the Chrome exporter folds tags into ``args``.
Metric names the live runtime promises (``live.transport.*``,
``live.transfer.latency_s``, ``wal.*``, ``home.*``) are pinned to
their instrument type.  Usable as a library or a CLI::

    python -m repro.telemetry.validate out/trace.json out/spans.jsonl \\
        out/metrics.jsonl
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Union

#: Event phases the exporter may emit.
KNOWN_PHASES = {"X", "i", "C", "M"}

#: Required tag keys per deploy-family span name.  The deployer always
#: sets these; a deploy span without them would render a useless tree.
DEPLOY_SPAN_SCHEMAS = {
    "deploy": ("plan", "stages"),
    "deploy.stage": ("stage", "objects"),
    "deploy.upgrade": ("object", "to"),
    "deploy.rollback": ("stage", "reason"),
}

#: Metric names the deploy emits (the catalog entry tests pin down).
DEPLOY_METRICS = (
    "deploy.stages",
    "deploy.objects_upgraded",
    "deploy.rollbacks",
    "deploy.checkpoints",
    "deploy.stage_time",
)

#: Required tag keys per live-runtime span name.  ``wal.replay`` must
#: say how much journal it consumed; ``live.recover`` which arbitration
#: mode it settled under.  The cross-process migration family
#: (``live.move`` and its children) must carry enough to rebuild the
#: migration story from the merged trace alone.
LIVE_SPAN_SCHEMAS = {
    "wal.replay": ("records",),
    "live.recover": ("mode",),
    "live.move": ("object",),
    "live.grant": ("object", "granted"),
    "live.transfer": ("object", "transfer"),
    "live.transfer.serve": ("object", "transfer"),
    "live.place": ("transfer", "ok"),
    "live.rollback": ("transfer",),
    "live.evict": ("transfer",),
    "live.restore": ("transfer",),
    "live.drain": ("migrations",),
    "live.seed": ("count",),
    "live.inventory": ("objects",),
    "flight.dump": ("reason", "entries"),
}

#: Instrument type per metric name the live runtime promises to emit.
#: A run that never exercises a path may omit the metric, but a present
#: metric must carry the registered type (and the type's fields).
LIVE_METRIC_SCHEMAS = {
    "live.transport.frames_sent": "counter",
    "live.transport.frames_received": "counter",
    "live.transfer.latency_s": "histogram",
    "wal.records_appended": "counter",
    "wal.records_replayed": "counter",
    "wal.truncated_records": "counter",
    "home.grants": "counter",
    "home.denials": "counter",
    "home.reassignments": "counter",
    "live.worker.attempts": "counter",
    "live.worker.granted": "counter",
    "live.worker.migrations": "counter",
    "live.worker.denied": "counter",
    "live.worker.aborted": "counter",
    "live.worker.invocations": "counter",
    "live.worker.remote_invocations": "counter",
}

#: Fields every metrics.jsonl document must carry, regardless of type.
METRIC_DOC_FIELDS = ("name", "type", "labels", "updated_at")

#: Instrument types the metrics exporter may emit.
KNOWN_METRIC_TYPES = {"counter", "gauge", "histogram"}

#: Fields every spans.jsonl document must carry.
SPAN_DOC_FIELDS = (
    "trace_id",
    "span_id",
    "parent_id",
    "name",
    "node",
    "start",
    "end",
    "status",
    "tags",
)


def _check_deploy_tags(name: str, tags: dict, where: str) -> List[str]:
    """Missing required tags for a schema-registered span name."""
    required = DEPLOY_SPAN_SCHEMAS.get(
        name, LIVE_SPAN_SCHEMAS.get(name, ())
    )
    return [
        f"{where}: span {name!r} missing required tag {key!r}"
        for key in required
        if key not in tags
    ]


def validate_metric_doc(doc: dict, where: str = "metric") -> List[str]:
    """Check one parsed ``metrics.jsonl`` document; returns problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"{where}: not an object"]
    for field in METRIC_DOC_FIELDS:
        if field not in doc:
            problems.append(f"{where}: missing field {field!r}")
    if problems:
        return problems
    name, kind = doc["name"], doc["type"]
    if not isinstance(name, str) or not name:
        problems.append(f"{where}: 'name' must be a non-empty string")
        return problems
    if kind not in KNOWN_METRIC_TYPES:
        problems.append(f"{where}: unknown instrument type {kind!r}")
        return problems
    expected = LIVE_METRIC_SCHEMAS.get(name)
    if expected is not None and kind != expected:
        problems.append(
            f"{where}: metric {name!r} must be a {expected}, got {kind!r}"
        )
    if not isinstance(doc["labels"], dict):
        problems.append(f"{where}: 'labels' must be an object")
    if kind == "histogram":
        buckets = doc.get("buckets")
        counts = doc.get("counts")
        if not isinstance(buckets, list) or not buckets:
            problems.append(f"{where}: histogram needs a 'buckets' list")
        elif not isinstance(counts, list) or len(counts) != len(buckets) + 1:
            problems.append(
                f"{where}: histogram needs len(buckets)+1 'counts'"
            )
        elif doc.get("count") != sum(counts):
            problems.append(
                f"{where}: histogram 'count' disagrees with bucket counts"
            )
    else:
        value = doc.get("value")
        if not isinstance(value, (int, float)):
            problems.append(f"{where}: {kind} needs a numeric 'value'")
        elif kind == "counter" and value < 0:
            problems.append(f"{where}: counter {name!r} went negative")
    return problems


def validate_metrics_jsonl(text: str) -> List[str]:
    """Validate a whole ``metrics.jsonl`` payload; returns problems."""
    problems: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        try:
            doc = json.loads(line)
        except ValueError as exc:
            problems.append(f"{where}: invalid JSON ({exc})")
            continue
        problems.extend(validate_metric_doc(doc, where))
    return problems


def validate_span_doc(doc: dict, where: str = "span") -> List[str]:
    """Check one parsed ``spans.jsonl`` document; returns problems."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return [f"{where}: not an object"]
    for field in SPAN_DOC_FIELDS:
        if field not in doc:
            problems.append(f"{where}: missing field {field!r}")
    if problems:
        return problems
    if not isinstance(doc["name"], str) or not doc["name"]:
        problems.append(f"{where}: 'name' must be a non-empty string")
    for field in ("trace_id", "span_id"):
        if not isinstance(doc[field], int):
            problems.append(f"{where}: {field!r} must be an int")
    if not isinstance(doc["tags"], dict):
        problems.append(f"{where}: 'tags' must be an object")
    else:
        problems.extend(_check_deploy_tags(doc["name"], doc["tags"], where))
    if doc["end"] is not None and doc["end"] < doc["start"]:
        problems.append(f"{where}: span ends before it starts")
    return problems


def validate_spans_jsonl(text: str) -> List[str]:
    """Validate a whole ``spans.jsonl`` payload; returns problems."""
    problems: List[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        try:
            doc = json.loads(line)
        except ValueError as exc:
            problems.append(f"{where}: invalid JSON ({exc})")
            continue
        problems.extend(validate_span_doc(doc, where))
    return problems


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check a parsed trace document; returns a list of problems.

    An empty list means the document satisfies the exporter's schema:
    every event has ``name``/``ph``/``pid``/``ts``, durations are
    non-negative, counters carry a numeric value, and at least one
    ``process_name`` metadata event names a pid lane.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' missing or not a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    named_pids = False
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty 'name'")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: 'pid' must be an int")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a number >= 0")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        elif ph == "i":
            if event.get("s") not in (None, "t", "p", "g"):
                problems.append(f"{where}: instant scope {event.get('s')!r}")
        elif ph == "C":
            value = (event.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter needs numeric args.value")
        elif ph == "M" and event["name"] == "process_name":
            if (event.get("args") or {}).get("name"):
                named_pids = True
        if ph in ("X", "i") and isinstance(event.get("name"), str):
            # The Chrome exporter folds span tags into args; deploy
            # spans must keep their schema through that mapping too.
            problems.extend(
                _check_deploy_tags(
                    event["name"], event.get("args") or {}, where
                )
            )
    if events and not named_pids:
        problems.append("no 'process_name' metadata events (pid lanes unnamed)")
    return problems


def validate_flight_jsonl(text: str) -> List[str]:
    """Validate a flight-recorder post-mortem dump; returns problems.

    Contract (see :class:`repro.telemetry.live.FlightRecorder`): first
    line is a header object under the ``"flight"`` key carrying
    node/pid/incarnation/reason/entry counts; every further line is one
    ring entry with at least ``t`` (number) and ``event`` (string).
    """
    problems: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["empty flight dump"]
    try:
        header_doc = json.loads(lines[0])
    except ValueError as exc:
        return [f"line 1: invalid JSON ({exc})"]
    header = header_doc.get("flight") if isinstance(header_doc, dict) else None
    if not isinstance(header, dict):
        return ["line 1: not a flight header (missing 'flight' object)"]
    for field in ("node", "incarnation", "pid", "reason", "entries"):
        if field not in header:
            problems.append(f"line 1: header missing field {field!r}")
    declared = header.get("entries")
    if isinstance(declared, int) and declared != len(lines) - 1:
        problems.append(
            f"line 1: header says {declared} entries, file has "
            f"{len(lines) - 1}"
        )
    for lineno, line in enumerate(lines[1:], start=2):
        where = f"line {lineno}"
        try:
            entry = json.loads(line)
        except ValueError as exc:
            problems.append(f"{where}: invalid JSON ({exc})")
            continue
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(entry.get("event"), str) or not entry["event"]:
            problems.append(f"{where}: missing/empty 'event'")
        if not isinstance(entry.get("t"), (int, float)):
            problems.append(f"{where}: 't' must be a number")
    return problems


def _validate_file(path: Path) -> List[str]:
    """Dispatch one artifact by filename; returns problems."""
    try:
        text = path.read_text()
    except OSError as exc:
        return [f"unreadable ({exc})"]
    if path.suffix == ".jsonl":
        if "metrics" in path.name:
            return validate_metrics_jsonl(text)
        if "flight" in path.name:
            return validate_flight_jsonl(text)
        return validate_spans_jsonl(text)
    try:
        doc = json.loads(text)
    except ValueError as exc:
        return [f"invalid JSON ({exc})"]
    return validate_chrome_trace(doc)


def _expand_directory(path: Path) -> List[Path]:
    """A telemetry directory's validatable artifacts, sorted.

    The merged ``trace.json`` plus every ``*.jsonl`` (per-process
    spans/metrics, flight dumps).  ``manifest.json``, ``meta-*.json``
    and ``summary.txt`` carry no validator contract and are skipped.
    """
    artifacts: List[Path] = []
    trace = path / "trace.json"
    if trace.exists():
        artifacts.append(trace)
    artifacts.extend(sorted(path.glob("*.jsonl")))
    return artifacts


def main(argv=None) -> int:
    """CLI entry point: validate trace/span artifacts, exit 0/1.

    Accepts any mix of ``trace.json`` (Chrome trace), ``spans.jsonl``,
    ``metrics.jsonl`` and ``flight-*.jsonl`` files; the filename picks
    the validator (``.jsonl`` with ``metrics`` in the name → metrics,
    with ``flight`` → flight dump, other ``.jsonl`` → spans, anything
    else → Chrome trace).  A *directory* argument (a live run's
    ``--telemetry DIR``) expands to its merged ``trace.json`` plus
    every ``*.jsonl`` inside; an empty directory fails.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print(
            "usage: python -m repro.telemetry.validate "
            "TRACE.json [SPANS.jsonl ...] [METRICS.jsonl ...] [DIR ...]",
            file=sys.stderr,
        )
        return 2
    paths: List[Path] = []
    failed = False
    for name in argv:
        path = Path(name)
        if path.is_dir():
            found = _expand_directory(path)
            if not found:
                print(
                    f"{path}: no telemetry artifacts "
                    "(no trace.json or *.jsonl)",
                    file=sys.stderr,
                )
                failed = True
            paths.extend(found)
        else:
            paths.append(path)
    for path in paths:
        problems = _validate_file(path)
        if problems:
            failed = True
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
