"""Chrome trace-event schema validation (CI smoke + tests).

The exporter promises a document Perfetto will load; this module checks
the contract without needing Perfetto: a ``traceEvents`` list whose
events carry the right fields per phase.  Usable as a library
(:func:`validate_chrome_trace`) or a CLI::

    python -m repro.telemetry.validate out/trace.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Union

#: Event phases the exporter may emit.
KNOWN_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(doc: dict) -> List[str]:
    """Check a parsed trace document; returns a list of problems.

    An empty list means the document satisfies the exporter's schema:
    every event has ``name``/``ph``/``pid``/``ts``, durations are
    non-negative, counters carry a numeric value, and at least one
    ``process_name`` metadata event names a pid lane.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' missing or not a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    named_pids = False
    for i, event in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing/empty 'name'")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: 'pid' must be an int")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a number >= 0")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        elif ph == "i":
            if event.get("s") not in (None, "t", "p", "g"):
                problems.append(f"{where}: instant scope {event.get('s')!r}")
        elif ph == "C":
            value = (event.get("args") or {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where}: counter needs numeric args.value")
        elif ph == "M" and event["name"] == "process_name":
            if (event.get("args") or {}).get("name"):
                named_pids = True
    if events and not named_pids:
        problems.append("no 'process_name' metadata events (pid lanes unnamed)")
    return problems


def main(argv=None) -> int:
    """CLI entry point: validate one trace file, exit 0/1."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.telemetry.validate TRACE.json", file=sys.stderr)
        return 2
    path = Path(argv[0])
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable ({exc})", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        return 1
    events = doc["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") in ("X", "i"))
    print(f"{path}: OK ({len(events)} events, {spans} span events)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
