"""Metric instruments and the registry that owns them.

Three instrument families, all stamped in *simulated* time:

* :class:`Counter` — monotonically increasing totals (messages sent,
  moves rejected, leases broken);
* :class:`Gauge` — last-value instruments (queue depth, sim clock),
  optionally retaining a ``(time, value)`` series for the Chrome-trace
  counter tracks;
* :class:`Histogram` — fixed-bucket distributions (invocation duration,
  attachment-closure size).  Buckets are fixed at creation: merging
  across runs and exporting stay trivial, and observation cost is one
  linear scan over a small tuple.

Instruments are keyed by ``(name, labels)`` where ``labels`` is a
sorted tuple of ``(key, value)`` pairs — the Prometheus data model,
without the server.  Hot paths fetch an instrument once and hold the
reference; the registry returns the same object for the same key.

The :class:`NullMetricsRegistry` mirrors the API at near-zero cost for
the disabled-telemetry path (all instruments share one inert object).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]

#: Default histogram bucket upper bounds, in simulated time units.
#: Chosen to resolve both sub-latency values (Exp(1) messages) and
#: multi-transfer migrations (M = 6 per object, serial rollbacks).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "labels", "value", "updated_at", "_registry")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, registry: "MetricsRegistry"):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at = 0.0
        self._registry = registry

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the total."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount
        self.updated_at = self._registry.clock()

    def to_dict(self) -> dict:
        """Serialize for the JSONL exporter."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
            "updated_at": self.updated_at,
        }


class Gauge:
    """Last-value instrument, optionally retaining its sample series."""

    __slots__ = ("name", "labels", "value", "updated_at", "series", "_registry")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        registry: "MetricsRegistry",
        track_series: bool = False,
    ):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updated_at = 0.0
        #: ``(time, value)`` samples when series tracking is on, else None.
        self.series: Optional[List[Tuple[float, float]]] = (
            [] if track_series else None
        )
        self._registry = registry

    def set(self, value: float) -> None:
        """Record the current value (stamped with the sim clock)."""
        self.value = value
        self.updated_at = self._registry.clock()
        if self.series is not None:
            self.series.append((self.updated_at, value))

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the value up by ``amount`` (default 1)."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the value down by ``amount`` (default 1)."""
        self.set(self.value - amount)

    def to_dict(self) -> dict:
        """Serialize for the JSONL exporter."""
        data = {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
            "updated_at": self.updated_at,
        }
        if self.series is not None:
            data["samples"] = len(self.series)
        return data


class Histogram:
    """Fixed-bucket distribution with sum/count for mean recovery."""

    __slots__ = (
        "name", "labels", "buckets", "counts", "sum", "count",
        "updated_at", "_registry",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        registry: "MetricsRegistry",
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        #: One count per bound, plus the +inf overflow bucket at the end.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.updated_at = 0.0
        self._registry = registry

    def observe(self, value: float) -> None:
        """Record one observation."""
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1
        self.updated_at = self._registry.clock()

    @property
    def mean(self) -> float:
        """Mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        """Serialize for the JSONL exporter."""
        return {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "updated_at": self.updated_at,
        }


class MetricsRegistry:
    """Owns every instrument of one telemetry context.

    ``clock`` is a zero-argument callable returning the current
    *simulated* time; the telemetry facade binds it to ``env.now`` when
    it attaches to a run.  Before binding, updates are stamped 0.0.
    """

    def __init__(self, clock=None):
        self.clock = clock or (lambda: 0.0)
        self._metrics: Dict[Tuple[str, LabelKey], Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any], **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], self, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"cannot re-register as {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, track_series: bool = False, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        gauge = self._get(Gauge, name, labels, track_series=track_series)
        if track_series and gauge.series is None:
            gauge.series = []
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``buckets`` only applies on first creation; later fetches reuse
        the existing bounds.
        """
        return self._get(Histogram, name, labels, buckets=buckets)

    def names(self) -> List[str]:
        """Distinct metric names, sorted."""
        return sorted({name for name, _ in self._metrics})

    def snapshot(self) -> List[dict]:
        """Every instrument serialized, in (name, labels) order."""
        return [
            self._metrics[key].to_dict() for key in sorted(self._metrics)
        ]

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        return iter(self._metrics.values())


class _NullInstrument:
    """Shared inert instrument: accepts every update, records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return

    def dec(self, amount: float = 1.0) -> None:
        return

    def set(self, value: float) -> None:
        return

    def observe(self, value: float) -> None:
        return


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Registry that discards everything (disabled-telemetry path)."""

    def __init__(self):
        super().__init__()

    def counter(self, name: str, **labels: Any):  # noqa: D102
        return _NULL_INSTRUMENT

    def gauge(self, name: str, track_series: bool = False, **labels: Any):  # noqa: D102
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS, **labels: Any):  # noqa: D102
        return _NULL_INSTRUMENT
