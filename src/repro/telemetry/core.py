"""The :class:`Telemetry` facade: metrics + spans for one run.

One ``Telemetry`` instance is threaded through the stack the same way a
:class:`~repro.sim.trace.Tracer` is: constructor parameter with a
shared :data:`NULL_TELEMETRY` default whose ``enabled`` is False.  Every
instrumentation site guards with ``if telemetry.enabled:`` so the
disabled path costs one attribute read and a branch — the golden
determinism tests stay bit-identical.

Span context
------------
Simulation processes interleave cooperatively, so "the current span"
is per-process state: the facade keys its current-span table by
``env.active_process``.  Code between two yields runs atomically,
start/end pairs nest within one process, and a span started in process
A can be handed to a child process as an explicit ``parent`` (the
migration service does this for its parallel transfer processes).
Enabling telemetry draws no randomness and schedules no events except
the optional kernel sampler, whose timeouts never reorder other events
— seeded results with telemetry on are bit-identical to telemetry off.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry, NullMetricsRegistry
from repro.telemetry.spans import ERROR, OK, Span


class Telemetry:
    """Collects metrics and spans for one (or several pooled) runs.

    Parameters
    ----------
    max_spans:
        Hard cap on retained spans; beyond it new spans are still
        created (so context propagation keeps working) but not
        retained.  Bounds memory on very long instrumented runs.
    id_base:
        Offset added to every minted span/trace id.  Sim runs keep the
        default 0; live OS processes each mint from a disjoint band
        (see :func:`repro.telemetry.live.process_id_base`) so merged
        cross-process traces never collide on ids.
    """

    def __init__(self, max_spans: int = 200_000, id_base: int = 0):
        self.metrics = MetricsRegistry(clock=self.now)
        self.max_spans = max_spans
        self.id_base = id_base
        #: Every retained span, in start order (open ones included).
        self.spans: List[Span] = []
        #: Spans created beyond ``max_spans`` (dropped from retention).
        self.spans_dropped = 0
        self._env = None
        self._clock = None
        self._span_ids = count(id_base + 1)
        self._trace_ids = count(id_base + 1)
        #: Context key (process) -> innermost open span.
        self._current: Dict[Any, Span] = {}
        self._sampler_started = False

    @property
    def enabled(self) -> bool:
        """Real telemetry records; :class:`NullTelemetry` overrides."""
        return True

    # -- clock & context ------------------------------------------------------

    def bind(self, env) -> None:
        """Attach to a simulation environment (clock + span context)."""
        self._env = env

    def bind_clock(self, clock) -> None:
        """Stamp spans/metrics from a seam :class:`~repro.runtime.clock.
        Clock` instead of a simulation environment.

        The live backend binds a ``WallClock`` here, so the exact same
        span/metric machinery produces wall-clock-stamped traces from
        real OS processes.  Span context falls back to a single global
        slot (there is no ``active_process`` off the kernel); asyncio
        callers that need per-task context pass explicit ``parent``
        spans, which the exporters already support.
        """
        self._clock = clock

    def now(self) -> float:
        """Current time: bound clock, else simulated time, else 0.0."""
        if self._clock is not None:
            return self._clock.now()
        env = self._env
        return env.now if env is not None else 0.0

    def _context_key(self):
        env = self._env
        return env.active_process if env is not None else None

    def current_span(self) -> Optional[Span]:
        """The innermost open span of the active process, if any."""
        return self._current.get(self._context_key())

    # -- span lifecycle -------------------------------------------------------

    def start_span(
        self,
        name: str,
        node: Optional[int] = None,
        parent: Optional[Span] = None,
        remote: Optional[Tuple[int, int]] = None,
        detached: bool = False,
        **tags: Any,
    ) -> Span:
        """Open a span; it becomes the active process' current span.

        ``parent`` defaults to the current span of the active process;
        pass it explicitly when handing work to a freshly spawned
        process (the spawning process' span is not visible there).
        A span with no parent starts a new trace.

        ``remote`` adopts a foreign ``(trace_id, parent_span_id)``
        context carried over the wire from another OS process, joining
        that trace without a local parent ``Span`` object.

        ``detached`` spans never touch the current-span table: live
        asyncio handlers run concurrently on one loop and would stomp
        the single global context slot, so they pass explicit
        ``parent``/``remote`` context and stay detached.
        """
        key = self._context_key()
        if remote is not None:
            trace_id, parent_id = remote
        else:
            if parent is None and not detached:
                parent = self._current.get(key)
            if parent is not None:
                trace_id = parent.trace_id
                parent_id = parent.span_id
            else:
                trace_id = next(self._trace_ids)
                parent_id = None
        span = Span(
            trace_id=trace_id,
            span_id=next(self._span_ids),
            parent_id=parent_id,
            name=name,
            node=node,
            start=self.now(),
            tags=tags,
        )
        if not detached:
            span._prev = self._current.get(key)
            self._current[key] = span
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.spans_dropped += 1
        return span

    def end_span(self, span: Span, status: str = OK, **tags: Any) -> Span:
        """Close a span, restoring its predecessor as current."""
        if span.end is not None:
            return span
        span.end = self.now()
        span.status = status
        if tags:
            span.tags.update(tags)
        key = self._context_key()
        if self._current.get(key) is span:
            if span._prev is not None:
                self._current[key] = span._prev
            else:
                self._current.pop(key, None)
        span._prev = None
        return span

    @contextmanager
    def span(
        self,
        name: str,
        node: Optional[int] = None,
        parent: Optional[Span] = None,
        **tags: Any,
    ):
        """Context manager for spans over non-yielding sections.

        Closes with ``error`` status (tagged with the exception type)
        when the body raises.  Inside process generators that yield
        while a span is open, prefer explicit start/end so every exit
        path (abort, rollback, retry exhaustion) sets its own status.
        """
        span = self.start_span(name, node=node, parent=parent, **tags)
        try:
            yield span
        except BaseException as exc:
            self.end_span(span, status=ERROR, error=type(exc).__name__)
            raise
        self.end_span(span)

    def open_spans(self) -> List[Span]:
        """Every retained span not yet finished (must be [] after a run)."""
        return [s for s in self.spans if s.is_open]

    def spans_named(self, name: str) -> List[Span]:
        """All retained spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    # -- kernel sampling ------------------------------------------------------

    def start_kernel_sampler(self, env, interval: float = 25.0) -> None:
        """Sample kernel gauges (queue depth, event throughput) periodically.

        Launches one simulation process; call only on runs driven with
        a finite horizon (``run(until=...)``) — the sampler reschedules
        itself forever and would keep an unbounded run alive.
        Idempotent per telemetry instance.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if self._sampler_started:
            return
        self._sampler_started = True
        self.bind(env)
        env.process(self._sample_kernel(env, interval), name="telemetry-sampler")

    def _sample_kernel(self, env, interval: float):
        depth = self.metrics.gauge("kernel.queue_depth", track_series=True)
        scheduled = self.metrics.gauge("kernel.events_scheduled", track_series=True)
        rate = self.metrics.gauge("kernel.event_rate", track_series=True)
        clock = self.metrics.gauge("kernel.sim_time")
        last = env.scheduled_events
        while True:
            total = env.scheduled_events
            depth.set(len(env))
            scheduled.set(total)
            rate.set((total - last) / interval)
            clock.set(env.now)
            last = total
            yield env.timeout(interval)

    def __repr__(self) -> str:
        return (
            f"<Telemetry metrics={len(self.metrics)} spans={len(self.spans)} "
            f"open={len(self.open_spans())}>"
        )


class _NullSpan(Span):
    """Shared inert span handed out by :class:`NullTelemetry`."""

    __slots__ = ()

    def __init__(self):
        super().__init__(
            trace_id=0, span_id=0, parent_id=None, name="null",
            node=None, start=0.0, tags={},
        )

    def tag(self, **tags: Any) -> "Span":  # noqa: D102
        return self


#: Shared do-nothing span (returned by every NullTelemetry span call).
NULL_SPAN = _NullSpan()


class NullTelemetry(Telemetry):
    """Telemetry that records nothing (the default everywhere)."""

    def __init__(self):
        super().__init__(max_spans=0)
        self.metrics = NullMetricsRegistry()

    @property
    def enabled(self) -> bool:
        return False

    def start_span(
        self, name, node=None, parent=None, remote=None, detached=False, **tags
    ):  # noqa: D102
        return NULL_SPAN

    def end_span(self, span, status=OK, **tags):  # noqa: D102
        return NULL_SPAN

    @contextmanager
    def span(self, name, node=None, parent=None, **tags):  # noqa: D102
        yield NULL_SPAN

    def current_span(self):  # noqa: D102
        return None

    def start_kernel_sampler(self, env, interval: float = 25.0) -> None:  # noqa: D102
        return


#: Shared do-nothing telemetry instance.
NULL_TELEMETRY = NullTelemetry()


def span_context(span: Optional[Span]) -> Optional[Tuple[int, int]]:
    """The wire-able ``(trace_id, span_id)`` context of ``span``.

    Returns None for ``None`` and for :data:`NULL_SPAN` (span_id 0), so
    callers can unconditionally stamp envelopes with the result: under
    :class:`NullTelemetry` the envelope simply carries no trace context.
    """
    if span is None or span.span_id == 0:
        return None
    return (span.trace_id, span.span_id)
