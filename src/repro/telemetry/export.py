"""Exporters: JSONL, Chrome trace-event JSON, and a text summary.

Three consumers, three formats:

* ``metrics.jsonl`` / ``spans.jsonl`` — one JSON document per line,
  greppable and ``jq``-able, stable field names;
* ``trace.json`` — Chrome trace-event format, loadable in Perfetto or
  ``chrome://tracing``.  Simulated time maps to microseconds 1:1 and
  each simulated node maps to one ``pid`` lane, so a cross-node
  ``move()`` renders as a span tree spread over the participating
  nodes' rows.  Gauge series become counter (``ph: "C"``) tracks;
* :func:`summary_table` — the per-run text table the CLI prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.telemetry.core import Telemetry
from repro.telemetry.spans import ERROR

#: One simulated time unit maps to this many Chrome-trace microseconds.
SIM_TO_US = 1.0

#: The pid lane for events not tied to a simulated node (kernel
#: samplers, closure computations without a home).
SYSTEM_PID = -1


def write_metrics_jsonl(telemetry: Telemetry, path: Union[str, Path]) -> Path:
    """Write every instrument as one JSON line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for record in telemetry.metrics.snapshot():
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def write_spans_jsonl(telemetry: Telemetry, path: Union[str, Path]) -> Path:
    """Write every retained span as one JSON line; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for span in telemetry.spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return path


def _pid(node, pid_map: Optional[Dict[int, int]] = None) -> int:
    """Trace-event pid lane for a span's node.

    Sim traces keep the historical synthetic mapping (node id *is* the
    pid lane; ``None`` → :data:`SYSTEM_PID`).  Live merged traces pass
    ``pid_map`` (node → real OS pid) so lanes carry genuine pids; a
    span additionally tagged ``os_pid`` (per-incarnation fidelity)
    overrides the map — see :func:`to_chrome_trace`.
    """
    if node is None:
        return SYSTEM_PID
    if pid_map is not None and node in pid_map:
        return int(pid_map[node])
    return int(node)


def _span_pid(span, pid_map: Optional[Dict[int, int]] = None) -> int:
    os_pid = span.tags.get("os_pid")
    if os_pid is not None:
        return int(os_pid)
    return _pid(span.node, pid_map)


def to_chrome_trace(
    telemetry: Telemetry,
    pid_map: Optional[Dict[int, int]] = None,
    process_names: Optional[Dict[int, str]] = None,
    time_scale: Optional[float] = None,
) -> dict:
    """Render spans + gauge series as a Chrome trace-event document.

    Mapping: sim-time → µs (×:data:`SIM_TO_US`), node → ``pid``,
    trace id → ``tid`` (so one trace's spans share a row per node).
    Zero-duration spans (policy decisions, closure computations) become
    instant (``ph: "i"``) markers so they stay visible in Perfetto.

    ``pid_map`` (node → real OS pid) and per-span ``os_pid`` tags put
    live merged traces on genuine OS-process lanes; ``process_names``
    (pid → label) names those lanes; ``time_scale`` overrides
    :data:`SIM_TO_US` (live timestamps are *seconds*, so merged live
    traces pass 1e6).  With all three left ``None`` (every sim caller)
    the output is byte-identical to the historical synthetic mapping.
    """
    scale = SIM_TO_US if time_scale is None else time_scale
    events: List[dict] = []
    pids = {SYSTEM_PID}
    for span in telemetry.spans:
        pids.add(_span_pid(span, pid_map))

    for pid in sorted(pids):
        if process_names is not None and pid in process_names:
            name = process_names[pid]
        else:
            name = "system" if pid == SYSTEM_PID else f"node-{pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": name},
            }
        )

    for span in telemetry.spans:
        if span.is_open:
            continue
        args = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "status": span.status,
            **span.tags,
        }
        ts = span.start * scale
        dur = span.duration * scale
        base = {
            "name": span.name,
            "cat": "span" if span.status != ERROR else "span,error",
            "pid": _span_pid(span, pid_map),
            "tid": span.trace_id,
            "ts": ts,
            "args": args,
        }
        if dur > 0:
            events.append({**base, "ph": "X", "dur": dur})
        else:
            events.append({**base, "ph": "i", "s": "t"})

    for metric in telemetry.metrics:
        series = getattr(metric, "series", None)
        if not series:
            continue
        for t, value in series:
            events.append(
                {
                    "ph": "C",
                    "name": metric.name,
                    "pid": SYSTEM_PID,
                    "tid": 0,
                    "ts": t * scale,
                    "args": {"value": value},
                }
            )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    telemetry: Telemetry,
    path: Union[str, Path],
    pid_map: Optional[Dict[int, int]] = None,
    process_names: Optional[Dict[int, str]] = None,
    time_scale: Optional[float] = None,
) -> Path:
    """Write the Chrome trace-event document; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(
            to_chrome_trace(
                telemetry,
                pid_map=pid_map,
                process_names=process_names,
                time_scale=time_scale,
            )
        )
    )
    return path


def summary_table(telemetry: Telemetry) -> str:
    """Human-readable per-run summary of metrics and spans."""
    lines = ["telemetry summary", "=" * 17, "", "metrics:"]
    rows = [["name", "labels", "type", "value", "count/mean"]]
    for record in telemetry.metrics.snapshot():
        labels = ",".join(f"{k}={v}" for k, v in sorted(record["labels"].items()))
        if record["type"] == "histogram":
            mean = record["sum"] / record["count"] if record["count"] else 0.0
            value, extra = f"{record['sum']:.3f}", f"{record['count']}/{mean:.3f}"
        else:
            value, extra = f"{record['value']:g}", "-"
        rows.append([record["name"], labels or "-", record["type"], value, extra])
    lines.extend(_align(rows))

    lines.extend(["", "spans:"])
    by_name: Dict[str, List] = {}
    for span in telemetry.spans:
        by_name.setdefault(span.name, []).append(span)
    rows = [["name", "count", "errors", "mean_dur", "total_dur"]]
    for name in sorted(by_name):
        spans = by_name[name]
        closed = [s for s in spans if not s.is_open]
        errors = sum(1 for s in closed if s.status == ERROR)
        total = sum(s.duration for s in closed)
        mean = total / len(closed) if closed else 0.0
        rows.append(
            [name, str(len(spans)), str(errors), f"{mean:.3f}", f"{total:.3f}"]
        )
    lines.extend(_align(rows))
    lines.append("")
    lines.append(
        f"traces: {len({s.trace_id for s in telemetry.spans})}   "
        f"open spans: {len(telemetry.open_spans())}   "
        f"dropped: {telemetry.spans_dropped}"
    )
    return "\n".join(lines)


def _align(rows: List[List[str]]) -> List[str]:
    if len(rows) == 1:
        return ["  (none)"]
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    return [
        "  " + "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
        for row in rows
    ]


def export_run(telemetry: Telemetry, out_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write all three artifacts plus the summary into ``out_dir``.

    Returns ``{"metrics": ..., "spans": ..., "trace": ..., "summary": ...}``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = {
        "metrics": write_metrics_jsonl(telemetry, out / "metrics.jsonl"),
        "spans": write_spans_jsonl(telemetry, out / "spans.jsonl"),
        "trace": write_chrome_trace(telemetry, out / "trace.json"),
    }
    summary = summary_table(telemetry)
    summary_path = out / "summary.txt"
    summary_path.write_text(summary + "\n")
    paths["summary"] = summary_path
    return paths
