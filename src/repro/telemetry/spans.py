"""Causal spans: timed, tagged tree nodes spanning nodes and services.

A :class:`Span` is one timed operation.  Spans form trees via
``parent_id`` within a trace (shared ``trace_id``): a ``move()`` request
renders as

.. code-block:: text

    move (client node)
    ├── move.request          message to the object's home
    ├── place.locked          rejection by the place-policy, or
    ├── closure               attachment-closure computation
    └── migration
        └── transfer          one per working-set member
            └── rollback      only when the transfer aborted

Ids are small deterministic integers drawn from per-telemetry counters
— no randomness, so enabling spans never perturbs a seeded run.  The
``node`` attribute maps to the Chrome-trace ``pid`` so Perfetto renders
one lane per simulated node.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

#: Span status while running.
OPEN = "open"
#: Completed successfully.
OK = "ok"
#: Completed with an error (abort, timeout, exception).
ERROR = "error"


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "node",
        "start", "end", "status", "tags", "_prev",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        node: Optional[int],
        start: float,
        tags: Dict[str, Any],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: Simulated node the operation ran on (Chrome-trace pid);
        #: ``None`` renders under the synthetic "system" process.
        self.node = node
        self.start = start
        self.end: Optional[float] = None
        self.status = OPEN
        self.tags = tags
        #: Span this one displaced as the context's current span;
        #: restored when this span ends (telemetry-internal).
        self._prev: Optional["Span"] = None

    @property
    def is_open(self) -> bool:
        """True until the span is finished."""
        return self.end is None

    @property
    def duration(self) -> float:
        """Elapsed simulated time (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def tag(self, **tags: Any) -> "Span":
        """Attach (or overwrite) tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def to_dict(self) -> dict:
        """Serialize for the JSONL exporter."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} trace={self.trace_id} id={self.span_id} "
            f"parent={self.parent_id} node={self.node} status={self.status}>"
        )
