"""Observability layer: metrics, causal spans, exporters.

The reproduction's end-of-run aggregates say *that* a policy degraded;
this package says *why*: a :class:`MetricsRegistry` samples kernel,
network, locking, invocation and migration counters in simulated time,
and causal :class:`~repro.telemetry.spans.Span` trees follow one
``move()`` through request, policy decision, closure computation,
transfer and rollback across nodes.  Exporters render both as JSONL and
as Chrome trace-event JSON loadable in Perfetto.

Everything defaults to :data:`NULL_TELEMETRY` (mirroring
:data:`~repro.sim.trace.NULL_TRACER`), whose disabled path is a single
attribute check — fault-free golden traces and metrics stay
bit-identical with telemetry off.

:mod:`repro.telemetry.live` extends the layer across OS-process
boundaries for the live runtime: per-process span/metric writers, a
crash flight recorder, clock-offset estimation, and a
:class:`~repro.telemetry.live.TelemetryHub` that merges every
process's files into one Perfetto trace on real pid lanes.
"""

from repro.telemetry.core import (
    NULL_SPAN,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    span_context,
)
from repro.telemetry.export import (
    export_run,
    summary_table,
    to_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
    write_spans_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.live import (
    ClockSync,
    FlightRecorder,
    ProcessTelemetryWriter,
    TelemetryHub,
    clean_telemetry_dir,
    load_flight_dump,
    process_id_base,
)
from repro.telemetry.spans import ERROR, OK, OPEN, Span
from repro.telemetry.validate import validate_chrome_trace

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "NULL_SPAN",
    "span_context",
    "Span",
    "OPEN",
    "OK",
    "ERROR",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "export_run",
    "summary_table",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
    "write_spans_jsonl",
    "validate_chrome_trace",
    "ClockSync",
    "FlightRecorder",
    "ProcessTelemetryWriter",
    "TelemetryHub",
    "clean_telemetry_dir",
    "load_flight_dump",
    "process_id_base",
]
