"""The linguistic primitives for mobile objects (§2.2/§2.3).

This is the public, application-facing layer: the classic primitive set
systems like Emerald, DOWL or GOM expose —

* fixing objects: :meth:`~MigrationPrimitives.fix`,
  :meth:`~MigrationPrimitives.unfix`, :meth:`~MigrationPrimitives.refix`;
* moving objects: :meth:`~MigrationPrimitives.migrate` (to a node or to
  another object), :meth:`~MigrationPrimitives.location_of`,
  :meth:`~MigrationPrimitives.is_resident`;
* keeping objects together: :meth:`~MigrationPrimitives.attach`,
  :meth:`~MigrationPrimitives.detach`;
* the standard policies: :meth:`~MigrationPrimitives.move_block`
  (call-by-move semantics: migrate, use, leave) and
  :meth:`~MigrationPrimitives.visit_block` (call-by-visit: migrate,
  use, migrate back).

How a ``move`` behaves under concurrency is decided by the installed
:class:`~repro.core.policies.base.MigrationPolicy` — swap in
:class:`~repro.core.policies.placement.TransientPlacement` and the same
application code becomes conflict-safe; that transparency is the point
of §3.2.

All blocking operations are *process fragments*: call them with
``yield from`` inside a simulation process.
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.core.alliance import Alliance
from repro.core.attachment import AttachmentManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.errors import ObjectFixedError
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem

#: A migration target: either a node id or an object to collocate with.
Target = Union[int, DistributedObject]


class MoveScope:
    """A live move-block: the span between ``move()`` and ``end``.

    Obtained from :meth:`MigrationPrimitives.move_block`.  Usage inside
    a simulation process::

        scope = primitives.move_block(client_node, server)
        yield from scope.enter()
        for _ in range(n):
            yield from scope.call()
        yield from scope.exit()
    """

    def __init__(
        self,
        primitives: "MigrationPrimitives",
        client_node: int,
        target: DistributedObject,
        alliance: Optional[Alliance] = None,
    ):
        self._primitives = primitives
        self.block = MoveBlock(client_node, target, alliance=alliance)
        self._entered = False

    def enter(self) -> Generator:
        """Issue the move request (policy decides what happens).

        Guard failures raise eagerly, at the call site.
        """
        if self._entered:
            raise RuntimeError("move scope already entered")
        self._entered = True
        return self._enter()

    def _enter(self) -> Generator:
        outcome = yield from self._primitives.policy.move(self.block)
        return outcome

    def call(self, body=None) -> Generator:
        """Invoke the target once, recording the duration in the block."""
        if not self._entered:
            raise RuntimeError("enter() the move scope before calling")
        return self._call(body)

    def _call(self, body) -> Generator:
        result = yield from self._primitives.system.invocations.invoke(
            self.block.client_node, self.block.target, body=body
        )
        self.block.record_call(result.duration)
        return result

    def exit(self) -> Generator:
        """Issue the end request (unlock/deregister per policy)."""
        if not self._entered:
            raise RuntimeError("cannot exit a scope that was never entered")
        return self._exit()

    def _exit(self) -> Generator:
        yield from _as_generator(self._primitives.policy.end(self.block))
        return self.block


class VisitScope(MoveScope):
    """Call-by-visit: like a move, but the object migrates back on exit.

    "A visit is the combination of a move and a migrate back" (§2.3).
    The return transfer is charged to the block's migration cost.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._origin: Optional[int] = None

    def enter(self) -> Generator:
        self._origin = self.block.target.node_id
        outcome = yield from super().enter()
        return outcome

    def exit(self) -> Generator:
        yield from _as_generator(self._primitives.policy.end(self.block))
        # Migrate back only if our move actually displaced the object.
        if (
            self.block.granted
            and self._origin is not None
            and self.block.target.node_id != self._origin
            and not self.block.target.is_locked
        ):
            start = self._primitives.system.env.now
            yield from self._primitives.system.migrations.migrate(
                [self.block.target], self._origin
            )
            self.block.migration_cost += self._primitives.system.env.now - start
        return self.block


class MigrationPrimitives:
    """Facade bundling a system, a policy and an attachment graph."""

    def __init__(
        self,
        system: DistributedSystem,
        policy: MigrationPolicy,
        attachments: Optional[AttachmentManager] = None,
    ):
        self.system = system
        self.policy = policy
        self.attachments = attachments if attachments is not None else policy.attachments

    # -- fixing objects (§2.2) ---------------------------------------------------

    def fix(self, obj: DistributedObject) -> None:
        """Make the object sedentary."""
        obj.fixed = True

    def unfix(self, obj: DistributedObject) -> None:
        """Allow the object to migrate again."""
        obj.fixed = False

    def refix(self, obj: DistributedObject, node: int) -> Generator:
        """Move a fixed object to ``node`` and fix it there.

        Process fragment (the transfer takes time).
        """
        obj.fixed = False
        try:
            yield from self.system.migrations.migrate([obj], node)
        finally:
            obj.fixed = True

    # -- moving objects (§2.2) ----------------------------------------------------

    def location_of(self, obj: DistributedObject) -> int:
        """Current node of the object (authoritative)."""
        return self.system.registry.location_of(obj.object_id)

    def is_resident(self, obj: DistributedObject, node: int) -> bool:
        """Whether the object currently resides on ``node``."""
        return obj.is_resident_on(node)

    def migrate(self, obj: DistributedObject, target: Target) -> Generator:
        """The raw ``migrate(O, target)`` building block.

        ``target`` may be a node id or another object (collocation).
        Bypasses the policy — this is mechanism, not policy; attached
        objects are dragged along per the attachment graph.  A fixed
        object raises :class:`ObjectFixedError` eagerly.
        """
        if obj.fixed:
            raise ObjectFixedError(f"{obj.name} is fixed")
        node = target.node_id if isinstance(target, DistributedObject) else target
        working_set = (
            self.attachments.closure(obj) if self.attachments is not None else [obj]
        )
        return self.system.migrations.migrate(working_set, node)

    # -- keeping objects together (§2.2) ---------------------------------------------

    def attach(
        self,
        a: DistributedObject,
        b: DistributedObject,
        alliance: Optional[Alliance] = None,
    ) -> bool:
        """Attach ``a`` to ``b`` (optionally inside an alliance)."""
        if self.attachments is None:
            raise RuntimeError("no attachment manager configured")
        if alliance is not None:
            return alliance.attach(a, b)
        return self.attachments.attach(a, b)

    def detach(
        self,
        a: DistributedObject,
        b: DistributedObject,
        alliance: Optional[Alliance] = None,
    ) -> bool:
        """Remove an attachment."""
        if self.attachments is None:
            raise RuntimeError("no attachment manager configured")
        if alliance is not None:
            return alliance.detach(a, b)
        return self.attachments.detach(a, b)

    # -- standard policies (§2.3) -----------------------------------------------------

    def move_block(
        self,
        client_node: int,
        target: DistributedObject,
        alliance: Optional[Alliance] = None,
    ) -> MoveScope:
        """Open a call-by-move scope (enter/call/exit)."""
        return MoveScope(self, client_node, target, alliance=alliance)

    def visit_block(
        self,
        client_node: int,
        target: DistributedObject,
        alliance: Optional[Alliance] = None,
    ) -> VisitScope:
        """Open a call-by-visit scope (object returns home on exit)."""
        return VisitScope(self, client_node, target, alliance=alliance)


def _as_generator(maybe_gen):
    """Normalize policy methods that may or may not be generators."""
    if maybe_gen is None:

        def _empty():
            return None
            yield  # pragma: no cover

        return _empty()
    return maybe_gen
