"""Alliance-level distribution policies (§3.4).

"Thus, an alliance defines a cooperation-policy between a set of
objects.  Additionally, an alliance can define a distribution policy."
The paper implemented cooperation policies on Objectstore and
distribution policies on DC++; here both live on the same abstraction:

* a :class:`DistributionPolicy` decides where an alliance's members
  should reside and can *apply* that decision (migrating members);
* :class:`CollocateMembers` keeps the whole alliance on one node
  (§2.2's communication-performance goal);
* :class:`SpreadMembers` distributes members round-robin (§2.2's
  availability goal);
* :class:`AnchorToMember` follows a designated anchor member — where
  the anchor goes (e.g. via a move-block), the rest of the alliance is
  pulled on demand.

Policies are advisory-then-apply: ``advice()`` computes the target
layout without touching anything, ``apply()`` migrates the members
that are out of place (skipping fixed or place-policy-locked members —
an alliance must not break the migration policy's guarantees).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Generator, List, Optional, Sequence

from repro.core.alliance import Alliance
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem


class DistributionPolicy(ABC):
    """Decides and enforces the placement of an alliance's members."""

    name = "abstract"

    def __init__(self, system: DistributedSystem, alliance: Alliance):
        self.system = system
        self.alliance = alliance
        #: Members migrated by apply() calls so far.
        self.relocations = 0

    @abstractmethod
    def advice(self) -> Dict[int, int]:
        """Target layout: member object id -> node id.

        Members absent from the mapping are unconstrained.
        """

    def _movable(self, obj: DistributedObject) -> bool:
        return not obj.fixed and not obj.is_locked and not obj.in_transit

    def apply(self) -> Generator:
        """Migrate out-of-place members to their advised nodes.

        Process fragment; transfers run in parallel.  Fixed, locked or
        in-transit members are left alone (their constraints win).
        Returns the number of members actually moved.
        """
        layout = self.advice()
        movers = []
        for member in self.alliance.members:
            target = layout.get(member.object_id)
            if target is None or member.node_id == target:
                continue
            if not self._movable(member):
                continue
            movers.append((member, target))

        if not movers:
            return 0

        procs = [
            self.system.env.process(
                self._move_one(member, target),
                name=f"distribute-{member.name}",
            )
            for member, target in movers
        ]
        yield self.system.env.all_of(procs)
        moved = sum(proc.value for proc in procs)
        self.relocations += moved
        return moved

    def _move_one(self, member: DistributedObject, target: int) -> Generator:
        outcome = yield from self.system.migrations.migrate([member], target)
        return outcome.moved_count

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} alliance={self.alliance.name} "
            f"relocations={self.relocations}>"
        )


class CollocateMembers(DistributionPolicy):
    """Keep every member on one home node (performance placement)."""

    name = "collocate"

    def __init__(
        self,
        system: DistributedSystem,
        alliance: Alliance,
        home_node: int,
    ):
        super().__init__(system, alliance)
        system.registry.node(home_node)  # validate
        self.home_node = home_node

    def advice(self) -> Dict[int, int]:
        return {
            member.object_id: self.home_node
            for member in self.alliance.members
        }


class SpreadMembers(DistributionPolicy):
    """Distribute members round-robin over nodes (availability placement)."""

    name = "spread"

    def __init__(
        self,
        system: DistributedSystem,
        alliance: Alliance,
        nodes: Optional[Sequence[int]] = None,
    ):
        super().__init__(system, alliance)
        if nodes is None:
            nodes = [node.node_id for node in system.registry.nodes]
        if not nodes:
            raise ValueError("need at least one node to spread over")
        for node_id in nodes:
            system.registry.node(node_id)  # validate
        self.nodes = list(nodes)

    def advice(self) -> Dict[int, int]:
        members = self.alliance.members
        return {
            member.object_id: self.nodes[i % len(self.nodes)]
            for i, member in enumerate(members)
        }


class AnchorToMember(DistributionPolicy):
    """Follow a designated anchor member wherever it currently is."""

    name = "anchor"

    def __init__(
        self,
        system: DistributedSystem,
        alliance: Alliance,
        anchor: DistributedObject,
    ):
        super().__init__(system, alliance)
        if anchor not in alliance:
            raise ValueError(
                f"anchor {anchor.name} is not a member of {alliance.name}"
            )
        self.anchor = anchor

    def advice(self) -> Dict[int, int]:
        home = self.anchor.node_id
        return {
            member.object_id: home
            for member in self.alliance.members
            if member.object_id != self.anchor.object_id
        }
