"""GOM-style operation declarations: call-by-move / call-by-visit (§2.3).

Figure 1 of the paper declares, in GOM syntax::

    type tool supertype ANY is
      operations
        declare assign: visit job, move schedule -> bool;

i.e. when ``assign`` is invoked on a tool, the ``job`` argument *visits*
the tool's node (comes over, returns after the operation) and the
``schedule`` argument *moves* (comes over and stays).  This module
provides that declaration style on top of the runtime::

    assign = OperationDeclaration(
        system, policy, owner=tool,
        visit=("job",), move=("schedule",),
    )
    outcome = yield from assign.call(caller_node, job=j, schedule=s)

Parameter transfers go through the installed migration *policy* as
move-blocks issued from the owner's node, so conflicting concurrent
operations on shared parameter objects get exactly the paper's
semantics: under conventional migration parameters are stolen, under
transient placement the second operation's parameters stay put and are
used remotely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.errors import ConfigurationError
from repro.runtime.invocation import InvocationResult
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem


@dataclass
class OperationOutcome:
    """Result of one declared-operation invocation."""

    #: The caller's observed invocation result (the actual call).
    invocation: InvocationResult
    #: Per-parameter move-blocks (parameter name -> block).
    parameter_blocks: Dict[str, MoveBlock] = field(default_factory=dict)
    #: Total wall-clock time of the whole operation (parameter
    #: transfers + call + visit returns).
    elapsed: float = 0.0

    @property
    def parameters_granted(self) -> int:
        """How many parameter moves were granted."""
        return sum(1 for b in self.parameter_blocks.values() if b.granted)


class OperationDeclaration:
    """A remotely invocable operation with parameter passing modes.

    Parameters
    ----------
    system, policy:
        Runtime and installed migration policy.
    owner:
        The object the operation belongs to (Fig 1's ``tool``).
    name:
        Operation name, for traces.
    visit:
        Parameter names passed call-by-visit (migrate in, migrate back).
    move:
        Parameter names passed call-by-move (migrate in, stay).
    """

    def __init__(
        self,
        system: DistributedSystem,
        policy: MigrationPolicy,
        owner: DistributedObject,
        name: str = "operation",
        visit: Tuple[str, ...] = (),
        move: Tuple[str, ...] = (),
    ):
        overlap = set(visit) & set(move)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} declared both visit and move"
            )
        self.system = system
        self.policy = policy
        self.owner = owner
        self.name = name
        self.visit_params = tuple(visit)
        self.move_params = tuple(move)
        #: Number of completed invocations.
        self.call_count = 0

    def _mode_of(self, param: str) -> Optional[str]:
        if param in self.visit_params:
            return "visit"
        if param in self.move_params:
            return "move"
        return None

    def call(
        self, caller_node: int, **params: DistributedObject
    ) -> Generator:
        """Invoke the operation; returns an :class:`OperationOutcome`.

        Unknown keyword parameters are rejected; declared parameters may
        be omitted (e.g. an optional schedule).
        """
        unknown = [
            p for p in params if self._mode_of(p) is None
        ]
        if unknown:
            raise ConfigurationError(
                f"{self.name}: undeclared parameters {sorted(unknown)}"
            )
        return self._call(caller_node, params)

    def _call(
        self, caller_node: int, params: Dict[str, DistributedObject]
    ) -> Generator:
        env = self.system.env
        start = env.now
        outcome = OperationOutcome(invocation=None)  # type: ignore[arg-type]
        origins: Dict[str, int] = {}

        # Parameter transfer phase: each moved/visited parameter is a
        # move-block issued from the owner's node, in parallel.
        blocks: List[Tuple[str, MoveBlock]] = []
        for pname in (*self.visit_params, *self.move_params):
            obj = params.get(pname)
            if obj is None:
                continue
            origins[pname] = obj.node_id
            block = MoveBlock(self.owner.node_id, obj)
            blocks.append((pname, block))
            outcome.parameter_blocks[pname] = block

        if blocks:
            procs = [
                env.process(
                    self._move_one(block), name=f"{self.name}-param-{pname}"
                )
                for pname, block in blocks
            ]
            yield env.all_of(procs)

        # The actual call (caller -> owner).
        result = yield from self.system.invocations.invoke(
            caller_node, self.owner
        )
        outcome.invocation = result

        # End phase: release blocks; visit parameters migrate home.
        for pname, block in blocks:
            yield from self.policy.end(block)
        returners = []
        for pname, block in blocks:
            obj = block.target
            if (
                self._mode_of(pname) == "visit"
                and block.granted
                and obj.node_id != origins[pname]
                and not obj.is_locked
            ):
                returners.append(
                    env.process(
                        self._return_one(obj, origins[pname]),
                        name=f"{self.name}-return-{pname}",
                    )
                )
        if returners:
            yield env.all_of(returners)

        outcome.elapsed = env.now - start
        self.call_count += 1
        return outcome

    def _move_one(self, block: MoveBlock) -> Generator:
        yield from self.policy.move(block)

    def _return_one(self, obj: DistributedObject, origin: int) -> Generator:
        yield from self.system.migrations.migrate([obj], origin)

    def __repr__(self) -> str:
        return (
            f"<OperationDeclaration {self.name} on {self.owner.name} "
            f"visit={list(self.visit_params)} move={list(self.move_params)}>"
        )
