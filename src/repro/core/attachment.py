"""Attachments: keeping objects together across migrations (§2.2, §3.4).

``attach(a, b)`` tells the system that ``a`` must be kept with ``b``:
whenever one of them migrates, the whole *transitive closure* of
attachments migrates along.  That transitivity is exactly what goes
wrong in non-monolithic systems — independently issued attachments glue
the overlapping working sets of different applications into one big
cluster, so every application "continuously underestimates the effect
of an issued migrate()" (§2.4).

This module implements the attachment graph with the three closure
semantics the paper discusses:

``UNRESTRICTED``
    Conventional semantics: the closure is the weakly connected
    component over *all* attachment edges.
``A_TRANSITIVE``
    Alliance-restricted semantics (§3.4): the closure follows only
    edges tagged with the alliance in which the migration primitive was
    invoked.
``EXCLUSIVE``
    First-come-first-served semantics (§3.4, last paragraph): an object
    may be attached *to* at most one other object; later attachments of
    the same object are ignored.  No new construct is needed, at the
    price of dropping some sensible attachments.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import AttachmentError
from repro.runtime.objects import DistributedObject

#: Tag used for edges not scoped to any alliance.
GLOBAL_CONTEXT: Optional[int] = None


class AttachmentMode(Enum):
    """Closure semantics applied when a migration drags attachments."""

    UNRESTRICTED = "unrestricted"
    A_TRANSITIVE = "a-transitive"
    EXCLUSIVE = "exclusive"


class AttachmentManager:
    """The attachment graph and its closure algebra.

    Edges are directed at the API level (``attach(a, b)`` reads "a is
    attached to b") because the EXCLUSIVE rule constrains the *source*
    of an edge, but closures always treat edges as undirected: objects
    that must stay together form a weakly connected component.

    Every edge carries a context tag: ``GLOBAL_CONTEXT`` (``None``) for
    plain attachments or an alliance id for alliance-scoped ones.
    """

    def __init__(self, mode: AttachmentMode = AttachmentMode.UNRESTRICTED):
        self.mode = mode
        #: adjacency: object id -> set of (neighbor id, context) pairs.
        self._adjacency: Dict[int, Set[Tuple[int, Optional[int]]]] = {}
        #: outgoing attachment (for EXCLUSIVE bookkeeping): src -> dst.
        self._attached_to: Dict[int, int] = {}
        #: id -> object, for returning object sets from closures.
        self._objects: Dict[int, DistributedObject] = {}
        #: Count of attach calls ignored by the EXCLUSIVE rule.
        self.ignored_attachments = 0

    # -- mutation ----------------------------------------------------------------

    def attach(
        self,
        a: DistributedObject,
        b: DistributedObject,
        context: Optional[int] = GLOBAL_CONTEXT,
    ) -> bool:
        """Attach ``a`` to ``b`` in the given context.

        Returns True if the attachment took effect, False if it was
        ignored (only possible in EXCLUSIVE mode).  Re-attaching an
        existing edge is idempotent.
        """
        if a is b or a.object_id == b.object_id:
            raise AttachmentError(f"cannot attach {a.name} to itself")

        if self.mode is AttachmentMode.EXCLUSIVE:
            existing = self._attached_to.get(a.object_id)
            if existing is not None and existing != b.object_id:
                # "All additional attachments for this object are
                # ignored" — first come, first served.
                self.ignored_attachments += 1
                return False

        self._objects[a.object_id] = a
        self._objects[b.object_id] = b
        self._adjacency.setdefault(a.object_id, set()).add((b.object_id, context))
        self._adjacency.setdefault(b.object_id, set()).add((a.object_id, context))
        self._attached_to[a.object_id] = b.object_id
        return True

    def detach(
        self,
        a: DistributedObject,
        b: DistributedObject,
        context: Optional[int] = GLOBAL_CONTEXT,
    ) -> bool:
        """Remove the a–b attachment in ``context``; True if it existed."""
        removed = False
        edges_a = self._adjacency.get(a.object_id, set())
        edges_b = self._adjacency.get(b.object_id, set())
        if (b.object_id, context) in edges_a:
            edges_a.discard((b.object_id, context))
            edges_b.discard((a.object_id, context))
            removed = True
        if removed and self._attached_to.get(a.object_id) == b.object_id:
            # Only clear the exclusive slot if no other context still
            # links a to b.
            if not any(nbr == b.object_id for nbr, _ in edges_a):
                del self._attached_to[a.object_id]
        return removed

    def detach_all(self, obj: DistributedObject) -> int:
        """Remove every attachment involving ``obj``; returns the count."""
        edges = self._adjacency.get(obj.object_id, set())
        count = len(edges)
        for nbr, context in list(edges):
            self._adjacency[nbr].discard((obj.object_id, context))
            if self._attached_to.get(nbr) == obj.object_id and not any(
                n == obj.object_id for n, _ in self._adjacency[nbr]
            ):
                del self._attached_to[nbr]
        self._adjacency[obj.object_id] = set()
        self._attached_to.pop(obj.object_id, None)
        return count

    # -- queries ------------------------------------------------------------------

    def neighbors(
        self, obj: DistributedObject, context: Optional[int] = None
    ) -> List[DistributedObject]:
        """Directly attached partners; filtered to ``context`` if given.

        With ``context=None`` *all* edges count (unrestricted view).
        """
        out = []
        for nbr, ctx in sorted(self._adjacency.get(obj.object_id, set())):
            if context is None or ctx == context:
                out.append(self._objects[nbr])
        return out

    def edges_of(
        self, obj: DistributedObject
    ) -> List[Tuple[int, Optional[int]]]:
        """All (neighbor id, context) pairs incident to ``obj``.

        Deterministically ordered; ``GLOBAL_CONTEXT`` edges sort before
        alliance-scoped ones.  This is the raw edge view the content
        hashes of :mod:`repro.versioning.diff` serialize.
        """
        return sorted(
            self._adjacency.get(obj.object_id, set()),
            key=lambda e: (e[0], -1 if e[1] is None else e[1]),
        )

    def is_attached(self, a: DistributedObject, b: DistributedObject) -> bool:
        """True if any edge (any context) links a and b directly."""
        return any(
            nbr == b.object_id for nbr, _ in self._adjacency.get(a.object_id, set())
        )

    def edge_count(self) -> int:
        """Number of undirected (pair, context) edges in the graph."""
        total = sum(len(edges) for edges in self._adjacency.values())
        return total // 2

    def closure(
        self,
        obj: DistributedObject,
        context: Optional[int] = None,
    ) -> List[DistributedObject]:
        """The set of objects that must migrate together with ``obj``.

        Parameters
        ----------
        obj:
            The object a migration primitive was invoked on.
        context:
            * ``None`` — unrestricted semantics: follow every edge
              (this is also what EXCLUSIVE mode uses; exclusivity
              already bounded the graph at attach time).
            * an alliance id — A-transitive semantics: follow only
              edges tagged with that alliance (§3.4).

        Returns the closure *including* ``obj`` itself, ordered by
        object id for determinism.
        """
        restrict = context is not None and self.mode is AttachmentMode.A_TRANSITIVE
        seen: Set[int] = {obj.object_id}
        frontier = deque([obj.object_id])
        while frontier:
            current = frontier.popleft()
            for nbr, ctx in self._adjacency.get(current, set()):
                if restrict and ctx != context:
                    continue
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        members = [self._objects.get(oid, obj if oid == obj.object_id else None)
                   for oid in sorted(seen)]
        # `obj` may never have been attached to anything; make sure it
        # is present and non-None.
        result = [m for m in members if m is not None]
        if obj not in result:
            result.append(obj)
            result.sort(key=lambda o: o.object_id)
        return result

    def components(self) -> List[List[DistributedObject]]:
        """All weakly connected components (unrestricted view)."""
        seen: Set[int] = set()
        out: List[List[DistributedObject]] = []
        for oid in sorted(self._adjacency):
            if oid in seen or not self._adjacency[oid]:
                continue
            comp = self.closure(self._objects[oid])
            seen.update(o.object_id for o in comp)
            out.append(comp)
        return out

    def __repr__(self) -> str:
        return (
            f"<AttachmentManager mode={self.mode.value} "
            f"edges={self.edge_count()} ignored={self.ignored_attachments}>"
        )
