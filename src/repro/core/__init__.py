"""The paper's contribution: migration control for non-monolithic systems.

* linguistic primitives and move/visit scopes (:mod:`.primitives`)
* move-blocks and their accounting (:mod:`.moveblock`)
* the five migration policies (:mod:`.policies`)
* attachments with unrestricted / A-transitive / exclusive closure
  semantics (:mod:`.attachment`)
* alliances — explicit cooperation contexts (:mod:`.alliance`)
* the §3.2 analytic cost model (:mod:`.costmodel`)
"""

from repro.core.alliance import Alliance, AllianceManager
from repro.core.attachment import (
    GLOBAL_CONTEXT,
    AttachmentManager,
    AttachmentMode,
)
from repro.core.costmodel import (
    CostParameters,
    cost_conventional_worst_case,
    cost_no_migration,
    cost_placement_concurrent,
    migration_break_even_clients,
    placement_advantage,
)
from repro.core.distribution import (
    AnchorToMember,
    CollocateMembers,
    DistributionPolicy,
    SpreadMembers,
)
from repro.core.gom import OperationDeclaration, OperationOutcome
from repro.core.locking import LeaseSweeper, LockManager
from repro.core.moveblock import MoveBlock
from repro.core.policies import (
    POLICIES,
    ComparingNodes,
    ComparingReinstantiation,
    ConventionalMigration,
    MigrationPolicy,
    SedentaryPolicy,
    ThrashingGuard,
    TransientPlacement,
    make_policy,
)
from repro.core.primitives import MigrationPrimitives, MoveScope, VisitScope
from repro.core.proxy import Proxy, ProxyTable

__all__ = [
    "Alliance",
    "AllianceManager",
    "AnchorToMember",
    "AttachmentManager",
    "AttachmentMode",
    "CollocateMembers",
    "ComparingNodes",
    "ComparingReinstantiation",
    "ConventionalMigration",
    "CostParameters",
    "DistributionPolicy",
    "GLOBAL_CONTEXT",
    "LeaseSweeper",
    "LockManager",
    "MigrationPolicy",
    "MigrationPrimitives",
    "MoveBlock",
    "MoveScope",
    "OperationDeclaration",
    "OperationOutcome",
    "POLICIES",
    "Proxy",
    "ProxyTable",
    "SedentaryPolicy",
    "SpreadMembers",
    "ThrashingGuard",
    "TransientPlacement",
    "VisitScope",
    "cost_conventional_worst_case",
    "cost_no_migration",
    "cost_placement_concurrent",
    "make_policy",
    "migration_break_even_clients",
    "placement_advantage",
]
