"""Alliances: explicit cooperation contexts between objects (§3.4).

An alliance is a dynamic relationship among a set of cooperating
objects.  It makes the *cooperation context* explicit, which lets the
run-time system scope attachment transitivity: a migration primitive is
invoked *in* an alliance, and the working set it drags along is the
attachment closure restricted to that alliance's edges (A-transitive
attachment).  Objects may belong to several alliances at once — that is
precisely the overlap situation the restriction is designed for.

This module implements alliance membership and scoped attachment; the
closure algebra itself lives in :mod:`repro.core.attachment`.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional, Set

from repro.errors import AllianceError
from repro.core.attachment import AttachmentManager, AttachmentMode
from repro.runtime.objects import DistributedObject


class Alliance:
    """A named cooperation context with a member set.

    Created via :meth:`AllianceManager.create`; do not instantiate
    directly (the manager owns id allocation and the attachment graph).
    """

    def __init__(
        self, alliance_id: int, name: str, attachments: AttachmentManager
    ):
        self.alliance_id = alliance_id
        self.name = name or f"alliance-{alliance_id}"
        self._attachments = attachments
        self._members: Dict[int, DistributedObject] = {}
        #: When true, the alliance enforces its cooperation policy:
        #: interactions in this alliance's context are restricted "to
        #: those that contribute to the target of the cooperation"
        #: (§3.4) — i.e. both parties must be members.
        self.restrict_interactions: bool = False

    # -- membership -------------------------------------------------------------

    @property
    def members(self) -> List[DistributedObject]:
        """Current members, ordered by object id."""
        return [self._members[k] for k in sorted(self._members)]

    def __contains__(self, obj: DistributedObject) -> bool:
        return obj.object_id in self._members

    def __len__(self) -> int:
        return len(self._members)

    def admit(self, obj: DistributedObject) -> None:
        """Add an object to the alliance (idempotent)."""
        self._members[obj.object_id] = obj

    def expel(self, obj: DistributedObject) -> None:
        """Remove a member and its alliance-scoped attachments."""
        if obj.object_id not in self._members:
            raise AllianceError(f"{obj.name} is not a member of {self.name}")
        for partner in self.partners_of(obj):
            self._attachments.detach(obj, partner, context=self.alliance_id)
            self._attachments.detach(partner, obj, context=self.alliance_id)
        del self._members[obj.object_id]

    # -- scoped attachment ---------------------------------------------------------

    def attach(self, a: DistributedObject, b: DistributedObject) -> bool:
        """Attach two members within this alliance's context.

        Both objects must already be members — an alliance can only
        define cooperation among its own population.
        """
        for obj in (a, b):
            if obj.object_id not in self._members:
                raise AllianceError(
                    f"{obj.name} is not a member of {self.name}; "
                    "admit() it before attaching"
                )
        return self._attachments.attach(a, b, context=self.alliance_id)

    def detach(self, a: DistributedObject, b: DistributedObject) -> bool:
        """Remove an alliance-scoped attachment."""
        return self._attachments.detach(a, b, context=self.alliance_id)

    def partners_of(self, obj: DistributedObject) -> List[DistributedObject]:
        """Members directly attached to ``obj`` within this alliance."""
        return self._attachments.neighbors(obj, context=self.alliance_id)

    def working_set(self, obj: DistributedObject) -> List[DistributedObject]:
        """The A-transitive closure of ``obj`` within this alliance.

        This is the set a migration invoked in this alliance drags
        along (§3.4): attachments of *other* alliances do not extend it.
        """
        return self._attachments.closure(obj, context=self.alliance_id)

    # -- cooperation policy (§3.4) -------------------------------------------------

    def permits(
        self, caller: DistributedObject, callee: DistributedObject
    ) -> bool:
        """Whether the alliance's cooperation policy allows this
        interaction.

        Unrestricted alliances (the default) allow everything; a
        restricting alliance allows only member-to-member interactions.
        """
        if not self.restrict_interactions:
            return True
        return caller in self and callee in self

    def check_interaction(
        self, caller: DistributedObject, callee: DistributedObject
    ) -> None:
        """Raise :class:`AllianceError` on a forbidden interaction."""
        if not self.permits(caller, callee):
            raise AllianceError(
                f"{self.name} restricts interactions to its members: "
                f"{caller.name} -> {callee.name} is outside the "
                "cooperation context"
            )

    def __repr__(self) -> str:
        return f"<Alliance {self.name} members={len(self._members)}>"


class AllianceManager:
    """Creates alliances and owns the shared attachment graph."""

    def __init__(self, attachments: Optional[AttachmentManager] = None):
        self.attachments = attachments or AttachmentManager(
            AttachmentMode.A_TRANSITIVE
        )
        self._alliances: Dict[int, Alliance] = {}
        self._ids = count(1)

    def create(self, name: str = "") -> Alliance:
        """Create a new, empty alliance."""
        alliance_id = next(self._ids)
        alliance = Alliance(alliance_id, name, self.attachments)
        self._alliances[alliance_id] = alliance
        return alliance

    def get(self, alliance_id: int) -> Alliance:
        """Look up an alliance by id."""
        try:
            return self._alliances[alliance_id]
        except KeyError:
            raise AllianceError(f"no alliance with id {alliance_id}") from None

    @property
    def alliances(self) -> List[Alliance]:
        """All alliances, by id."""
        return [self._alliances[k] for k in sorted(self._alliances)]

    def alliances_of(self, obj: DistributedObject) -> List[Alliance]:
        """Every alliance the object belongs to."""
        return [a for a in self.alliances if obj in a]

    def __repr__(self) -> str:
        return f"<AllianceManager alliances={len(self._alliances)}>"
