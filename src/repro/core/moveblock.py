"""Move-blocks: the unit of migration intent (§2.3).

A move-block is the span between a ``move()``/``visit()`` primitive and
its ``end``: "the programmer tells the system that the cost to migrate
the named object is less than the cost to use the object remotely
during the validity of the move primitive".  The block is therefore
also the accounting unit of the paper's metric — each block's migration
cost is distributed evenly over the invocations it performed (§4.2.1).
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, List, Optional

from repro.runtime.objects import DistributedObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.alliance import Alliance

_block_ids = count(1)


class MoveBlock:
    """One move-block instance executed by a client.

    Attributes
    ----------
    client_node:
        Node the issuing client resides on (the move target).
    target:
        The object the move primitive names.
    alliance:
        The alliance the primitive was invoked in, if any — this is
        what scopes A-transitive attachment (§3.4).
    granted:
        Whether the move request resulted in a migration towards the
        client (False = the place-policy returned "locked", or a
        comparing policy decided against moving).
    migration_cost:
        Wall-clock cost of the block's move phase: move-request
        message latency plus migration time (0 for rejected requests
        beyond the request message itself).
    locked_objects:
        Objects this block holds place-policy locks on (released at
        ``end``).
    """

    __slots__ = (
        "block_id",
        "client_node",
        "target",
        "alliance",
        "started_at",
        "ended_at",
        "granted",
        "migration_cost",
        "moved_objects",
        "call_durations",
        "locked_objects",
    )

    def __init__(
        self,
        client_node: int,
        target: DistributedObject,
        alliance: Optional["Alliance"] = None,
    ):
        self.block_id = next(_block_ids)
        self.client_node = client_node
        self.target = target
        self.alliance = alliance
        self.started_at: Optional[float] = None
        self.ended_at: Optional[float] = None
        self.granted: bool = False
        self.migration_cost: float = 0.0
        self.moved_objects: int = 0
        self.call_durations: List[float] = []
        self.locked_objects: List[DistributedObject] = []

    # -- accounting --------------------------------------------------------------

    @property
    def call_count(self) -> int:
        """Invocations performed inside the block so far."""
        return len(self.call_durations)

    @property
    def total_call_time(self) -> float:
        """Sum of the durations of the block's invocations."""
        return sum(self.call_durations)

    @property
    def ended(self) -> bool:
        """True once ``end`` was issued."""
        return self.ended_at is not None

    def record_call(self, duration: float) -> None:
        """Record one invocation's caller-observed duration."""
        self.call_durations.append(float(duration))

    def per_call_observations(self) -> List[float]:
        """The paper's per-call metric stream for this block.

        Each observation is the call's duration plus the block's
        migration cost "evenly distributed to the invocations belonging
        to that migration" (§4.2.1).  Empty-call blocks contribute no
        observations; their migration cost is surfaced separately by
        the metrics collector so nothing is silently dropped.
        """
        n = self.call_count
        if n == 0:
            return []
        share = self.migration_cost / n
        return [d + share for d in self.call_durations]

    def __repr__(self) -> str:
        state = "ended" if self.ended else "open"
        return (
            f"<MoveBlock #{self.block_id} {state} client@{self.client_node} "
            f"target={self.target.name} calls={self.call_count} "
            f"granted={self.granted}>"
        )
