"""Dynamic placement: "comparing the nodes" (§3.3, §4.3).

Between the aggressive conventional move and the conservative place-
policy lies a continuum of policies that record information about the
current *users* of an object.  This one is an extension of the place-
policy (§3.3 frames both dynamic strategies that way): it keeps, per
object, the number of *open* move-requests per node — move increments,
end decrements — and "tries to keep objects always at those nodes from
where the most move-requests have been issued":

* a locked object stays locked: conflicting requests are recorded and
  rejected exactly as under conservative placement;
* a *free* object is granted to the requester only if the requester's
  node now holds at least as many open requests as every other node.
  A minority requester is turned down even though the object is free —
  the object is more valuable where more users wait.  This is how "a
  conflicting move-request has initially no effect on the location of
  the requested object but may lead to a migration at some point later
  if further move-requests are issued at the same node" (§4.3).

Per §4.3 the bookkeeping overhead (shipping the per-user data with the
object, forwarding move/end-requests to it) is deliberately **not**
charged: "only the benefits are measured to keep the results clearly
comparable to the simple policies".  Even so, the gains turn out
marginal (Fig 14).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Generator, Optional

from repro.core.attachment import AttachmentManager
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem


class ComparingNodes(MigrationPolicy):
    """Place-policy whose grant decision follows the open-request counts."""

    name = "comparing"

    def __init__(
        self,
        system: DistributedSystem,
        attachments: Optional[AttachmentManager] = None,
        locks: Optional[LockManager] = None,
        charge_overhead: bool = False,
        record_transfer_time: float = 0.25,
    ):
        """``charge_overhead`` switches on the §3.3 costs the paper's
        evaluation deliberately neglects: end-requests are forwarded to
        the object's location (one remote message when the ender is
        elsewhere), and every migration ships the per-user bookkeeping
        with the object (``record_transfer_time`` extra transfer time
        per open move-request record).  §4.3 predicts the dynamic
        policies' "minor gains" disappear under these costs —
        ``bench_ablation_overhead`` confirms it."""
        super().__init__(system, attachments)
        self.locks = locks or LockManager()
        if record_transfer_time < 0:
            raise ValueError(
                f"record_transfer_time must be >= 0, got {record_transfer_time}"
            )
        self.charge_overhead = charge_overhead
        self.record_transfer_time = record_transfer_time
        #: Remote messages spent forwarding end-requests (overhead mode).
        self.overhead_messages = 0
        #: object id -> node id -> open move-request count.
        self._open: Dict[int, Dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    # -- bookkeeping ---------------------------------------------------------------

    def open_requests(self, obj: DistributedObject) -> Dict[int, int]:
        """Snapshot of the per-node open-request counts for ``obj``."""
        return {n: c for n, c in self._open[obj.object_id].items() if c > 0}

    def _register(self, block: MoveBlock) -> None:
        self._open[block.target.object_id][block.client_node] += 1

    def _deregister(self, block: MoveBlock) -> None:
        counts = self._open[block.target.object_id]
        counts[block.client_node] = max(0, counts[block.client_node] - 1)

    def _requester_has_plurality(
        self, obj: DistributedObject, node: int
    ) -> bool:
        """Does ``node`` hold at least as many open requests as any
        other node?  Ties favor the requester (placement-like)."""
        counts = self._open[obj.object_id]
        mine = counts[node]
        return all(c <= mine for n, c in counts.items() if n != node)

    def _record_payload(self, obj: DistributedObject) -> float:
        """Extra transfer time for the per-user records (§3.3 overhead).

        One record per open move-request ("it records move- and
        end-requests and the nodes where they have occurred", §4.3), so
        the payload grows with the number of concurrent users — which
        is exactly why §3.3 calls such policies "clearly unpromising
        for small objects".
        """
        if not self.charge_overhead:
            return 0.0
        records = sum(self._open[obj.object_id].values())
        return self.record_transfer_time * records

    # -- the protocol -----------------------------------------------------------------

    def move(self, block: MoveBlock) -> Generator:
        env = self.system.env
        block.started_at = env.now
        self.moves_requested += 1

        yield from self._send_move_request(block)
        self._register(block)

        target = block.target
        if self.locks.is_locked(target):
            # Same as conservative placement: a held object stays put.
            block.granted = False
            block.migration_cost = env.now - block.started_at
            self.moves_rejected += 1
            self._trace_decision(
                block, "rejected", holder=target.lock_holder.block_id
            )
            return None

        if not self._requester_has_plurality(target, block.client_node):
            # Free, but more users wait elsewhere: keep it where it is.
            block.granted = target.is_resident_on(block.client_node)
            block.migration_cost = env.now - block.started_at
            if not block.granted:
                self.moves_rejected += 1
            self._trace_decision(
                block, "kept", at=target.node_id, granted=block.granted
            )
            return None

        # Grant: lock first (atomic with the checks), then transfer.
        working_set = self.working_set(block)
        movable = [obj for obj in working_set if not self.locks.is_locked(obj)]
        self.locks.lock_all(movable, block)

        outcome = yield from self.system.migrations.migrate(
            movable,
            block.client_node,
            extra_time=self._record_payload(target),
        )

        block.granted = True
        block.moved_objects = outcome.moved_count
        block.migration_cost = env.now - block.started_at
        self.moves_granted += 1
        self._trace_decision(block, "granted", moved=outcome.moved_count)
        return outcome

    def end(self, block: MoveBlock) -> Generator:
        """Release locks and drop the open-request registration.

        The registration update must reach the object's location; the
        forwarding cost is neglected by default per §4.3 ("only the
        benefits are measured") and charged — one remote message,
        attributed to the block — in overhead mode.
        """
        if self.charge_overhead:
            target = block.target
            if target.node_id != block.client_node:
                start = self.system.env.now
                yield from self.system.network.transmit(
                    block.client_node, target.node_id
                )
                self.overhead_messages += 1
                block.migration_cost += self.system.env.now - start
        self.locks.release_block(block)
        self._deregister(block)
        block.ended_at = self.system.env.now
        self._trace_decision(block, "ended")
        return None
