"""The no-migration baseline.

"The place-policy was compared to the conventional migrate-policy and
to a system that only consists of sedentary objects" (§4.2).  Under
this policy the move primitive is a no-op: no request message is sent,
nothing migrates, and every invocation is served wherever the object
was initially placed.  With C clients on D nodes and uniform placement
this yields the paper's flat baseline — e.g. mean 4/3 per call for
D = 3 (Fig 8: a call and a result message, remote with probability 2/3).
"""

from __future__ import annotations

from typing import Generator

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy


class SedentaryPolicy(MigrationPolicy):
    """Objects never move; move/end are free no-ops."""

    name = "sedentary"

    def move(self, block: MoveBlock) -> Generator:
        block.started_at = self.system.env.now
        block.granted = False
        block.migration_cost = 0.0
        self.moves_requested += 1
        self._trace_decision(block, "noop")
        return None
        yield  # pragma: no cover - makes this a generator function
