"""Thrashing avoidance by transient fixing (§2.2).

The paper's primitive inventory notes that fixing an object is "mostly
the consequence of run-time decisions, e.g., to avoid thrashing".  This
module supplies that run-time decision as a *wrapper* around any base
policy: when an object has migrated more than ``max_migrations`` times
within the last ``window`` time units, the guard transiently pins it —
further move requests are turned down (the mover works remotely, as
under a placement rejection) until the object has cooled down.

The guard composes: ``ThrashingGuard(ConventionalMigration(...))`` caps
the conventional policy's hot-spot degradation (see
``benchmarks/bench_ablation_guard.py``), while
``ThrashingGuard(TransientPlacement(...))`` barely changes anything —
placement rarely thrashes in the first place.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Generator, Optional

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.runtime.objects import DistributedObject


class ThrashingGuard(MigrationPolicy):
    """Wraps a policy, transiently fixing objects that migrate too often.

    Parameters
    ----------
    inner:
        The base policy whose grants are being rate-limited.
    max_migrations:
        Grants allowed inside the sliding window before the object is
        considered thrashing.
    window:
        Width of the sliding window (simulated time units).
    cooldown:
        How long a thrashing object stays pinned after the last grant.
    """

    name = "guarded"

    def __init__(
        self,
        inner: MigrationPolicy,
        max_migrations: int = 3,
        window: float = 60.0,
        cooldown: float = 60.0,
    ):
        super().__init__(inner.system, inner.attachments)
        if max_migrations < 1:
            raise ValueError(
                f"max_migrations must be >= 1, got {max_migrations}"
            )
        if window <= 0 or cooldown <= 0:
            raise ValueError("window and cooldown must be positive")
        self.inner = inner
        self.max_migrations = max_migrations
        self.window = window
        self.cooldown = cooldown
        self._grants: Dict[int, Deque[float]] = defaultdict(deque)
        self._pinned_until: Dict[int, float] = {}
        #: Move requests turned down by the guard (not by the inner
        #: policy).
        self.guard_rejections = 0

    # -- thrash detection ----------------------------------------------------------

    def is_pinned(self, obj: DistributedObject) -> bool:
        """Whether the object is currently in its cooldown."""
        until = self._pinned_until.get(obj.object_id)
        return until is not None and self.system.env.now < until

    def _prune(self, obj: DistributedObject) -> None:
        horizon = self.system.env.now - self.window
        grants = self._grants[obj.object_id]
        while grants and grants[0] < horizon:
            grants.popleft()

    def _note_grant(self, obj: DistributedObject) -> None:
        self._prune(obj)
        grants = self._grants[obj.object_id]
        grants.append(self.system.env.now)
        if len(grants) > self.max_migrations:
            self._pinned_until[obj.object_id] = (
                self.system.env.now + self.cooldown
            )
            if self.system.tracer.enabled:
                self.system.tracer.emit(
                    self.system.env.now,
                    "guard.pinned",
                    object_id=obj.object_id,
                    until=self._pinned_until[obj.object_id],
                )

    # -- the policy interface -----------------------------------------------------------

    def move(self, block: MoveBlock) -> Generator:
        env = self.system.env
        target = block.target
        self.moves_requested += 1

        if self.is_pinned(target):
            # The object is transiently fixed: pay the request message,
            # get turned down, work remotely (like a placement reject).
            block.started_at = env.now
            yield from self._send_move_request(block)
            block.granted = target.is_resident_on(block.client_node)
            block.migration_cost = env.now - block.started_at
            self.guard_rejections += 1
            self._trace_decision(block, "guard-rejected")
            return None

        outcome = yield from self.inner.move(block)
        if block.granted and block.moved_objects:
            self._note_grant(target)
        return outcome

    def end(self, block: MoveBlock) -> Generator:
        yield from self.inner.end(block)
        return None

    def stats(self) -> dict:
        merged = self.inner.stats()
        merged.update(
            {
                "policy": f"guarded({self.inner.name})",
                "guard_rejections": self.guard_rejections,
                "moves_requested": self.moves_requested,
            }
        )
        return merged
