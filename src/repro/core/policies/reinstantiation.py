"""Dynamic placement: "comparing and reinstantiation" (§4.3).

Treats move-requests exactly like :class:`ComparingNodes`, but "in
addition objects may not only be migrated on move-requests but also on
end-requests if an end-request leads to a situation that some other
node holds a clear majority on open move-requests".

When a block's end releases an object and some other node holds a
clear majority of open requests (strictly more than the object's
current node, by at least ``majority_margin``), the object migrates
there immediately — the waiting users' remaining calls turn local
without anyone having to re-issue a move.  The transfer is *system-
initiated*: the ending client does not wait for it, and its cost is
accounted in ``system_migration_cost``, which the metrics collector
folds into the overall communication time.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.attachment import AttachmentManager
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.comparing import ComparingNodes
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem


class ComparingReinstantiation(ComparingNodes):
    """Comparing-the-nodes plus end-request re-migration."""

    name = "reinstantiation"

    def __init__(
        self,
        system: DistributedSystem,
        attachments: Optional[AttachmentManager] = None,
        locks: Optional[LockManager] = None,
        majority_margin: int = 3,
        charge_overhead: bool = False,
        record_transfer_time: float = 0.25,
    ):
        """``majority_margin``: how many more open requests another node
        must hold beyond the current node's count to trigger an
        end-time migration — the paper's "clear majority".  The default
        of 3 was calibrated so the policy reproduces Fig 14's "minor
        gains over conservative placement" (smaller margins re-migrate
        so eagerly that transit blocking erases the benefit; see
        benchmarks/bench_ablation_margin.py).  ``charge_overhead`` /
        ``record_transfer_time`` as in :class:`ComparingNodes`."""
        super().__init__(
            system,
            attachments,
            locks,
            charge_overhead=charge_overhead,
            record_transfer_time=record_transfer_time,
        )
        if majority_margin < 1:
            raise ValueError(
                f"majority_margin must be >= 1, got {majority_margin}"
            )
        self.majority_margin = majority_margin

    def _majority_node(self, obj: DistributedObject) -> Optional[int]:
        """Node holding a clear majority of open requests, if any."""
        counts = self._open[obj.object_id]
        current = obj.node_id
        best_node, best_count = None, 0
        for node in sorted(counts):
            if counts[node] > best_count:
                best_node, best_count = node, counts[node]
        if best_node is None or best_node == current:
            return None
        if best_count >= counts[current] + self.majority_margin:
            return best_node
        return None

    def _closure_of(self, obj: DistributedObject):
        if self.attachments is None:
            return [obj]
        return self.attachments.closure(obj)

    def _reinstantiate(self, obj: DistributedObject, to_node: int) -> Generator:
        """Detached process: migrate a freed object to the majority node."""
        start = self.system.env.now
        movable = [
            o for o in self._closure_of(obj) if not self.locks.is_locked(o)
        ]
        outcome = yield from self.system.migrations.migrate(
            movable, to_node, extra_time=self._record_payload(obj)
        )
        self.system_migrations += 1
        self.system_migration_cost += self.system.env.now - start
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                self.system.env.now,
                "move.reinstantiated",
                object_id=obj.object_id,
                to=to_node,
                moved=outcome.moved_count,
            )

    def end(self, block: MoveBlock) -> Generator:
        if self.charge_overhead:
            target = block.target
            if target.node_id != block.client_node:
                start = self.system.env.now
                yield from self.system.network.transmit(
                    block.client_node, target.node_id
                )
                self.overhead_messages += 1
                block.migration_cost += self.system.env.now - start
        self.locks.release_block(block)
        self._deregister(block)
        block.ended_at = self.system.env.now

        target = block.target
        best = None
        if not self.locks.is_locked(target) and not target.in_transit:
            best = self._majority_node(target)
        if best is not None:
            # Fire-and-forget: the ending client does not wait for the
            # system-initiated transfer.
            self.system.env.process(
                self._reinstantiate(target, best),
                name=f"reinstantiate-{target.name}",
            )
        self._trace_decision(block, "ended", reinstantiated=best is not None)
        return None
        yield  # pragma: no cover - makes this a generator function
