"""Migration policies: the interpretations of move/end requests."""

from repro.core.policies.base import MigrationPolicy
from repro.core.policies.comparing import ComparingNodes
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.guard import ThrashingGuard
from repro.core.policies.placement import TransientPlacement
from repro.core.policies.registry import GUARD_PREFIX, POLICIES, make_policy
from repro.core.policies.reinstantiation import ComparingReinstantiation
from repro.core.policies.sedentary import SedentaryPolicy

__all__ = [
    "ComparingNodes",
    "ComparingReinstantiation",
    "ConventionalMigration",
    "GUARD_PREFIX",
    "MigrationPolicy",
    "POLICIES",
    "SedentaryPolicy",
    "ThrashingGuard",
    "TransientPlacement",
    "make_policy",
]
