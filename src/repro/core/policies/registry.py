"""Policy registry: build migration policies by name.

Experiment configs refer to policies by their string names (the same
labels the paper's figure legends use); this module maps names to
constructors.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.core.attachment import AttachmentManager
from repro.core.policies.base import MigrationPolicy
from repro.core.policies.comparing import ComparingNodes
from repro.core.policies.conventional import ConventionalMigration
from repro.core.policies.guard import ThrashingGuard
from repro.core.policies.placement import TransientPlacement
from repro.core.policies.reinstantiation import ComparingReinstantiation
from repro.core.policies.sedentary import SedentaryPolicy
from repro.runtime.system import DistributedSystem

#: All built-in base policies by name.
POLICIES: Dict[str, Type[MigrationPolicy]] = {
    SedentaryPolicy.name: SedentaryPolicy,
    ConventionalMigration.name: ConventionalMigration,
    TransientPlacement.name: TransientPlacement,
    ComparingNodes.name: ComparingNodes,
    ComparingReinstantiation.name: ComparingReinstantiation,
}

#: Prefix selecting the §2.2 thrashing guard around a base policy,
#: e.g. ``"guarded:migration"``.
GUARD_PREFIX = "guarded:"


def make_policy(
    name: str,
    system: DistributedSystem,
    attachments: Optional[AttachmentManager] = None,
) -> MigrationPolicy:
    """Instantiate a migration policy by registry name.

    ``"guarded:<base>"`` wraps the base policy in a
    :class:`~repro.core.policies.guard.ThrashingGuard` with its default
    calibration.
    """
    if name.startswith(GUARD_PREFIX):
        inner = make_policy(
            name[len(GUARD_PREFIX):], system, attachments
        )
        return ThrashingGuard(inner)
    try:
        cls = POLICIES[name]
    except KeyError:
        guarded = [f"{GUARD_PREFIX}{n}" for n in sorted(POLICIES)]
        raise ValueError(
            f"unknown policy {name!r}; choose from "
            f"{sorted(POLICIES) + guarded}"
        ) from None
    return cls(system, attachments)
