"""Migration-policy interface.

"Basically, object migration is nothing else than a dumb tool. ...  not
the tool, but the policy with which the tool is controlled is the
central issue" (§2.2).  A policy decides what happens when a client's
move-block issues its ``move()`` request and its ``end`` request; the
mechanism (transfer, blocking, locking state) lives in the runtime.

The protocol per §3.1: a move request is forwarded to the current
location of the callee and *interpreted there* by the run-time system —
the policy is the interpreter.  Concrete policies:

======================  =====================================================
:class:`SedentaryPolicy`            no migration at all (baseline)
:class:`ConventionalMigration`      classic move(): always migrate
:class:`TransientPlacement`         §3.2 place-policy: first holder wins
:class:`ComparingNodes`             §3.3/§4.3: open-request majority decides
:class:`ComparingReinstantiation`   §4.3: also re-migrates on end-requests
======================  =====================================================
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generator, List, Optional

from repro.core.attachment import AttachmentManager
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.runtime.messages import MessageKind
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem
from repro.telemetry.spans import ERROR


class MigrationPolicy(ABC):
    """Strategy deciding how move/end requests are interpreted.

    Parameters
    ----------
    system:
        The distributed system the policy operates on.
    attachments:
        Optional attachment graph; when present, a granted move drags
        the attachment closure of the target (scoped by the block's
        alliance under A-transitive mode).
    """

    #: Registry name (set by subclasses).
    name: str = "abstract"

    def __init__(
        self,
        system: DistributedSystem,
        attachments: Optional[AttachmentManager] = None,
    ):
        self.system = system
        self.attachments = attachments
        # Aggregate accounting (read by the analysis layer).
        self.moves_requested = 0
        self.moves_granted = 0
        self.moves_rejected = 0
        #: Migrations initiated by the policy itself rather than by a
        #: block (comparing-and-reinstantiation does this on end).
        self.system_migrations = 0
        self.system_migration_cost = 0.0

    # -- working sets ------------------------------------------------------------

    def working_set(self, block: MoveBlock) -> List[DistributedObject]:
        """Objects a granted move for ``block`` would migrate.

        Without an attachment graph this is just the target.  With one,
        it is the attachment closure — restricted to the block's
        alliance context when the graph runs in A-transitive mode
        (§3.4), unrestricted otherwise.
        """
        target = block.target
        if self.attachments is None:
            return [target]
        context = (
            block.alliance.alliance_id if block.alliance is not None else None
        )
        return self.attachments.closure(target, context=context)

    # -- shared protocol steps ------------------------------------------------------

    def _send_move_request(self, block: MoveBlock) -> Generator:
        """Transmit the move request to the object's current location.

        One (possibly local) message, §3.1: "A move() request is as
        usual forwarded to current location of the object."  Returns
        the sampled latency.
        """
        obj = block.target
        telemetry = self.system.telemetry
        if telemetry.enabled:
            span = telemetry.start_span(
                "move.request",
                node=block.client_node,
                block=block.block_id,
                object=obj.name,
                dst=obj.node_id,
            )
            try:
                latency = yield from self.system.network.transmit(
                    block.client_node, obj.node_id
                )
            except BaseException as exc:
                telemetry.end_span(span, status=ERROR, error=type(exc).__name__)
                raise
            telemetry.end_span(span, latency=latency)
        else:
            latency = yield from self.system.network.transmit(
                block.client_node, obj.node_id
            )
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                self.system.env.now,
                MessageKind.MOVE_REQUEST.value,
                src=block.client_node,
                dst=obj.node_id,
                object_id=obj.object_id,
                block=block.block_id,
                latency=latency,
            )
        return latency

    def _start_move_span(self, block: MoveBlock):
        """Open the root ``move`` span for one move request (or None).

        Policies call this first thing in :meth:`move`; every exit path
        must pair it with :meth:`_end_move_span` so rejected and
        granted moves alike close their tree.
        """
        telemetry = self.system.telemetry
        if not telemetry.enabled:
            return None
        return telemetry.start_span(
            "move",
            node=block.client_node,
            block=block.block_id,
            object=block.target.name,
            policy=self.name,
        )

    def _end_move_span(self, span, outcome: str, **tags) -> None:
        """Close the root ``move`` span with its decision tag."""
        if span is not None:
            self.system.telemetry.end_span(span, outcome=outcome, **tags)

    def _trace_decision(self, block: MoveBlock, decision: str, **extra) -> None:
        if self.system.tracer.enabled:
            self.system.tracer.emit(
                self.system.env.now,
                f"move.{decision}",
                block=block.block_id,
                object_id=block.target.object_id,
                client_node=block.client_node,
                **extra,
            )

    # -- the policy interface ---------------------------------------------------------

    @abstractmethod
    def move(self, block: MoveBlock) -> Generator:
        """Process fragment executing the block's move request.

        Must set ``block.started_at``, ``block.granted`` and
        ``block.migration_cost`` (wall-clock time from request issue to
        grant/reject completion, §4.2.1's amortized migration cost).
        """

    def end(self, block: MoveBlock) -> Generator:
        """Process fragment executing the block's end request.

        The default is a free local operation that merely stamps the
        block; policies override to release locks or update counters.
        """
        block.ended_at = self.system.env.now
        return None
        yield  # pragma: no cover - makes this a generator function

    # -- introspection ------------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate counters for reports."""
        return {
            "policy": self.name,
            "moves_requested": self.moves_requested,
            "moves_granted": self.moves_granted,
            "moves_rejected": self.moves_rejected,
            "system_migrations": self.system_migrations,
            "system_migration_cost": self.system_migration_cost,
        }

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} requested={self.moves_requested} "
            f"granted={self.moves_granted}>"
        )
