"""Conventional (aggressive) migration: every move migrates.

The classic call-by-move semantics of Emerald/DOWL-style systems
(§2.3): the move request travels to the object's current location and
the object — together with the transitive closure of its attachments —
is transferred to the mover, no questions asked.  A concurrent user's
block simply loses the object mid-flight and continues remotely; if the
object is in transit when the request arrives, the request queues and
"steals" the object as soon as it lands.

This is the policy whose conflicts the paper shows to be destructive in
non-monolithic systems (Figs 8, 12, 16).
"""

from __future__ import annotations

from typing import Generator

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy


class ConventionalMigration(MigrationPolicy):
    """Always migrate the target (and its attachment closure)."""

    name = "migration"

    def move(self, block: MoveBlock) -> Generator:
        env = self.system.env
        block.started_at = env.now
        self.moves_requested += 1
        span = self._start_move_span(block)

        yield from self._send_move_request(block)

        if span is not None:
            telemetry = self.system.telemetry
            cspan = telemetry.start_span(
                "closure", node=block.target.node_id, object=block.target.name
            )
            working_set = self.working_set(block)
            telemetry.metrics.histogram("migration.closure_size").observe(
                len(working_set)
            )
            telemetry.end_span(cspan, size=len(working_set))
        else:
            working_set = self.working_set(block)
        outcome = yield from self.system.migrations.migrate(
            working_set, block.client_node
        )

        block.granted = True
        block.moved_objects = outcome.moved_count
        block.migration_cost = env.now - block.started_at
        self.moves_granted += 1
        self._end_move_span(span, "granted", moved=outcome.moved_count)
        self._trace_decision(block, "granted", moved=outcome.moved_count)
        return outcome

    # end() is inherited: for the conventional move there is nothing to
    # release — the object stays at the mover's node until somebody
    # else moves it away.
