"""Transient placement — the paper's place-policy (§3.2).

The move request is forwarded to the object's current location as
usual.  There the runtime decides *locally*:

* object unlocked → execute the move conventionally, transfer the
  object (and the unlocked part of its working set) to the caller, and
  **lock** everything that moved.  A locked object is sedentary until
  the owning block issues ``end``.
* object locked → return a "locked" indication.  The conflicting mover
  gets no migration; "the further calls at this node are forwarded to
  the object and the end-request is simply ignored" (§3.2).

Key property: no additional remote operations compared to conventional
migration — the lock decision and the end-request are local.  The
worked example of §3.2: with two concurrent movers the place-policy
costs M + (2N+1)·C against the conventional worst case 2M + (2N+2)·C.

With attachments, a granted move migrates only the *unlocked* members
of the working set: members another block currently holds stay where
they are ("conflicting move-requests will not lead to the migration of
the requested object and, consequently, also not to the migration of
objects attached to it", §4.4).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.attachment import AttachmentManager
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.runtime.system import DistributedSystem


class TransientPlacement(MigrationPolicy):
    """First-come-first-served placement with end-released locks."""

    name = "placement"

    def __init__(
        self,
        system: DistributedSystem,
        attachments: Optional[AttachmentManager] = None,
        locks: Optional[LockManager] = None,
    ):
        super().__init__(system, attachments)
        self.locks = locks or LockManager()

    def move(self, block: MoveBlock) -> Generator:
        env = self.system.env
        telemetry = self.system.telemetry
        block.started_at = env.now
        self.moves_requested += 1
        span = self._start_move_span(block)

        yield from self._send_move_request(block)

        target = block.target
        if self.locks.is_locked(target):
            # Conflicting move: "the conflicting move-request returns
            # an indication" — no transfer, the mover works remotely.
            block.granted = False
            block.migration_cost = env.now - block.started_at
            self.moves_rejected += 1
            holder = target.lock_holder.block_id
            if span is not None:
                # The "locked" indication is a zero-duration decision at
                # the object's node: an instant child in the trace.
                rejection = telemetry.start_span(
                    "place.locked",
                    node=target.node_id,
                    object=target.name,
                    holder=holder,
                )
                telemetry.end_span(rejection)
                telemetry.metrics.counter(
                    "migration.rejections", policy=self.name
                ).inc()
                telemetry.metrics.counter("locks.conflicts").inc()
                self._end_move_span(span, "rejected", holder=holder)
            self._trace_decision(block, "rejected", holder=holder)
            return None

        # Grant: lock first (the commit point — atomic with the check,
        # no yield in between), then transfer.  Working-set members
        # already held by other blocks are skipped, not stolen.
        if span is not None:
            cspan = telemetry.start_span(
                "closure", node=target.node_id, object=target.name
            )
            working_set = self.working_set(block)
            movable = [
                obj for obj in working_set if not self.locks.is_locked(obj)
            ]
            telemetry.metrics.histogram("migration.closure_size").observe(
                len(working_set)
            )
            telemetry.end_span(
                cspan, size=len(working_set), movable=len(movable)
            )
        else:
            working_set = self.working_set(block)
            movable = [
                obj for obj in working_set if not self.locks.is_locked(obj)
            ]
        self.locks.lock_all(movable, block)

        outcome = yield from self.system.migrations.migrate(
            movable, block.client_node
        )

        block.granted = True
        block.moved_objects = outcome.moved_count
        block.migration_cost = env.now - block.started_at
        self.moves_granted += 1
        self._end_move_span(
            span, "granted", moved=outcome.moved_count, locked=len(movable)
        )
        self._trace_decision(
            block,
            "granted",
            moved=outcome.moved_count,
            locked=len(movable),
        )
        return outcome

    def end(self, block: MoveBlock) -> Generator:
        """Release the block's locks.

        Always a *local* operation: for a granted block the locks live
        at the client's own node; for a rejected block "the end-request
        is simply ignored, as nothing has to be done" (§3.2).  Either
        way no message is charged.
        """
        released = self.locks.release_block(block)
        block.ended_at = self.system.env.now
        self._trace_decision(block, "ended", released=released)
        return None
        yield  # pragma: no cover - makes this a generator function
