"""Analytic cost model of §3.2.

Let C be the cost of one remote message, N the number of invocations a
move-block performs, and M the cost of migrating the object (M > C for
any non-trivial object).  A move-block is *sensible* when N·C > M — the
programmer promises the migration pays for itself.

For the two-concurrent-movers scenario of Fig 4 the paper derives:

* place-policy: the object moves once; the loser invokes remotely:
  ``M + (2N + 1)·C``
* conventional move, worst case (the second request arrives before the
  first mover performed any call): the object moves twice and one
  mover's N invocations happen remotely anyway:
  ``2M + (2N + 2)·C``

The place-policy is therefore strictly cheaper whenever M > C... in
fact whenever ``M + C > 0``.  These closed forms cross-check the
simulation (bench_costmodel) and power the break-even analytics.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostParameters:
    """The §3.2 cost constants.

    Attributes
    ----------
    remote_message_cost:
        C — mean cost of one remote message (normalized to 1 in §4).
    migration_cost:
        M — cost of migrating the object.
    calls_per_block:
        N — invocations inside one move-block.
    """

    remote_message_cost: float = 1.0
    migration_cost: float = 6.0
    calls_per_block: float = 8.0

    def __post_init__(self):
        if self.remote_message_cost < 0:
            raise ValueError("remote_message_cost must be >= 0")
        if self.migration_cost < 0:
            raise ValueError("migration_cost must be >= 0")
        if self.calls_per_block <= 0:
            raise ValueError("calls_per_block must be > 0")

    @property
    def is_sensible(self) -> bool:
        """The paper's sensibility condition for move-blocks: N·C > M."""
        return self.calls_per_block * self.remote_message_cost > self.migration_cost


def cost_no_migration(params: CostParameters, movers: int = 2) -> float:
    """Total cost of the scenario with sedentary objects.

    Every one of the ``movers`` blocks performs N remote invocations
    (call + result message each); nothing migrates.
    """
    c, n = params.remote_message_cost, params.calls_per_block
    return movers * 2 * n * c


def cost_placement_concurrent(params: CostParameters) -> float:
    """§3.2's place-policy cost for two concurrent movers.

    One migration; the winner's N calls are local, the loser's N calls
    are remote (2N messages), plus one move-request message:
    ``M + (2N + 1)·C``.
    """
    c, m, n = (
        params.remote_message_cost,
        params.migration_cost,
        params.calls_per_block,
    )
    return m + (2 * n + 1) * c


def cost_conventional_worst_case(params: CostParameters) -> float:
    """§3.2's conventional worst case for two concurrent movers.

    The second move-request arrives before the first mover performed
    any call: two migrations, one mover still ends up calling remotely:
    ``2M + (2N + 2)·C``.
    """
    c, m, n = (
        params.remote_message_cost,
        params.migration_cost,
        params.calls_per_block,
    )
    return 2 * m + (2 * n + 2) * c


def placement_advantage(params: CostParameters) -> float:
    """Worst-case saving of placement over conventional migration.

    ``(2M + (2N+2)C) − (M + (2N+1)C) = M + C`` — always positive.
    """
    return cost_conventional_worst_case(params) - cost_placement_concurrent(params)


def migration_break_even_clients(
    params: CostParameters,
    nodes: int,
) -> float:
    """First-order estimate of Fig 12's break-even client count.

    Compares the sedentary per-call cost against a simple conflict
    model for conventional migration: each additional concurrent
    client adds one expected object steal per block, costing the
    victim remote calls plus the extra migration.  The estimate
    deliberately stays coarse — the simulation gives the real curve —
    but it reproduces the right order of magnitude and the right
    monotonicity in N/M (the paper: "an increase in N/M will have an
    over-proportional effect on the break-even point").
    """
    c, m, n = (
        params.remote_message_cost,
        params.migration_cost,
        params.calls_per_block,
    )
    if nodes < 2:
        raise ValueError("need at least 2 nodes for a remote/local distinction")
    p_remote = 1.0 - 1.0 / nodes
    sedentary_per_call = 2 * c * p_remote
    # Conventional with no conflicts: amortized migration only.
    base_per_call = p_remote * m / n
    # Marginal conflict cost per extra client: a stolen block loses
    # local service for half its calls on average (they become remote)
    # and the thief's migration adds M amortized over the victim's N.
    conflict_per_client = (c * p_remote + m / (2 * n)) / n
    if conflict_per_client <= 0:
        return float("inf")
    return 1 + (sedentary_per_call - base_per_call) / conflict_per_client
