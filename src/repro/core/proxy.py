"""Proxy objects: the §3.1 system model made explicit.

"In distributed object-oriented systems, calls to objects are trapped,
linearized and forwarded to the current location of callee. ...  One
common mechanism for this is the use of proxy-objects that serve as
placeholders for remote objects" (§3.1, Fig 3).

A :class:`Proxy` is a node-local handle to a (possibly remote) object.
Invocations go through :meth:`Proxy.invoke`; migration-control requests
go through :meth:`Proxy.move` / :meth:`Proxy.end`, which — exactly as
Fig 3 shows — are *not* transformed into invocations but interpreted by
the policy at the callee's runtime.  The per-node :class:`ProxyTable`
hands out one proxy per (node, object) pair.

This layer is sugar over the invocation/migration services: the
simulation workloads drive the services directly for speed, while the
proxy API is what application-style code (the examples) uses.
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.moveblock import MoveBlock
from repro.core.policies.base import MigrationPolicy
from repro.runtime.objects import DistributedObject
from repro.runtime.system import DistributedSystem


class Proxy:
    """Node-local placeholder for a distributed object.

    Obtained from :class:`ProxyTable`; holds the local node id, so
    application code never has to thread "where am I" around.
    """

    __slots__ = ("system", "policy", "node_id", "target", "invocations")

    def __init__(
        self,
        system: DistributedSystem,
        policy: MigrationPolicy,
        node_id: int,
        target: DistributedObject,
    ):
        self.system = system
        self.policy = policy
        self.node_id = node_id
        self.target = target
        #: Invocations performed through this proxy.
        self.invocations = 0

    # -- plain calls ----------------------------------------------------------------

    def invoke(self, body=None) -> Generator:
        """Trap a call and forward it to the object's current location.

        Process fragment; returns an
        :class:`~repro.runtime.invocation.InvocationResult`.
        """
        self.invocations += 1
        result = yield from self.system.invocations.invoke(
            self.node_id, self.target, body=body
        )
        return result

    # -- migration control (interpreted at the callee, §3.1) -------------------------------

    def move(self, alliance=None) -> Generator:
        """Issue a move request; returns the open :class:`MoveBlock`.

        The request travels to the object's current location, where the
        installed policy interprets it (grant / reject / count — §3.1:
        "interpreted by the run-time system at the node of the callee").
        """
        block = MoveBlock(self.node_id, self.target, alliance=alliance)
        yield from self.policy.move(block)
        return block

    def end(self, block: MoveBlock) -> Generator:
        """Issue the end request for a block opened via :meth:`move`.

        The ownership check raises eagerly, at the call site.
        """
        if block.target is not self.target:
            raise ValueError(
                f"block #{block.block_id} belongs to {block.target.name}, "
                f"not {self.target.name}"
            )
        return self._end(block)

    def _end(self, block: MoveBlock) -> Generator:
        yield from self.policy.end(block)
        return block

    # -- location introspection (§2.2 primitives) -----------------------------------------

    @property
    def is_local(self) -> bool:
        """Whether the object currently resides on this proxy's node."""
        return self.target.is_resident_on(self.node_id)

    def location(self) -> int:
        """The object's current node (authoritative registry lookup)."""
        return self.system.registry.location_of(self.target.object_id)

    def __repr__(self) -> str:
        return (
            f"<Proxy {self.target.name}@node{self.node_id} "
            f"{'local' if self.is_local else 'remote'}>"
        )


class ProxyTable:
    """Per-system registry of proxies, one per (node, object) pair."""

    def __init__(self, system: DistributedSystem, policy: MigrationPolicy):
        self.system = system
        self.policy = policy
        self._proxies: Dict[Tuple[int, int], Proxy] = {}

    def proxy(self, node_id: int, target: DistributedObject) -> Proxy:
        """Return (creating if needed) the node's proxy for ``target``."""
        self.system.registry.node(node_id)  # validate
        key = (node_id, target.object_id)
        existing = self._proxies.get(key)
        if existing is not None:
            return existing
        proxy = Proxy(self.system, self.policy, node_id, target)
        self._proxies[key] = proxy
        return proxy

    def proxies_on(self, node_id: int) -> list:
        """Every proxy installed on a node."""
        return [
            p for (n, _), p in sorted(self._proxies.items()) if n == node_id
        ]

    def __len__(self) -> int:
        return len(self._proxies)

    def __repr__(self) -> str:
        return f"<ProxyTable proxies={len(self._proxies)}>"
