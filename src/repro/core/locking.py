"""Place-policy locks (§3.2).

"As soon as it arrives, the object is locked.  A locked object is
sedentary as long as the block or operation completes to which the
move()-primitive is tied."  The lock is purely local state at the
object's node — taking and releasing it never costs a remote message,
which is the place-policy's headline property.

The :class:`LockManager` tracks which move-block holds which objects so
``end`` can release everything at once, and enforces the safety
invariant that an object is held by at most one block (checked eagerly;
the property tests hammer on it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.objects import DistributedObject


class LockManager:
    """Tracks place-policy locks per move-block."""

    def __init__(self):
        #: block id -> objects it holds.
        self._held: Dict[int, List[DistributedObject]] = {}

    def lock(self, obj: DistributedObject, block: MoveBlock) -> None:
        """Grant ``block`` the lock on ``obj``.

        Raises
        ------
        PolicyError
            If the object is already locked (by any block, including
            this one) — callers must check :meth:`is_locked` first; a
            double grant would mean the mutual-exclusion invariant
            broke.
        """
        if obj.lock_holder is not None:
            raise PolicyError(
                f"{obj.name} is already locked by block "
                f"#{obj.lock_holder.block_id}"
            )
        obj.lock_holder = block
        self._held.setdefault(block.block_id, []).append(obj)
        block.locked_objects.append(obj)

    def lock_all(self, objects: Iterable[DistributedObject], block: MoveBlock) -> None:
        """Lock several objects for the same block."""
        for obj in objects:
            self.lock(obj, block)

    def is_locked(self, obj: DistributedObject) -> bool:
        """Whether any block currently holds the object."""
        return obj.lock_holder is not None

    def holder(self, obj: DistributedObject):
        """The holding block, or None."""
        return obj.lock_holder

    def release_block(self, block: MoveBlock) -> int:
        """Release every lock held by ``block``; returns the count.

        Idempotent: releasing a block that holds nothing is a no-op
        (the place-policy "simply ignores" the end-request of a mover
        whose move was rejected, §3.2).
        """
        held = self._held.pop(block.block_id, [])
        for obj in held:
            if obj.lock_holder is not block:  # pragma: no cover - invariant
                raise PolicyError(
                    f"lock bookkeeping broken: {obj.name} held by "
                    f"{obj.lock_holder!r}, expected block #{block.block_id}"
                )
            obj.lock_holder = None
        return len(held)

    def locked_objects(self) -> List[DistributedObject]:
        """Every currently locked object (any block)."""
        out = []
        for objs in self._held.values():
            out.extend(objs)
        return sorted(out, key=lambda o: o.object_id)

    def check_invariant(self) -> None:
        """Assert every lock is held by exactly one block's ledger."""
        seen: Set[int] = set()
        for block_id, objs in self._held.items():
            for obj in objs:
                assert obj.object_id not in seen, (
                    f"{obj.name} appears in two blocks' ledgers"
                )
                seen.add(obj.object_id)
                assert obj.lock_holder is not None, (
                    f"{obj.name} in ledger of block #{block_id} but unlocked"
                )

    def __repr__(self) -> str:
        total = sum(len(v) for v in self._held.values())
        return f"<LockManager blocks={len(self._held)} locks={total}>"
