"""Place-policy locks (§3.2), with optional lease-based fault tolerance.

"As soon as it arrives, the object is locked.  A locked object is
sedentary as long as the block or operation completes to which the
move()-primitive is tied."  The lock is purely local state at the
object's node — taking and releasing it never costs a remote message,
which is the place-policy's headline property.

The :class:`LockManager` tracks which move-block holds which objects so
``end`` can release everything at once, and enforces the safety
invariant that an object is held by at most one block (checked eagerly;
the property tests hammer on it).

Leases
------
The pure §3.2 lock has a failure mode the paper never considers: a
mover that crashes inside its move-block never issues ``end``, so its
locks are held forever and every later mover is rejected for the rest
of the run — the non-monolithic conflict the place-policy was supposed
to defuse comes back as permanent starvation.  Constructed with an
environment and a ``lease_duration``, the manager instead grants each
block a *lease*: once it expires, the block's locks are reclaimed
lazily (any ``is_locked``/``lock`` touch) or eagerly by the
:class:`LeaseSweeper`, a simulation process that also reclaims locks
whose holding block's owner node crashed.  A live block that merely
outlives its lease loses migration exclusivity — its objects may be
moved away and further calls are forwarded, the same graceful
degradation §3.2 prescribes for rejected movers.  Leases are off by
default, so existing experiments reproduce bit-identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.moveblock import MoveBlock
from repro.errors import PolicyError
from repro.runtime.clock import Clock, SimClock
from repro.runtime.objects import DistributedObject
from repro.sim.kernel import Environment
from repro.telemetry.core import NULL_TELEMETRY, Telemetry


class LockManager:
    """Tracks place-policy locks per move-block.

    Parameters
    ----------
    env:
        Simulation environment; leases require *some* time authority —
        either this or ``clock``.
    lease_duration:
        Lease length granted to each block (refreshed whenever the
        block takes another lock).  ``None`` (default) disables leases
        entirely — locks are held until ``end``, exactly §3.2.
    clock:
        Alternative time authority (:class:`~repro.runtime.clock.
        Clock`).  The live backend passes a ``WallClock`` here so the
        *same* lease arithmetic runs over wall-clock time in a real OS
        process; under simulation the manager derives a ``SimClock``
        from ``env`` and behaves exactly as before the seam existed.
    telemetry:
        Metrics sink; grant/reclaim counters when enabled.
    """

    def __init__(
        self,
        env: Optional[Environment] = None,
        lease_duration: Optional[float] = None,
        telemetry: Telemetry = NULL_TELEMETRY,
        clock: Optional[Clock] = None,
    ):
        if clock is None and env is not None:
            clock = SimClock(env)
        if lease_duration is not None:
            if clock is None:
                raise ValueError(
                    "leases require a time authority: a simulation "
                    "environment (env=...) or a seam clock (clock=...)"
                )
            if lease_duration <= 0:
                raise ValueError(
                    f"lease_duration must be positive, got {lease_duration}"
                )
        self.env = env
        self.clock = clock
        self.lease_duration = lease_duration
        #: block id -> objects it holds.
        self._held: Dict[int, List[DistributedObject]] = {}
        #: block id -> the block itself (for lease/crash bookkeeping).
        self._blocks: Dict[int, MoveBlock] = {}
        #: block id -> lease expiry time (leases enabled only).
        self._expiry: Dict[int, float] = {}
        #: Locks reclaimed because their block's lease expired.
        self.leases_expired = 0
        #: Locks reclaimed because their block's owner node crashed.
        self.leases_broken = 0
        #: Blocks whose locks were force-broken (owner crashed or
        #: suspected crashed).  A broken block can never re-acquire a
        #: lock: a lease renewal racing with ``break_crashed`` in the
        #: same tick must not resurrect the lock, and under a heartbeat
        #: detector the "crashed" verdict may be a false suspicion of a
        #: live mover — which then degrades to remote invocation
        #: (§3.2) instead of silently regaining exclusivity.
        self._broken: Set[int] = set()
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_granted = metrics.counter("locks.granted")
            self._m_expired = metrics.counter("locks.lease_expired")
            self._m_broken = metrics.counter("locks.lease_broken")

    # -- leases ------------------------------------------------------------------

    @property
    def leases_enabled(self) -> bool:
        """Whether this manager grants expiring leases."""
        return self.lease_duration is not None

    def _lease_expired(self, block_id: int) -> bool:
        if not self.leases_enabled or block_id not in self._expiry:
            return False
        return self.clock.now() >= self._expiry[block_id]

    def _reap_if_expired(self, obj: DistributedObject) -> None:
        """Lazily release the holder's locks if its lease ran out."""
        holder = obj.lock_holder
        if holder is not None and self._lease_expired(holder.block_id):
            reaped = self.release_block(holder)
            self.leases_expired += reaped
            if self._telemetry_on:
                self._m_expired.inc(reaped)

    def expire_due(self) -> int:
        """Release every lock whose block's lease has expired.

        Returns the number of locks released.  Called periodically by
        the :class:`LeaseSweeper`; safe to call any time.
        """
        total = 0
        for block_id in [b for b in self._held if self._lease_expired(b)]:
            total += self.release_block(self._blocks[block_id])
        self.leases_expired += total
        if total and self._telemetry_on:
            self._m_expired.inc(total)
        return total

    def break_crashed(self, health) -> int:
        """Release every lock whose holding block's owner node is down.

        ``health`` is any object with ``is_down(node_id) -> bool`` — the
        ground-truth :class:`~repro.availability.faults.FaultInjector`
        or a heartbeat :class:`~repro.runtime.failure.FailureDetector`
        (whose verdict may be a *false* suspicion; breaking the lock is
        still safe, the falsely suspected mover merely loses migration
        exclusivity).  Returns the number of locks released.  Broken
        blocks are remembered and permanently barred from re-acquiring
        locks, so a lease renewal racing with the break in the same
        tick cannot resurrect the lock.
        """
        total = 0
        for block in [
            b for b in self._blocks.values() if health.is_down(b.client_node)
        ]:
            self._broken.add(block.block_id)
            total += self.release_block(block)
        self.leases_broken += total
        if total and self._telemetry_on:
            self._m_broken.inc(total)
        return total

    def was_broken(self, block: MoveBlock) -> bool:
        """Whether the block's locks were ever force-broken."""
        return block.block_id in self._broken

    def held_blocks(self) -> List[MoveBlock]:
        """Every block currently holding at least one lock."""
        return [self._blocks[b] for b in self._held if self._held[b]]

    def lease_of(self, block: MoveBlock) -> Optional[float]:
        """The block's lease expiry time, if leases are enabled."""
        return self._expiry.get(block.block_id)

    # -- the §3.2 interface ---------------------------------------------------------

    def lock(self, obj: DistributedObject, block: MoveBlock) -> None:
        """Grant ``block`` the lock on ``obj``.

        Raises
        ------
        PolicyError
            If the object is already locked (by any block, including
            this one) — callers must check :meth:`is_locked` first; a
            double grant would mean the mutual-exclusion invariant
            broke.  A holder whose lease expired does not count: its
            locks are reclaimed and the grant proceeds.  Also raised
            when ``block`` was force-broken by :meth:`break_crashed`:
            a dead (or suspected-dead) mover's renewal must not
            resurrect its lock.
        """
        if block.block_id in self._broken:
            raise PolicyError(
                f"block #{block.block_id} was broken (owner crashed or "
                f"suspected crashed) and cannot re-acquire locks"
            )
        self._reap_if_expired(obj)
        if obj.lock_holder is not None:
            raise PolicyError(
                f"{obj.name} is already locked by block "
                f"#{obj.lock_holder.block_id}"
            )
        obj.lock_holder = block
        self._held.setdefault(block.block_id, []).append(obj)
        self._blocks[block.block_id] = block
        block.locked_objects.append(obj)
        if self._telemetry_on:
            self._m_granted.inc()
        if self.leases_enabled:
            # Each grant refreshes the block's lease.
            self._expiry[block.block_id] = (
                self.clock.now() + self.lease_duration
            )

    def lock_all(self, objects: Iterable[DistributedObject], block: MoveBlock) -> None:
        """Lock several objects for the same block."""
        for obj in objects:
            self.lock(obj, block)

    def is_locked(self, obj: DistributedObject) -> bool:
        """Whether any block currently holds the object.

        An expired lease is reclaimed on the spot, so the answer always
        reflects enforceable locks only.
        """
        self._reap_if_expired(obj)
        return obj.lock_holder is not None

    def holder(self, obj: DistributedObject):
        """The holding block, or None (expired leases are reclaimed)."""
        self._reap_if_expired(obj)
        return obj.lock_holder

    def release_block(self, block: MoveBlock) -> int:
        """Release every lock held by ``block``; returns the count.

        Idempotent: releasing a block that holds nothing is a no-op
        (the place-policy "simply ignores" the end-request of a mover
        whose move was rejected, §3.2) — including a block whose lease
        was already reclaimed.
        """
        held = self._held.pop(block.block_id, [])
        self._blocks.pop(block.block_id, None)
        self._expiry.pop(block.block_id, None)
        for obj in held:
            if obj.lock_holder is not block:  # pragma: no cover - invariant
                raise PolicyError(
                    f"lock bookkeeping broken: {obj.name} held by "
                    f"{obj.lock_holder!r}, expected block #{block.block_id}"
                )
            obj.lock_holder = None
        return len(held)

    def locked_objects(self) -> List[DistributedObject]:
        """Every currently locked object (any block)."""
        out = []
        for objs in self._held.values():
            out.extend(objs)
        return sorted(out, key=lambda o: o.object_id)

    # -- crash-recovery handoff -------------------------------------------------

    def export_lease_state(self) -> Dict:
        """Picklable snapshot of every open block and the broken set.

        The live supervisor journals grants into its arbitration WAL;
        this export is the equivalent hand-carried form (tests and
        tooling diff the two).  Lease *expiries* are deliberately not
        exported: a recovered manager re-grants fresh leases, because
        wall-clock deadlines from a dead process mean nothing to its
        successor.
        """
        return {
            "blocks": [
                {
                    "block_id": block.block_id,
                    "client_node": block.client_node,
                    "object_ids": [
                        obj.object_id
                        for obj in self._held.get(block.block_id, [])
                    ],
                }
                for block in self._blocks.values()
            ],
            "broken": sorted(self._broken),
        }

    def import_lease_state(self, state: Dict, objects: Dict) -> int:
        """Rebuild blocks and locks from an exported snapshot.

        ``objects`` maps object id -> the lockable record in *this*
        process.  Each descriptor is revived as a fresh
        :class:`MoveBlock` carrying its **recorded** block id — the
        fence in the live protocol is the id, so recovery must not
        re-number — and the module-wide id counter is advanced past
        everything imported so new blocks can never collide with a
        revived one.  Returns the number of locks re-taken; broken
        block ids stay barred forever.
        """
        from itertools import count as _count

        from repro.core import moveblock as _moveblock

        imported = 0
        max_id = 0
        broken = set(state.get("broken", ()))
        for block_id in broken:
            self._broken.add(block_id)
            max_id = max(max_id, block_id)
        for desc in state.get("blocks", ()):
            block_id = desc["block_id"]
            max_id = max(max_id, block_id)
            if block_id in broken or not desc["object_ids"]:
                continue
            block = MoveBlock(
                client_node=desc["client_node"],
                target=objects[desc["object_ids"][0]],
            )
            block.block_id = block_id
            for oid in desc["object_ids"]:
                self.lock(objects[oid], block)
                imported += 1
        probe = next(_moveblock._block_ids)
        _moveblock._block_ids = _count(max(probe, max_id) + 1)
        return imported

    def check_invariant(self) -> None:
        """Assert every lock is held by exactly one block's ledger."""
        seen: Set[int] = set()
        for block_id, objs in self._held.items():
            assert block_id in self._blocks, (
                f"block #{block_id} in ledger but unknown to the manager"
            )
            assert block_id not in self._broken, (
                f"broken block #{block_id} still holds locks"
            )
            for obj in objs:
                assert obj.object_id not in seen, (
                    f"{obj.name} appears in two blocks' ledgers"
                )
                seen.add(obj.object_id)
                assert obj.lock_holder is not None, (
                    f"{obj.name} in ledger of block #{block_id} but unlocked"
                )

    def __repr__(self) -> str:
        total = sum(len(v) for v in self._held.values())
        lease = (
            f" lease={self.lease_duration}" if self.leases_enabled else ""
        )
        return f"<LockManager blocks={len(self._held)} locks={total}{lease}>"


class LeaseSweeper:
    """Periodic reclamation of dead place-policy locks.

    Runs as a simulation process: every ``interval`` it releases locks
    whose lease expired and — when a ``health`` provider is given —
    locks whose holding block's owner node is down.  Conflicting movers
    that were being rejected by a dead holder's locks fall back to
    remote invocation in the meantime (§3.2's graceful degradation) and
    can win the lock again after the sweep.

    Parameters
    ----------
    env, locks:
        Environment and the (usually lease-enabled) lock manager.
    health:
        Optional node-health provider with ``is_down(node_id)``.
    interval:
        Sweep period.  Bounds how long a crashed holder can starve
        conflicting movers beyond its lease.
    """

    def __init__(
        self,
        env: Environment,
        locks: LockManager,
        health=None,
        interval: float = 10.0,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.locks = locks
        self.health = health
        self.interval = interval
        self.sweeps = 0
        self._started = False

    def start(self) -> None:
        """Launch the sweeping process (idempotent)."""
        if self._started:
            return
        self._started = True
        self.env.process(self._run(), name="lease-sweeper")

    def sweep(self) -> Tuple[int, int]:
        """One reclamation pass; returns ``(expired, broken)`` counts."""
        expired = self.locks.expire_due()
        broken = 0
        if self.health is not None:
            broken = self.locks.break_crashed(self.health)
        self.sweeps += 1
        return expired, broken

    def _run(self):
        while True:
            yield self.env.timeout(self.interval)
            self.sweep()

    def __repr__(self) -> str:
        return (
            f"<LeaseSweeper interval={self.interval} sweeps={self.sweeps}>"
        )
