"""Versioned object-graph migration: plan → diff → staged deploy → rollback.

The paper migrates objects in *space*; this subpackage migrates them in
*version* — changing the schema/policy configuration of a live object
graph stage by stage, with a durable checkpoint after every stage and
invariant-gated rollback on violation, crash or partition.

Pipeline:

* :mod:`repro.versioning.diff` — deterministic content hashes over each
  node's resident object graph (object state, attachments, alliance
  membership, policy config) plus Merkle-style graph digests;
* :mod:`repro.versioning.planner` — diffs the current graph against a
  target :class:`~repro.versioning.planner.VersionConfig` and emits a
  staged, dependency-ordered :class:`~repro.versioning.planner.
  MigrationPlan` (attachment/alliance groups never split across stages);
* :mod:`repro.versioning.deployer` — executes the stages under
  lease-based place-policy locks, checkpoints after each stage, gates
  every stage on invariants and rolls back on failure — per-object
  atomicity: every object ends at exactly its old or its new version
  hash, never a hybrid;
* :mod:`repro.versioning.study` — the ``repro-experiment deploy``
  scenarios (clean / crash-during-deploy / induced violation) with
  stage timelines, rollback counts and pre/post graph digests.
"""

from repro.versioning.diff import (
    GraphSnapshot,
    compute_graph_digest,
    compute_node_content_hash,
    compute_object_hash,
    object_version_record,
    snapshot_graph,
)
from repro.versioning.planner import (
    MigrationPlan,
    MigrationPlanner,
    StagePlan,
    VersionConfig,
)
from repro.versioning.deployer import (
    Checkpoint,
    DeploymentResult,
    MigrationDeployer,
    StageRecord,
)
from repro.versioning.study import (
    DEPLOY_SCENARIOS,
    DeployStudyParameters,
    DeployStudyResult,
    DeployStudy,
    deploy_report_markdown,
    deploy_rows,
    deploy_sweep,
    run_deploy_matrix,
    run_deploy_study,
)

__all__ = [
    "Checkpoint",
    "DEPLOY_SCENARIOS",
    "DeployStudy",
    "DeployStudyParameters",
    "DeployStudyResult",
    "DeploymentResult",
    "GraphSnapshot",
    "MigrationDeployer",
    "MigrationPlan",
    "MigrationPlanner",
    "StagePlan",
    "StageRecord",
    "VersionConfig",
    "compute_graph_digest",
    "compute_node_content_hash",
    "compute_object_hash",
    "object_version_record",
    "deploy_report_markdown",
    "deploy_rows",
    "deploy_sweep",
    "run_deploy_matrix",
    "run_deploy_study",
    "snapshot_graph",
]
