"""Staged execution of a version-migration plan, with rollback.

The deployer is a simulation process run by a *coordinator node*.  For
each stage of the plan it

1. opens a fresh :class:`~repro.core.moveblock.MoveBlock` and takes the
   place-policy lock (§3.2) on every object of the stage — upgrading
   objects are sedentary, exactly like objects inside a spatial
   move-block;
2. upgrades each object (the upgrade window scales with object size,
   like the paper's M) and then flips its ``version`` tag — the flip is
   the *only* mutation, and it is atomic per object: an object observed
   at any instant hashes to exactly its old or its new content hash,
   never a hybrid;
3. verifies the stage's objects against the plan's predicted hashes
   (:class:`~repro.errors.ChecksumMismatchError` on drift), then
   evaluates the invariant gates;
4. releases the locks and writes a durable checkpoint (JSON; round-
   tripped even when no checkpoint directory is configured, so nothing
   un-serializable can creep into it).

Failure handling mirrors the abort-and-rollback rule of spatial
migration (the move "simply never happened"):

* coordinator crash mid-stage → the stage's flips are undone from the
  last checkpoint, the deployer waits out the outage and retries the
  stage under a fresh block (the old block's locks were reclaimed by
  the :class:`~repro.core.locking.LeaseSweeper`, which also bars the
  dead block from resurrecting them);
* a partition that makes the failure detector *falsely* suspect the
  coordinator breaks the block the same way — the deployer observes
  :class:`~repro.errors.PolicyError` on its next lock touch, rolls the
  stage back and retries;
* an invariant-gate violation or checksum mismatch is not retried: the
  whole deployment rolls back to the pre-deploy checkpoint, restoring
  the source graph digest bit-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Mapping, Optional, Sequence, Tuple

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager
from repro.core.locking import LockManager
from repro.core.moveblock import MoveBlock
from repro.errors import (
    ChecksumMismatchError,
    InvariantViolationError,
    PolicyError,
    StageAbortedError,
)
from repro.sim.trace import NULL_TRACER, Tracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.spans import ERROR, OK
from repro.versioning.diff import (
    compute_object_hash,
    object_version_record,
    snapshot_graph,
)
from repro.versioning.planner import MigrationPlan, StagePlan

#: A stage gate: name plus an invariant-style callable (True/None pass;
#: False or (False, detail) fail; AssertionError/InvariantViolationError
#: also fail).
Gate = Tuple[str, Callable[[], object]]


class _StageFailure(Exception):
    """Internal: a stage must be rolled back (maybe retried)."""

    def __init__(self, reason: str, detail: str = "", retryable: bool = True):
        super().__init__(reason)
        self.reason = reason
        self.detail = detail
        self.retryable = retryable


@dataclass
class Checkpoint:
    """Durable record of the graph's version state after a stage.

    ``stage`` is the index of the last *committed* stage; -1 is the
    pre-deploy checkpoint every full rollback restores.
    """

    stage: int
    taken_at: float
    #: object id -> version tag of every object the plan touches.
    versions: Dict[int, str]
    #: Placement-independent graph digest at checkpoint time.
    digest: str

    def to_dict(self) -> dict:
        """JSON-serializable form (the durable checkpoint payload)."""
        return {
            "stage": self.stage,
            "taken_at": self.taken_at,
            "versions": {str(k): v for k, v in self.versions.items()},
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Checkpoint":
        return cls(
            stage=int(data["stage"]),
            taken_at=float(data["taken_at"]),
            versions={int(k): v for k, v in data["versions"].items()},
            digest=data["digest"],
        )


@dataclass
class StageRecord:
    """Timeline entry for one stage of the deployment."""

    index: int
    objects: int
    started_at: float
    ended_at: float = 0.0
    attempts: int = 1
    status: str = "pending"  # committed | rolled-back
    reason: str = ""

    @property
    def elapsed(self) -> float:
        """Wall (simulated) time this stage spent, retries included."""
        return self.ended_at - self.started_at

    def to_dict(self) -> dict:
        """JSON-serializable form (reports embed this)."""
        return {
            "index": self.index,
            "objects": self.objects,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "attempts": self.attempts,
            "status": self.status,
            "reason": self.reason,
        }


@dataclass
class DeploymentResult:
    """Outcome of one :meth:`MigrationDeployer.deploy` run."""

    plan_id: str
    #: committed | rolled-back | empty
    status: str = "empty"
    stages: List[StageRecord] = field(default_factory=list)
    checkpoints: List[Checkpoint] = field(default_factory=list)
    #: Objects whose version flip committed (net of rollbacks).
    upgraded: int = 0
    #: Stage-level rollbacks (crash/partition retries included).
    stage_rollbacks: int = 0
    #: Whole-deployment rollbacks (0 or 1).
    full_rollbacks: int = 0
    #: Why the deployment rolled back, if it did.
    rollback_reason: str = ""
    pre_digest: str = ""
    post_digest: str = ""
    target_digest: str = ""
    elapsed: float = 0.0

    @property
    def rollbacks(self) -> int:
        """Total rollback events (stage retries + full)."""
        return self.stage_rollbacks + self.full_rollbacks

    @property
    def committed_stages(self) -> int:
        """Stages whose flips stuck (net of any later full rollback)."""
        return sum(1 for s in self.stages if s.status == "committed")

    def to_dict(self) -> dict:
        """JSON-serializable form of the whole deployment outcome."""
        return {
            "plan_id": self.plan_id,
            "status": self.status,
            "stages": [s.to_dict() for s in self.stages],
            "checkpoints": [c.to_dict() for c in self.checkpoints],
            "upgraded": self.upgraded,
            "stage_rollbacks": self.stage_rollbacks,
            "full_rollbacks": self.full_rollbacks,
            "rollback_reason": self.rollback_reason,
            "pre_digest": self.pre_digest,
            "post_digest": self.post_digest,
            "target_digest": self.target_digest,
            "elapsed": self.elapsed,
        }


class MigrationDeployer:
    """Executes a :class:`~repro.versioning.planner.MigrationPlan`.

    Parameters
    ----------
    system:
        The live :class:`~repro.runtime.system.DistributedSystem`.
    plan:
        The staged plan to execute.
    locks:
        The (usually lease-enabled) place-policy lock manager shared
        with the workload — deploy locks contend with mover locks on
        equal terms.
    coordinator_node:
        Node the deploy runs from; its crash aborts the active stage.
    health:
        Optional node-health provider (``is_down``/``wait_until_up``),
        usually the :class:`~repro.availability.faults.FaultInjector`.
    monitor:
        Optional always-on :class:`~repro.sim.monitor.InvariantMonitor`
        evaluated as a gate after every stage.
    gates:
        Extra ``(name, callable)`` invariant gates (same convention as
        monitor invariants).
    attachments, alliances:
        Relationship managers for content hashing — pass the same ones
        the plan was computed with, or every verify will mismatch.
    upgrade_duration:
        Upgrade window per size-1 object (the version-space M).
    lock_poll, lock_wait:
        Poll interval and total budget for waiting on a contended lock.
    max_stage_retries:
        Crash/partition retries per stage before giving up and rolling
        back the whole deployment.
    checkpoint_dir:
        Optional directory; when set every checkpoint is also written
        to ``checkpoint-<stage>.json`` there.
    strict:
        Raise :class:`~repro.errors.StageAbortedError` after a full
        rollback instead of returning a rolled-back result.
    """

    def __init__(
        self,
        system,
        plan: MigrationPlan,
        locks: LockManager,
        coordinator_node: int = 0,
        health=None,
        monitor=None,
        gates: Sequence[Gate] = (),
        attachments: Optional[AttachmentManager] = None,
        alliances: Optional[AllianceManager] = None,
        upgrade_duration: float = 2.0,
        lock_poll: float = 1.0,
        lock_wait: float = 120.0,
        max_stage_retries: int = 3,
        checkpoint_dir: Optional[str] = None,
        strict: bool = False,
        tracer: Tracer = NULL_TRACER,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        if upgrade_duration < 0:
            raise ValueError(
                f"upgrade_duration must be >= 0, got {upgrade_duration}"
            )
        if lock_poll <= 0:
            raise ValueError(f"lock_poll must be positive, got {lock_poll}")
        self.system = system
        self.env = system.env
        self.plan = plan
        self.locks = locks
        self.coordinator_node = coordinator_node
        self.health = health
        self.monitor = monitor
        self.gates = tuple(gates)
        self.attachments = attachments
        self.alliances = alliances
        self.policy = dict(plan.policy)
        self.upgrade_duration = upgrade_duration
        self.lock_poll = lock_poll
        self.lock_wait = lock_wait
        self.max_stage_retries = max_stage_retries
        self.checkpoint_dir = checkpoint_dir
        self.strict = strict
        self.tracer = tracer
        self.telemetry = telemetry
        self._telemetry_on = telemetry.enabled
        #: (stage index, object ids) while a stage is executing — chaos
        #: campaigns poll this to crash a participant mid-stage.
        self.active_stage: Optional[Tuple[int, Tuple[int, ...]]] = None
        self.result = DeploymentResult(plan_id=plan.plan_id)
        if self._telemetry_on:
            metrics = telemetry.metrics
            self._m_stages = metrics.counter("deploy.stages")
            self._m_upgraded = metrics.counter("deploy.objects_upgraded")
            self._m_checkpoints = metrics.counter("deploy.checkpoints")
            self._m_stage_time = metrics.histogram("deploy.stage_time")

    # -- hashing helpers ---------------------------------------------------------

    def _object_hash(self, obj) -> str:
        return compute_object_hash(
            object_version_record(
                obj, self.attachments, self.alliances, self.policy
            )
        )

    def _snapshot(self):
        return snapshot_graph(
            self.system, self.attachments, self.alliances, self.policy
        )

    def check_version_atomicity(self):
        """Invariant: every planned object is at its old or new hash.

        Register this on the always-on monitor for the duration of a
        deploy — it holds at *every* instant, including mid-stage and
        mid-rollback, because the version flip is atomic per object.
        """
        plan = self.plan
        for oid in plan.changed_ids:
            obj = self.system.registry.get(oid)
            actual = self._object_hash(obj)
            if actual not in (plan.old_hashes[oid], plan.new_hashes[oid]):
                return (
                    False,
                    f"object {oid} at hybrid hash {actual[:12]}… "
                    f"(version={obj.version!r})",
                )
        return True

    # -- checkpointing ------------------------------------------------------------

    def _checkpoint(self, stage_index: int) -> Checkpoint:
        snap = self._snapshot()
        cp = Checkpoint(
            stage=stage_index,
            taken_at=self.env.now,
            versions={
                oid: self.system.registry.get(oid).version
                for oid in self.plan.changed_ids
            },
            digest=snap.root_digest,
        )
        # Durability: the checkpoint must survive a coordinator restart,
        # so it always goes through its serialized form — anything that
        # cannot round-trip JSON fails here, not during recovery.
        payload = json.dumps(cp.to_dict(), sort_keys=True)
        cp = Checkpoint.from_dict(json.loads(payload))
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
            path = os.path.join(
                self.checkpoint_dir, f"checkpoint-{stage_index}.json"
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(payload)
        self.result.checkpoints.append(cp)
        if self._telemetry_on:
            self._m_checkpoints.inc()
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "deploy.checkpoint",
                stage=stage_index,
                digest=cp.digest[:12],
            )
        return cp

    # -- rollback ------------------------------------------------------------------

    def _restore(self, object_ids, checkpoint: Checkpoint) -> int:
        """Flip ``object_ids`` back to their checkpointed versions."""
        restored = 0
        for oid in object_ids:
            obj = self.system.registry.get(oid)
            want = checkpoint.versions[oid]
            if obj.version != want:
                obj.version = want
                restored += 1
        return restored

    def _rollback(
        self, object_ids, checkpoint: Checkpoint, reason: str, stage: int,
        parent=None, full: bool = False,
    ) -> int:
        restored = self._restore(object_ids, checkpoint)
        if full:
            self.result.full_rollbacks += 1
            self.result.rollback_reason = reason
        else:
            self.result.stage_rollbacks += 1
        if self._telemetry_on:
            span = self.telemetry.start_span(
                "deploy.rollback",
                node=self.coordinator_node,
                parent=parent,
                stage=stage,
                reason=reason,
                restored=restored,
            )
            self.telemetry.metrics.counter(
                "deploy.rollbacks", reason=reason
            ).inc()
            self.telemetry.end_span(span)
        if self.tracer.enabled:
            self.tracer.emit(
                self.env.now,
                "deploy.rollback",
                stage=stage,
                reason=reason,
                restored=restored,
                full=full,
            )
        return restored

    # -- gates ---------------------------------------------------------------------

    def _evaluate_gates(self) -> Optional[Tuple[str, str]]:
        """Run every gate; returns ``(name, detail)`` of the first
        failure or None."""
        gates: List[Gate] = list(self.gates)
        if self.monitor is not None:
            gates.append(("invariant-monitor", self.monitor.check_now))
        for name, fn in gates:
            detail = ""
            try:
                verdict = fn()
            except (AssertionError, InvariantViolationError) as exc:
                verdict, detail = False, str(exc)
            if isinstance(verdict, tuple):
                verdict, detail = verdict[0], str(verdict[1])
            if verdict is False:
                return name, detail
        return None

    # -- the deploy process ---------------------------------------------------------

    def deploy(self) -> Generator:
        """Process fragment executing the whole plan.

        Returns the :class:`DeploymentResult` (also kept at
        :attr:`result` so crashed/interrupted runs stay inspectable).
        """
        result = self.result
        plan = self.plan
        started = self.env.now
        pre = self._snapshot()
        result.pre_digest = pre.root_digest
        result.target_digest = plan.target_digest

        # A stale plan must not deploy: every object it claims to change
        # has to hash exactly as the plan predicted.
        for oid in plan.changed_ids:
            actual = pre.object_hashes.get(oid, "")
            if actual != plan.old_hashes[oid]:
                raise ChecksumMismatchError(
                    f"plan {plan.plan_id} is stale for object {oid}",
                    object_id=oid,
                    expected=plan.old_hashes[oid],
                    actual=actual,
                )

        if plan.is_empty:
            result.status = "empty"
            result.post_digest = pre.root_digest
            return result

        root_span = None
        if self._telemetry_on:
            root_span = self.telemetry.start_span(
                "deploy",
                node=self.coordinator_node,
                plan=plan.plan_id,
                stages=len(plan.stages),
            )

        base = self._checkpoint(-1)
        failed: Optional[Tuple[str, str]] = None  # (reason, detail)
        for stage in plan.stages:
            record = StageRecord(
                index=stage.index,
                objects=len(stage),
                started_at=self.env.now,
            )
            result.stages.append(record)
            last_cp = result.checkpoints[-1]
            while True:
                stage_span = None
                if self._telemetry_on:
                    stage_span = self.telemetry.start_span(
                        "deploy.stage",
                        node=self.coordinator_node,
                        parent=root_span,
                        stage=stage.index,
                        objects=len(stage),
                    )
                self.active_stage = (stage.index, stage.object_ids)
                try:
                    flipped = yield from self._run_stage(stage, stage_span)
                except _StageFailure as fail:
                    self.active_stage = None
                    self._rollback(
                        stage.object_ids,
                        last_cp,
                        fail.reason,
                        stage.index,
                        parent=stage_span,
                    )
                    if self._telemetry_on:
                        self.telemetry.end_span(
                            stage_span, status=ERROR, reason=fail.reason
                        )
                    retryable = (
                        fail.retryable
                        and record.attempts <= self.max_stage_retries
                    )
                    if not retryable:
                        record.ended_at = self.env.now
                        record.status = "rolled-back"
                        record.reason = fail.reason
                        failed = (fail.reason, fail.detail)
                        break
                    record.attempts += 1
                    # A coordinator crash is waited out before retrying;
                    # contention/partition retries go again immediately
                    # (the poll budget already paced them).
                    if (
                        fail.reason == "coordinator-crash"
                        and self.health is not None
                    ):
                        yield from self.health.wait_until_up(
                            self.coordinator_node
                        )
                    continue
                self.active_stage = None
                record.ended_at = self.env.now
                record.status = "committed"
                result.upgraded += flipped
                if self._telemetry_on:
                    self.telemetry.end_span(stage_span, upgraded=flipped)
                    self._m_stages.inc()
                    self._m_stage_time.observe(record.elapsed)
                self._checkpoint(stage.index)
                break
            if failed is not None:
                break

        if failed is not None:
            reason, detail = failed
            self._rollback(
                plan.changed_ids, base, reason, -1, parent=root_span,
                full=True,
            )
            result.status = "rolled-back"
        else:
            result.status = "committed"
        result.post_digest = self._snapshot().root_digest
        result.elapsed = self.env.now - started
        if self._telemetry_on:
            self.telemetry.end_span(
                root_span,
                status=ERROR if failed else OK,
                outcome=result.status,
                upgraded=result.upgraded,
                rollbacks=result.rollbacks,
            )
        if failed is not None and self.strict:
            raise StageAbortedError(
                f"deployment {plan.plan_id} rolled back: {failed[1] or failed[0]}",
                stage=next(
                    (s.index for s in result.stages if s.status == "rolled-back"),
                    -1,
                ),
                reason=failed[0],
            )
        return result

    def _run_stage(self, stage: StagePlan, span) -> Generator:
        """Execute one stage attempt; returns the number of flips.

        Raises :class:`_StageFailure` when the attempt must be undone.
        """
        env = self.env
        registry = self.system.registry
        objects = [registry.get(oid) for oid in stage.object_ids]
        block = MoveBlock(self.coordinator_node, objects[0])
        try:
            # Phase 1: take the place-policy lock on the whole stage.
            for obj in objects:
                waited = 0.0
                while self.locks.is_locked(obj):
                    if waited >= self.lock_wait:
                        raise _StageFailure(
                            "lock-timeout",
                            f"{obj.name} held past the {self.lock_wait} budget",
                        )
                    yield env.timeout(self.lock_poll)
                    waited += self.lock_poll
                    self._check_coordinator()
                self._check_coordinator()
                try:
                    self.locks.lock(obj, block)
                except PolicyError as exc:
                    reason = (
                        "lease-broken"
                        if self.locks.was_broken(block)
                        else "lock-contention"
                    )
                    raise _StageFailure(reason, str(exc))

            # Phase 2: upgrade + atomic flip, object by object.
            flipped = 0
            for obj in objects:
                new_version = self.plan.new_versions[obj.object_id]
                uspan = None
                if self._telemetry_on:
                    uspan = self.telemetry.start_span(
                        "deploy.upgrade",
                        node=obj.node_id,
                        parent=span,
                        object=obj.name,
                        to=new_version,
                    )
                duration = self.upgrade_duration * obj.size
                if duration > 0:
                    yield env.sleep(duration)
                try:
                    self._check_coordinator()
                    if self.locks.was_broken(block):
                        # A partition (or real crash) made the sweeper
                        # reclaim our locks mid-upgrade; the flip must
                        # not land without exclusivity.
                        raise _StageFailure(
                            "lease-broken",
                            f"block #{block.block_id} broken mid-upgrade",
                        )
                except _StageFailure:
                    if self._telemetry_on:
                        self.telemetry.end_span(
                            uspan, status=ERROR, reason="aborted"
                        )
                    raise
                # The atomic flip: before this line the object hashes to
                # its old content hash, after it to the new one.
                obj.version = new_version
                flipped += 1
                if self._telemetry_on:
                    self.telemetry.end_span(uspan)
                    self._m_upgraded.inc()

            # Phase 3: verify the flips landed exactly as planned.
            for obj in objects:
                actual = self._object_hash(obj)
                expected = self.plan.new_hashes[obj.object_id]
                if actual != expected:
                    raise _StageFailure(
                        "checksum-mismatch",
                        f"object {obj.object_id} hashed {actual[:12]}…, "
                        f"plan predicted {expected[:12]}…",
                        retryable=False,
                    )

            # Phase 4: invariant gates.
            failure = self._evaluate_gates()
            if failure is not None:
                raise _StageFailure(
                    "invariant-violation",
                    f"gate {failure[0]!r}: {failure[1]}",
                    retryable=False,
                )
            return flipped
        finally:
            # Idempotent: a broken block's locks were already reclaimed.
            self.locks.release_block(block)

    def _check_coordinator(self) -> None:
        if self.health is not None and self.health.is_down(
            self.coordinator_node
        ):
            raise _StageFailure(
                "coordinator-crash",
                f"coordinator node {self.coordinator_node} crashed mid-stage",
            )
