"""The ``repro-experiment deploy`` study: versioned migration end to end.

Three scenarios, each running a staged version deploy *against a live
workload* — clients keep issuing move-blocks and invocations while the
deployer upgrades the server population:

``clean``
    No faults.  The deploy must commit every stage and land the graph
    on the plan's predicted target digest, bit-identically.
``crash-coordinator``
    A :class:`~repro.availability.chaos.CrashDuringDeploy` action
    crashes the coordinating node mid-stage.  The stage rolls back to
    its checkpoint, the deployer waits out the outage and retries; the
    deploy still commits, and the always-on version-atomicity invariant
    verifies that no object was ever observable at a hybrid hash.
``invariant-violation``
    An induced gate failure at a chosen stage.  The whole deployment
    rolls back to the pre-deploy checkpoint; the post-run graph digest
    must equal the pre-deploy digest bit-identically.

The underlying cell is the fault-tolerance workload in its most
defended configuration (place-policy + leases + heartbeat detection,
``mttf = 0`` so every fault is scripted and the run replays from the
seed), with an alliance and attachment structure over the servers so
the planner has real must-flip-together groups to respect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from repro.availability.chaos import ChaosOrchestrator, ChaosScenario, CrashDuringDeploy
from repro.availability.faulttolerance import (
    FaultToleranceParameters,
    FaultToleranceWorkload,
)
from repro.core.alliance import AllianceManager
from repro.errors import ConfigurationError, InvariantViolationError, ProcessError
from repro.sim.monitor import InvariantMonitor
from repro.sim.trace import RingTracer
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.versioning.deployer import DeploymentResult, MigrationDeployer
from repro.versioning.planner import MigrationPlan, MigrationPlanner, VersionConfig

#: Scenario names, in CLI/report order.
DEPLOY_SCENARIOS: Tuple[str, ...] = (
    "clean",
    "crash-coordinator",
    "invariant-violation",
)


@dataclass(frozen=True)
class DeployStudyParameters:
    """Configuration of one deploy-study run."""

    scenario: str = "clean"
    nodes: int = 8
    clients: int = 4
    #: Servers are the upgrade population (clients stay at their
    #: version — they are fixed in space *and* in version here).
    servers: int = 6
    #: Version tag the servers are upgraded to.
    target_version: str = "v1"
    #: Objects per stage the planner aims for (groups never split).
    batch_size: int = 3
    #: Upgrade window per size-1 object (the version-space M).
    upgrade_duration: float = 2.0
    lease_duration: float = 30.0
    sweep_interval: float = 5.0
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 8.0
    #: Simulated time the deploy starts (the workload warms up first).
    deploy_at: float = 50.0
    #: Crash length of the crash-coordinator scenario.
    crash_down_for: float = 40.0
    #: Stage index at which the induced gate violation fires.
    violate_stage: int = 1
    #: Crash/partition retries per stage before full rollback.
    max_stage_retries: int = 4
    #: Period of the always-on invariant monitor.
    check_interval: float = 5.0
    lock_wait: float = 200.0
    sim_time: float = 1_000.0
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent settings."""
        if self.scenario not in DEPLOY_SCENARIOS:
            raise ConfigurationError(
                f"unknown deploy scenario {self.scenario!r}; "
                f"choose one of {list(DEPLOY_SCENARIOS)}"
            )
        if self.servers < 2:
            raise ConfigurationError(
                "the deploy study needs at least two servers"
            )
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.deploy_at < 0:
            raise ConfigurationError("deploy_at must be >= 0")
        if self.deploy_at >= self.sim_time:
            raise ConfigurationError("deploy_at must fall inside sim_time")
        if self.violate_stage < 0:
            raise ConfigurationError("violate_stage must be >= 0")
        self.to_ft().validate()

    def to_ft(self) -> FaultToleranceParameters:
        """The underlying fault-tolerance cell the deploy runs against.

        Always the place-policy with leases and heartbeat detection —
        the deploy contends for the same locks the movers use — with
        ``mttf = 0``: every crash is scripted, so runs replay per seed.
        """
        return FaultToleranceParameters(
            nodes=self.nodes,
            clients=self.clients,
            servers=self.servers,
            policy="placement",
            lease_duration=self.lease_duration,
            sweep_interval=self.sweep_interval,
            mttf=0.0,
            scripted_faults=True,
            detection="heartbeat",
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            sim_time=self.sim_time,
            seed=self.seed,
        )


@dataclass
class DeployStudyResult:
    """Outcome of one deploy-study run."""

    params: DeployStudyParameters
    deployment: DeploymentResult
    #: Stages the plan called for / objects it changed.
    plan_stages: int
    changed_objects: int
    #: Scenario-specific success: committed deploys must land on the
    #: target digest, rolled-back ones back on the pre-deploy digest —
    #: bit-identically either way.
    digest_ok: bool
    #: Rounds of the always-on invariant monitor (includes the
    #: version-atomicity invariant for the whole deploy window).
    invariant_checks: int
    #: Chaos injection counters (crash scenario only).
    injections: Dict[str, int] = field(default_factory=dict)
    #: Invariant violations recorded (empty on a surviving run).
    violations: List[str] = field(default_factory=list)

    @property
    def survived(self) -> bool:
        """True when every always-on invariant held for the whole run."""
        return not self.violations


class DeployStudy:
    """Builds and runs one deploy scenario end to end."""

    def __init__(
        self,
        params: DeployStudyParameters,
        telemetry: Telemetry = NULL_TELEMETRY,
    ):
        params.validate()
        self.params = params
        self.telemetry = telemetry
        self.tracer = RingTracer(capacity=256)
        self.workload = FaultToleranceWorkload(
            params.to_ft(), tracer=self.tracer, telemetry=telemetry
        )
        self.system = self.workload.system

        # Relationship structure over the servers so the planner has
        # real groups: servers 0 and 1 cooperate in an alliance, 2 and 3
        # are plainly attached, the rest are singletons.
        servers = self.workload.servers
        self.alliances = AllianceManager()
        self.attachments = self.alliances.attachments
        ring = self.alliances.create("deploy-ring")
        ring.admit(servers[0])
        ring.admit(servers[1])
        ring.attach(servers[0], servers[1])
        if len(servers) >= 4:
            self.attachments.attach(servers[2], servers[3])

        target = VersionConfig.make(
            f"servers-{params.target_version}",
            default="v0",
            kinds={"server": params.target_version},
            policy={"lease_duration": params.lease_duration},
        )
        self.planner = MigrationPlanner(
            self.system, self.attachments, self.alliances
        )
        self.plan: MigrationPlan = self.planner.plan(
            target, batch_size=params.batch_size
        )

        # The coordinator runs from the far end of the node range: node
        # 0 is the heartbeat monitor, and crashing the observer is a
        # different experiment.
        coordinator = params.nodes - 1
        gates = []
        if params.scenario == "invariant-violation":
            gates.append(("induced-violation", self._induced_violation))
        self.monitor = InvariantMonitor(
            self.system.env,
            interval=params.check_interval,
            tracer=self.tracer,
            trace_limit=50,
        )
        self.deployer = MigrationDeployer(
            self.system,
            self.plan,
            self.workload.locks,
            coordinator_node=coordinator,
            health=self.workload.faults,
            monitor=self.monitor,
            gates=gates,
            attachments=self.attachments,
            alliances=self.alliances,
            upgrade_duration=params.upgrade_duration,
            lock_wait=params.lock_wait,
            max_stage_retries=params.max_stage_retries,
            tracer=self.tracer,
            telemetry=telemetry,
        )
        self._register_invariants()

        self.orchestrator: Optional[ChaosOrchestrator] = None
        if params.scenario == "crash-coordinator":
            scenario = ChaosScenario(
                "crash-during-deploy",
                (
                    CrashDuringDeploy(
                        arm_at=params.deploy_at,
                        down_for=params.crash_down_for,
                        times=1,
                        victim="coordinator",
                    ),
                ),
            )
            self.orchestrator = ChaosOrchestrator(
                self.workload, scenario, deployer=self.deployer
            )
        self.deploy_result: Optional[DeploymentResult] = None

    # -- invariants and gates ----------------------------------------------------

    def _register_invariants(self) -> None:
        # The core safety net of the chaos campaigns...
        self.monitor.invariant(
            "unique-home", self.system.registry.check_consistency
        )
        self.monitor.invariant(
            "locks-consistent", self.workload.locks.check_invariant
        )
        # ...plus the deploy-specific one: at *every* instant, every
        # planned object hashes to exactly its old or new content hash.
        self.monitor.invariant(
            "version-atomicity", self.deployer.check_version_atomicity
        )

    def _induced_violation(self):
        """Gate that fails exactly at the configured stage.

        Deliberately a deployer *gate* and not a monitor invariant: the
        violation must abort the deploy (full rollback), not kill the
        whole simulation from the periodic checker process.
        """
        active = self.deployer.active_stage
        if active is not None and active[0] == self.params.violate_stage:
            return (
                False,
                f"induced violation at stage {self.params.violate_stage}",
            )
        return True

    # -- lifecycle ----------------------------------------------------------------

    def _deploy_process(self) -> Generator:
        yield self.system.env.timeout(self.params.deploy_at)
        self.deploy_result = yield from self.deployer.deploy()

    def run(self) -> DeployStudyResult:
        """Run the scenario; raises on an always-on invariant violation."""
        self.workload.start()
        if self.orchestrator is not None:
            self.orchestrator.start()
        self.monitor.start()
        self.system.env.process(self._deploy_process(), name="deploy")
        try:
            self.system.run(until=self.params.sim_time)
        except ProcessError as exc:
            cause = exc.__cause__
            if isinstance(cause, InvariantViolationError):
                raise cause from None
            raise
        self.monitor.check_now()
        return self.collect_result()

    def collect_result(self) -> DeployStudyResult:
        """Assemble the result record from the current state."""
        deployment = self.deploy_result or self.deployer.result
        if deployment.status == "committed":
            digest_ok = deployment.post_digest == deployment.target_digest
        elif deployment.status == "rolled-back":
            digest_ok = deployment.post_digest == deployment.pre_digest
        else:
            digest_ok = False
        return DeployStudyResult(
            params=self.params,
            deployment=deployment,
            plan_stages=len(self.plan.stages),
            changed_objects=len(self.plan.changed_ids),
            digest_ok=digest_ok,
            invariant_checks=self.monitor.checks,
            injections=(
                self.orchestrator.stats() if self.orchestrator else {}
            ),
            violations=list(self.monitor.violations),
        )


def run_deploy_study(params: DeployStudyParameters) -> DeployStudyResult:
    """Convenience one-shot wrapper."""
    return DeployStudy(params).run()


# ---------------------------------------------------------------------------
# Sweep + report (the `repro-experiment deploy` surface)
# ---------------------------------------------------------------------------


def run_deploy_matrix(
    seed: int = 0, scenarios: Tuple[str, ...] = DEPLOY_SCENARIOS
) -> List[DeployStudyResult]:
    """Run one deploy study per scenario at a shared seed."""
    return [
        run_deploy_study(DeployStudyParameters(scenario=scenario, seed=seed))
        for scenario in scenarios
    ]


def deploy_rows(
    results: List[DeployStudyResult],
) -> Tuple[List[str], List[List]]:
    """Summarise study results as ``(header, rows)`` for the CLI table."""
    header = [
        "scenario",
        "status",
        "stages",
        "upgraded",
        "stage-rollbacks",
        "full-rollbacks",
        "digest-ok",
        "invariant-checks",
    ]
    rows: List[List] = []
    for result in results:
        d = result.deployment
        rows.append(
            [
                result.params.scenario,
                d.status,
                d.committed_stages,
                d.upgraded,
                d.stage_rollbacks,
                d.full_rollbacks,
                "yes" if result.digest_ok else "NO",
                result.invariant_checks,
            ]
        )
    return header, rows


def deploy_sweep(
    seed: int = 0, scenarios: Tuple[str, ...] = DEPLOY_SCENARIOS
) -> Tuple[List[str], List[List]]:
    """Run every scenario; returns ``(header, rows)`` for the CLI table."""
    return deploy_rows(run_deploy_matrix(seed=seed, scenarios=scenarios))


def deploy_report_markdown(
    results: List[DeployStudyResult],
) -> str:
    """Render a plan/deploy report (the CI artifact) as markdown."""
    lines = [
        "# Versioned object-graph migration report",
        "",
        "Staged version deploys against a live place-policy workload: "
        "plan → diff → staged deploy → invariant-gated rollback.",
        "",
    ]
    for result in results:
        d = result.deployment
        p = result.params
        lines += [
            f"## Scenario `{p.scenario}` (seed {p.seed})",
            "",
            f"- plan `{d.plan_id}`: {result.plan_stages} stage(s), "
            f"{result.changed_objects} object(s) → `{p.target_version}`",
            f"- outcome: **{d.status}** — {d.upgraded} upgraded, "
            f"{d.stage_rollbacks} stage rollback(s), "
            f"{d.full_rollbacks} full rollback(s)"
            + (f" ({d.rollback_reason})" if d.rollback_reason else ""),
            f"- digests: pre `{d.pre_digest[:16]}…` → "
            f"post `{d.post_digest[:16]}…` "
            f"(target `{d.target_digest[:16]}…`) — "
            + ("bit-identical ✓" if result.digest_ok else "MISMATCH ✗"),
            f"- invariants: {result.invariant_checks} monitor rounds, "
            + (
                "no violations"
                if result.survived
                else f"{len(result.violations)} violation(s)"
            ),
        ]
        if result.injections:
            lines.append(
                f"- chaos: {result.injections.get('deploy_crashes', 0)} "
                f"deploy crash(es), "
                f"{result.injections.get('crashes_injected', 0)} total"
            )
        lines.append("")
        lines.append("| stage | objects | attempts | status | reason | elapsed |")
        lines.append("|---|---|---|---|---|---|")
        for s in d.stages:
            lines.append(
                f"| {s.index} | {s.objects} | {s.attempts} "
                f"| {s.status} | {s.reason or '—'} | {s.elapsed:.1f} |"
            )
        lines.append("")
    return "\n".join(lines)
