"""Planning a staged version migration: diff current vs. target config.

The planner is pure — it runs no simulation time and mutates nothing.
It snapshots the live graph, computes which objects the target
:class:`VersionConfig` would change, groups changed objects that must
flip together (attachment closure plus alliance co-membership — the
same "working set" logic that governs spatial migration in §3.4), and
packs the groups into dependency-ordered stages.  A group is never
split across stages: attached or allied objects either all run the old
version or all run the new one between stages, so the invariant gates
evaluated at stage boundaries see only coherent working sets.

Everything is deterministic: groups order by their smallest object id,
stages pack greedily in that order, and the plan id is a content hash
of the plan itself — two planners fed the same graph and target emit
bit-identical plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.alliance import AllianceManager
from repro.core.attachment import AttachmentManager
from repro.errors import ConfigurationError
from repro.runtime.objects import DistributedObject
from repro.versioning.diff import (
    GraphSnapshot,
    _sha256,
    compute_graph_digest,
    compute_object_hash,
    object_version_record,
    snapshot_graph,
)


@dataclass(frozen=True)
class VersionConfig:
    """A target assignment of version tags to the object population.

    Resolution order for :meth:`version_of`: an explicit per-object
    entry wins over a per-kind entry, which wins over the default.
    Stored as sorted tuples (not dicts) so configs are hashable and
    comparable — a config is itself a value.
    """

    name: str
    default: str = "v0"
    #: Sorted ((kind value, version), ...) overrides.
    kind_versions: Tuple[Tuple[str, str], ...] = ()
    #: Sorted ((object id, version), ...) overrides.
    object_versions: Tuple[Tuple[int, str], ...] = ()
    #: Sorted ((key, value), ...) policy configuration knobs.
    policy: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def make(
        cls,
        name: str,
        default: str = "v0",
        kinds: Optional[Mapping[str, str]] = None,
        objects: Optional[Mapping[int, str]] = None,
        policy: Optional[Mapping[str, Any]] = None,
    ) -> "VersionConfig":
        """Build a config from plain mappings (sorted for determinism)."""
        return cls(
            name=name,
            default=default,
            kind_versions=tuple(sorted((kinds or {}).items())),
            object_versions=tuple(sorted((objects or {}).items())),
            policy=tuple(
                sorted((k, str(v)) for k, v in (policy or {}).items())
            ),
        )

    def version_of(self, obj: DistributedObject) -> str:
        """Target version tag for one object under this config."""
        for oid, version in self.object_versions:
            if oid == obj.object_id:
                return version
        for kind, version in self.kind_versions:
            if kind == obj.kind.value:
                return version
        return self.default

    def policy_config(self) -> Dict[str, str]:
        """The policy knobs as a mapping (for hashing)."""
        return dict(self.policy)


@dataclass(frozen=True)
class StagePlan:
    """One stage: the object ids that flip together, and their groups."""

    index: int
    #: All object ids in this stage, sorted.
    object_ids: Tuple[int, ...]
    #: The constituent must-move-together groups (each sorted).
    groups: Tuple[Tuple[int, ...], ...]

    def __len__(self) -> int:
        return len(self.object_ids)

    def to_dict(self) -> dict:
        """JSON-serializable form (plans embed this)."""
        return {
            "index": self.index,
            "object_ids": list(self.object_ids),
            "groups": [list(g) for g in self.groups],
        }


@dataclass
class MigrationPlan:
    """A staged, hash-annotated version-migration plan."""

    plan_id: str
    target_config: str
    stages: List[StagePlan]
    #: object id -> current version tag.
    old_versions: Dict[int, str]
    #: object id -> target version tag (changed objects only).
    new_versions: Dict[int, str]
    #: object id -> content hash before the flip (changed objects only).
    old_hashes: Dict[int, str]
    #: object id -> content hash after the flip (changed objects only).
    new_hashes: Dict[int, str]
    #: Placement-independent digest of the whole graph before deploy.
    source_digest: str
    #: Predicted digest of the whole graph after a complete deploy.
    target_digest: str
    #: Policy knobs of the target config — the deployer must hash with
    #: exactly these, or every verify would mismatch.
    policy: Dict[str, str] = field(default_factory=dict)
    #: Snapshot the plan was computed against.
    baseline: GraphSnapshot = field(repr=False, default=None)  # type: ignore[assignment]

    @property
    def changed_ids(self) -> List[int]:
        """All object ids the plan touches, sorted."""
        return sorted(self.new_versions)

    @property
    def is_empty(self) -> bool:
        """True when the graph already matches the target config."""
        return not self.stages

    def stage_of(self, object_id: int) -> int:
        """Stage index an object flips in (-1 if untouched)."""
        for stage in self.stages:
            if object_id in stage.object_ids:
                return stage.index
        return -1

    def to_dict(self) -> dict:
        """JSON-serializable form (reports and checkpoints embed this)."""
        return {
            "plan_id": self.plan_id,
            "target_config": self.target_config,
            "stages": [s.to_dict() for s in self.stages],
            "old_versions": {str(k): v for k, v in self.old_versions.items()},
            "new_versions": {str(k): v for k, v in self.new_versions.items()},
            "old_hashes": {str(k): v for k, v in self.old_hashes.items()},
            "new_hashes": {str(k): v for k, v in self.new_hashes.items()},
            "source_digest": self.source_digest,
            "target_digest": self.target_digest,
            "policy": dict(sorted(self.policy.items())),
        }


class _UnionFind:
    """Deterministic union-find over object ids."""

    def __init__(self, ids: Sequence[int]):
        self._parent = {i: i for i in ids}

    def find(self, i: int) -> int:
        root = i
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[i] != root:
            self._parent[i], i = root, self._parent[i]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Smaller root wins: component ids are stable and minimal.
            if ra < rb:
                self._parent[rb] = ra
            else:
                self._parent[ra] = rb

    def components(self) -> List[List[int]]:
        comps: Dict[int, List[int]] = {}
        for i in sorted(self._parent):
            comps.setdefault(self.find(i), []).append(i)
        return [comps[r] for r in sorted(comps)]


class MigrationPlanner:
    """Diffs the live graph against a target config and emits a plan.

    Parameters
    ----------
    system:
        The :class:`~repro.runtime.system.DistributedSystem` to plan
        over.
    attachments, alliances:
        The relationship managers whose edges define both the content
        hashes and the must-flip-together grouping.  Optional — without
        them every changed object is its own group.
    """

    def __init__(
        self,
        system,
        attachments: Optional[AttachmentManager] = None,
        alliances: Optional[AllianceManager] = None,
    ):
        self.system = system
        self.attachments = attachments
        self.alliances = alliances

    def plan(
        self, target: VersionConfig, batch_size: int = 4
    ) -> MigrationPlan:
        """Compute the staged plan that takes the graph to ``target``.

        ``batch_size`` bounds how many *objects* a stage aims to carry;
        a single group larger than the batch still occupies one stage
        whole (groups are atomic), it just overflows the target.
        """
        if batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        policy = target.policy_config()
        baseline = snapshot_graph(
            self.system, self.attachments, self.alliances, policy
        )
        objects = {o.object_id: o for o in self.system.registry.objects}

        old_versions = {oid: obj.version for oid, obj in objects.items()}
        new_versions: Dict[int, str] = {}
        old_hashes: Dict[int, str] = {}
        new_hashes: Dict[int, str] = {}
        for oid, obj in objects.items():
            want = target.version_of(obj)
            if want != obj.version:
                new_versions[oid] = want
                old_hashes[oid] = baseline.object_hashes[oid]
                new_hashes[oid] = compute_object_hash(
                    object_version_record(
                        obj,
                        self.attachments,
                        self.alliances,
                        policy,
                        version=want,
                    )
                )

        stages = self._build_stages(objects, sorted(new_versions), batch_size)

        # Predicted post-deploy digest: baseline hashes with the changed
        # leaves swapped for their target hashes.
        predicted = dict(baseline.object_hashes)
        predicted.update(new_hashes)
        plan = MigrationPlan(
            plan_id="",
            target_config=target.name,
            stages=stages,
            old_versions=old_versions,
            new_versions=new_versions,
            old_hashes=old_hashes,
            new_hashes=new_hashes,
            source_digest=baseline.root_digest,
            target_digest=compute_graph_digest(predicted),
            policy=policy,
            baseline=baseline,
        )
        plan.plan_id = _sha256(plan.to_dict())[:16]
        return plan

    # -- grouping ----------------------------------------------------------------

    def _build_stages(
        self,
        objects: Mapping[int, DistributedObject],
        changed: List[int],
        batch_size: int,
    ) -> List[StagePlan]:
        if not changed:
            return []
        uf = _UnionFind(changed)
        changed_set = set(changed)
        if self.attachments is not None:
            for oid in changed:
                for nbr, _ctx in self.attachments.edges_of(objects[oid]):
                    if nbr in changed_set:
                        uf.union(oid, nbr)
        if self.alliances is not None:
            for alliance in self.alliances.alliances:
                members = [
                    m.object_id
                    for m in alliance.members
                    if m.object_id in changed_set
                ]
                for a, b in zip(members, members[1:]):
                    uf.union(a, b)

        stages: List[StagePlan] = []
        pending_ids: List[int] = []
        pending_groups: List[Tuple[int, ...]] = []

        def flush() -> None:
            if pending_ids:
                stages.append(
                    StagePlan(
                        index=len(stages),
                        object_ids=tuple(sorted(pending_ids)),
                        groups=tuple(pending_groups),
                    )
                )
                pending_ids.clear()
                pending_groups.clear()

        for group in uf.components():
            if pending_ids and len(pending_ids) + len(group) > batch_size:
                flush()
            pending_ids.extend(group)
            pending_groups.append(tuple(group))
        flush()
        return stages
